"""The ``fused`` kernel backend: NumPy-only, allocation-lean.

Same results as the ``numpy`` reference backend — bit-identical for
render/filter/fold/bin/PRBS (gated by the golden equivalence suites)
— reached with less work per sample:

* **NRZ render**: on integer time grids (every paper configuration:
  edge instants, ``dt``, and the record origin all land on whole
  picoseconds when jitter is off) the per-edge window profiles
  collapse into a handful of distinct rows, evaluated once and
  gathered per edge, replacing the big flat ``repeat``/``tau``/
  profile evaluation of the reference kernel. Invalid (clipped)
  window elements are routed to a discard bin so every surviving
  bin's accumulation order — and therefore its float sum — matches
  the reference bincount exactly. Non-integer grids fall back to the
  reference kernel.
* **SOS filter**: the Bessel design and its measured group delay are
  memoized per ``(order, wn, n_imp)`` — the design costs more than
  filtering a 64-channel block.
* **Crosstalk**: coupling-weight matrices are memoized per matrix
  config, and the mix uses one preallocated matmul output.
* **Eye fold / density binning**: boolean XOR crossings instead of
  an int8 diff, and a direct ``searchsorted``/``bincount``
  reimplementation of ``histogramdd`` returning ``int64`` counts
  (saving the float round-trip the accumulator otherwise pays).
* **PRBS**: multi-seed generation runs all seeds through one
  state-matrix product per block.

Threaded chunking over the channel axis (the render and filter ops)
engages when more than one CPU is visible; ``REPRO_KERNEL_THREADS``
overrides the thread count (``1`` forces serial). Rows are
partitioned, never split, so per-row results are bit-identical to
the serial pass.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Tuple

import numpy as np

from repro.signal import _kernels
from repro.signal._backend import NumpyKernelBackend

#: Memoization bounds (configs are tiny; these only guard leaks in
#: pathological sweeps over thousands of distinct configs).
_DESIGN_CACHE_MAX = 64
_WEIGHTS_CACHE_MAX = 16

#: Minimum rows per thread before chunking is worth the handoff.
_MIN_ROWS_PER_THREAD = 8


def _thread_count() -> int:
    """Worker threads for channel-axis chunking (1 = serial)."""
    env = os.environ.get("REPRO_KERNEL_THREADS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            return 1
    return os.cpu_count() or 1


def _chunk_bounds(n_rows: int, n_chunks: int):
    """Contiguous row partitions covering ``[0, n_rows)``."""
    edges = np.linspace(0, n_rows, n_chunks + 1).astype(int)
    return [(int(edges[i]), int(edges[i + 1]))
            for i in range(n_chunks) if edges[i + 1] > edges[i]]


def _bisect_right_uniform(edges: np.ndarray, x: np.ndarray,
                          n_bins: int) -> np.ndarray:
    """``np.searchsorted(edges, x, side='right')`` for near-uniform
    *edges* (a ``linspace``), bit-identical.

    An arithmetic bin guess replaces the binary search; the guess
    can be off by at most one (float error is a tiny fraction of a
    bin for any in-range value, and out-of-range values clip), so
    one exact comparison against the true edge values on each side
    restores the ``edges[i-1] <= x < edges[i]`` invariant.
    """
    v0 = edges[0]
    inv_dv = n_bins / (edges[n_bins] - v0)
    # Clamp before the multiply so huge out-of-range values cannot
    # overflow the int cast; the exact comparisons below use the
    # unclamped x, so the result is still correct for them.
    xc = np.clip(x, v0, edges[n_bins])
    guess = ((xc - v0) * inv_dv).astype(np.int64) + 1
    np.clip(guess, 0, n_bins + 1, out=guess)
    padded = np.concatenate((edges, [np.inf]))
    too_high = (guess > 0) & (x < padded[np.maximum(guess - 1, 0)])
    too_low = x >= padded[guess]
    return guess - too_high + too_low


class FusedKernelBackend(NumpyKernelBackend):
    """NumPy with fused buffers, memoized designs, and optional
    channel-axis threading. No optional dependencies."""

    name = "fused"

    def __init__(self):
        super().__init__()
        self._design_cache: Dict[Tuple[int, float, int],
                                 Tuple[np.ndarray, float]] = {}
        self._weights_cache: Dict[tuple, dict] = {}
        self._cache_lock = threading.Lock()

    # -- NRZ render ---------------------------------------------------------

    def render_nrz_batch(self, n_channels, n, t_start, dt, base, swing,
                         times, directions, rows, t20_80, shape,
                         tel=None) -> np.ndarray:
        base = np.asarray(base, dtype=np.float64)
        v = np.empty((n_channels, n), dtype=np.float64)
        if v.size:
            v[:] = base[:, None]
        times = np.asarray(times, dtype=np.float64)
        if len(times) == 0 or n == 0:
            return v
        # Fast path requires an integer-valued time grid: then every
        # edge's first in-window offset is an exact integer and
        # profiles group by (first offset, raw window length).
        if not (dt == np.rint(dt) and t_start == np.rint(t_start)
                and bool(np.all(times == np.rint(times)))):
            return super().render_nrz_batch(
                n_channels, n, t_start, dt, base, swing, times,
                directions, rows, t20_80, shape, tel=tel,
            )
        directions = np.asarray(directions, dtype=np.float64)
        rows = np.asarray(rows, dtype=np.int64)
        swing_row = np.broadcast_to(
            np.asarray(swing, dtype=np.float64), (n_channels,))
        edge_amp = directions * swing_row[rows]

        threads = _thread_count()
        if threads > 1 and n_channels >= 2 * _MIN_ROWS_PER_THREAD:
            n_chunks = min(threads,
                           max(1, n_channels // _MIN_ROWS_PER_THREAD))
            bounds = _chunk_bounds(n_channels, n_chunks)
            if len(bounds) > 1:
                # rows is row-major sorted, so each chunk's edges are
                # one contiguous slice; rows never split.
                splits = np.searchsorted(
                    rows, [b for _, b in bounds[:-1]])
                e_bounds = [0] + [int(s) for s in splits] + [len(rows)]

                def run(i):
                    lo, hi = bounds[i]
                    e0, e1 = e_bounds[i], e_bounds[i + 1]
                    self._render_rows(
                        v[lo:hi], hi - lo, n, t_start, dt,
                        edge_amp[e0:e1], times[e0:e1],
                        rows[e0:e1] - lo, t20_80, shape, tel)

                with ThreadPoolExecutor(max_workers=len(bounds)) as ex:
                    list(ex.map(run, range(len(bounds))))
                return v
        self._render_rows(v, n_channels, n, t_start, dt, edge_amp,
                          times, rows, t20_80, shape, tel)
        return v

    @staticmethod
    def _render_rows(v, n_channels, n, t_start, dt, edge_amp, times,
                     rows, t20_80, shape, tel):
        """Render one contiguous row block in place (fast path only).

        Accumulation order per bin matches the reference kernel's
        edge-major flattened bincount, so sums are bit-identical.
        """
        if len(times) == 0:
            # A chunk of constant-bit rows carries no edges; the rows
            # already hold their base level.
            return
        window = _kernels.edge_window(t20_80, dt)
        i0r = ((times - window - t_start) / dt).astype(np.int64)
        i1r = ((times + window - t_start) / dt).astype(np.int64) + 2

        # Saturated tails: identical to the reference kernel.
        i0 = np.clip(i0r, 0, n)
        i1 = np.clip(i1r, i0, n)
        steps = np.bincount(rows * (n + 1) + i1, weights=edge_amp,
                            minlength=n_channels * (n + 1))
        v += np.cumsum(steps.reshape(n_channels, n + 1)[:, :n],
                       axis=1)

        # In-window contributions: group edges whose tau sequences
        # coincide. first_tau is an exact integer on this path, so
        # (first_tau, raw length) keys exactly one profile row; 4096
        # exceeds any window length in samples.
        first_tau = (t_start + dt * i0r) - times
        lengths_raw = i1r - i0r
        kint = first_tau.astype(np.int64) * 4096 + lengths_raw
        uniq, first_idx, gid = np.unique(kint, return_index=True,
                                         return_inverse=True)
        l_max = int(lengths_raw.max())
        prof = np.zeros((len(uniq), l_max))
        for g in range(len(uniq)):
            e = int(first_idx[g])
            lg = int(lengths_raw[e])
            taus = first_tau[e] + dt * np.arange(lg,
                                                 dtype=np.float64)
            prof[g, :lg] = _kernels._window_profile(taus, t20_80,
                                                    shape, dt, tel)
        col = np.arange(l_max, dtype=np.int64)
        trash = n_channels * n
        bins = (rows * n + i0r)[:, None] + col
        # Clipped / padded elements go to a discard bin: they must
        # not contribute even a signed zero to a real bin, or a
        # -0.0 sum could flip sign versus the reference. Only edges
        # at the record boundary or in a short-length group have
        # any such element, so mask just those rows.
        partial = np.flatnonzero((i0r < 0) | (i1r > n)
                                 | (lengths_raw < l_max))
        if len(partial):
            samp = i0r[partial, None] + col
            stop = np.minimum(i1r[partial], n)
            sub = bins[partial]
            sub[(samp < 0) | (samp >= stop[:, None])] = trash
            bins[partial] = sub
        weights = edge_amp[:, None] * prof[gid]
        acc = np.bincount(bins.ravel(), weights=weights.ravel(),
                          minlength=trash + 1)
        v += acc[:trash].reshape(n_channels, n)

    # -- SOS filter ---------------------------------------------------------

    def sosfilt_batch(self, values, order, wn, n_imp):
        from scipy import signal as sps

        key = (int(order), float(wn), int(n_imp))
        with self._cache_lock:
            cached = self._design_cache.get(key)
        if cached is None:
            sos = sps.bessel(order, wn, btype="low", output="sos",
                             norm="mag")
            impulse = np.zeros(n_imp)
            impulse[0] = 1.0
            h = sps.sosfilt(sos, impulse)
            total = float(h.sum())
            gd = 0.0
            if abs(total) > 1e-12:
                gd = float((np.arange(n_imp) * h).sum() / total)
            cached = (sos, gd)
            with self._cache_lock:
                if len(self._design_cache) >= _DESIGN_CACHE_MAX:
                    self._design_cache.clear()
                self._design_cache[key] = cached
        sos, group_delay_samples = cached
        mean = values.mean(axis=1, keepdims=True)
        x = values - mean

        threads = _thread_count()
        n_rows = values.shape[0]
        if threads > 1 and n_rows >= 2 * _MIN_ROWS_PER_THREAD:
            bounds = _chunk_bounds(
                n_rows, min(threads,
                            max(1, n_rows // _MIN_ROWS_PER_THREAD)))
            if len(bounds) > 1:
                filtered = np.empty_like(values)

                def run(b):
                    lo, hi = b
                    filtered[lo:hi] = sps.sosfilt(sos, x[lo:hi],
                                                  axis=-1)

                with ThreadPoolExecutor(max_workers=len(bounds)) as ex:
                    list(ex.map(run, bounds))
                filtered += mean
                return filtered, group_delay_samples
        filtered = sps.sosfilt(sos, x, axis=-1)
        filtered += mean
        return filtered, group_delay_samples

    # -- crosstalk ----------------------------------------------------------

    def coupling_mix(self, values, dt, weights_key, weights_fn):
        with self._cache_lock:
            weights = self._weights_cache.get(weights_key)
        if weights is None:
            weights = weights_fn()
            with self._cache_lock:
                if len(self._weights_cache) >= _WEIGHTS_CACHE_MAX:
                    self._weights_cache.clear()
                self._weights_cache[weights_key] = weights
        if not weights or not values.shape[1]:
            return values.copy()
        dv = np.gradient(values, dt, axis=1)
        out = values.copy()
        mixed_buf = np.empty_like(values)
        for rise_scale_ps, w in weights.items():
            mixed = np.matmul(w, dv, out=mixed_buf)
            sigma_samples = rise_scale_ps / dt
            if sigma_samples > 0.05:
                from scipy.ndimage import gaussian_filter1d

                mixed = gaussian_filter1d(mixed, sigma_samples,
                                          axis=-1, mode="nearest")
            out += mixed
        return out

    # -- eye fold / density -------------------------------------------------

    def eye_fold(self, values, thresholds):
        if values.shape[1] < 2:
            empty = np.empty(0, dtype=np.intp)
            return empty, empty, np.empty(0, dtype=np.float64)
        above = values > thresholds[:, None]
        # flatnonzero + divmod beats np.nonzero on the 2-D mask, and
        # the flat index doubles as the gather index: the mask has
        # n - 1 columns, so sample (r, c) sits at flat + r in values.
        flat_idx = np.flatnonzero(above[:, 1:] ^ above[:, :-1])
        rows, cols = np.divmod(flat_idx, values.shape[1] - 1)
        flat = values.ravel()
        v0 = flat[flat_idx + rows]
        v1 = flat[flat_idx + rows + 1]
        frac = (thresholds[rows] - v0) / (v1 - v0)
        return rows, cols, frac

    def density_bin(self, phases, values, t_edges, v_edges):
        values = np.asarray(values, dtype=np.float64)
        c, n = values.shape
        nt = len(t_edges) - 1
        nv = len(v_edges) - 1
        if c == 0 or n == 0:
            return np.zeros((c, nt, nv), dtype=np.int64)
        phases = np.asarray(phases, dtype=np.float64)
        # histogramdd semantics: side='right' searchsorted with the
        # rightmost-edge sample folded into the last bin.
        tb = np.searchsorted(t_edges, phases, side="right")
        tb[phases == t_edges[-1]] -= 1
        flat = values.reshape(-1)
        vb = _bisect_right_uniform(v_edges, flat, nv)
        vb[flat == v_edges[-1]] -= 1
        trash = c * nt * nv
        t_idx = (tb - 1) * nv
        row_base = np.arange(c, dtype=np.int64)[:, None] * (nt * nv)
        idx = row_base + t_idx[None, :] + (vb - 1).reshape(c, n)
        invalid = ((tb < 1) | (tb > nt))[None, :] \
            | ((vb < 1) | (vb > nv)).reshape(c, n)
        idx[invalid] = trash
        counts = np.bincount(idx.ravel(), minlength=trash + 1)
        return counts[:trash].reshape(c, nt, nv)

    # -- PRBS ---------------------------------------------------------------

    def prbs_blockwise(self, order, length, seed, tap_a, tap_b,
                       block=None):
        if isinstance(seed, (int, np.integer)):
            seeds = [int(seed)]
            single = True
        else:
            seeds = [int(s) for s in seed]
            single = False
            if not seeds:
                return np.empty((0, length), dtype=np.uint8)
        if length == 0:
            out = np.empty((len(seeds), 0), dtype=np.uint8)
            return out[0] if single else out
        if block is None:
            # Short requests get a right-sized block: the output is
            # block-size independent (bit-exact for any block), so
            # don't compute 8192 bits to keep 256.
            block = min(_kernels.PRBS_BLOCK, length)
        block = max(block, order)
        key = (order, tap_a, tap_b, block)
        with _kernels._cache_lock:
            mats = _kernels._prbs_matrix_cache.get(key)
        if mats is None:
            mats = _kernels._prbs_block_matrices(order, tap_a, tap_b,
                                                 block)
            with _kernels._cache_lock:
                _kernels._prbs_matrix_cache[key] = mats
        out_mat, adv_mat = mats
        # All seeds advance through one (block, order) x (order, S)
        # product per block; float32 parities stay exact (< 2**24).
        states = np.array(
            [[(s >> j) & 1 for s in seeds] for j in range(order)],
            dtype=np.float32)
        n_blocks = -(-length // block)
        out = np.empty((len(seeds), n_blocks * block), dtype=np.uint8)
        for b in range(n_blocks):
            bits = (out_mat @ states).astype(np.int64) & 1
            out[:, b * block:(b + 1) * block] = bits.T
            states = np.asarray(adv_mat @ states,
                                dtype=np.float32) % 2.0
        out = out[:, :length]
        return out[0] if single else out
