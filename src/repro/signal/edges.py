"""Edge synthesis with controlled 20-80% rise/fall times.

The paper reports 20-80% transition times (70-75 ps for the optical
test bed's SiGe buffers, 120 ps for the mini-tester I/O buffers).
These functions generate transition shapes whose *measured* 20-80%
time equals the requested value.
"""

from __future__ import annotations

import enum
import math

import numpy as np

from repro.errors import ConfigurationError


class EdgeShape(enum.Enum):
    """Analytic shapes available for a logic transition."""

    ERF = "erf"
    """Gaussian-response edge: v = erf-shaped. Typical of cascaded
    bandwidth-limited buffers (central-limit behaviour)."""

    EXPONENTIAL = "exponential"
    """Single-pole RC response. Slower tails than erf."""

    LINEAR = "linear"
    """Ideal linear ramp (used for idealized timing analysis)."""


# For an erf edge v(t) = 0.5*(1+erf(t/(sqrt(2)*sigma))), the 20-80%
# time is 2*sqrt(2)*erfinv(0.6)*sigma.
_ERF_2080_FACTOR = 2.0 * math.sqrt(2.0) * 0.5951160814499948  # erfinv(0.6)

# For a single-pole edge v(t) = 1-exp(-t/tau), t20=tau*ln(1/0.8),
# t80=tau*ln(1/0.2) -> t2080 = tau*ln(4).
_EXP_2080_FACTOR = math.log(4.0)


def edge_profile(t: np.ndarray, t20_80: float,
                 shape: EdgeShape = EdgeShape.ERF) -> np.ndarray:
    """Normalized 0->1 transition centered at t=0.

    Parameters
    ----------
    t:
        Time axis in ps, with t=0 at the 50% crossing.
    t20_80:
        Desired 20-80% transition time in ps. Zero gives a step.
    shape:
        Analytic edge shape.
    """
    t = np.asarray(t, dtype=np.float64)
    if t20_80 < 0.0:
        raise ConfigurationError(f"transition time must be >= 0, got {t20_80}")
    if t20_80 == 0.0:
        return (t >= 0.0).astype(np.float64)
    if shape is EdgeShape.ERF:
        from scipy.special import erf

        sigma = t20_80 / _ERF_2080_FACTOR
        return 0.5 * (1.0 + erf(t / (math.sqrt(2.0) * sigma)))
    if shape is EdgeShape.EXPONENTIAL:
        tau = t20_80 / _EXP_2080_FACTOR
        # Shift so the 50% point sits at t=0: 1-exp(-t/tau)=0.5 at
        # t = tau*ln2.
        ts = t + tau * math.log(2.0)
        out = np.where(ts >= 0.0, 1.0 - np.exp(-np.maximum(ts, 0.0) / tau), 0.0)
        return out
    if shape is EdgeShape.LINEAR:
        # 20-80% spans 0.6 of the swing, so the full ramp is
        # t20_80/0.6 long, centered at t=0.
        full = t20_80 / 0.6
        return np.clip(t / full + 0.5, 0.0, 1.0)
    raise ConfigurationError(f"unknown edge shape {shape!r}")


def synthesize_edge(t20_80: float, rising: bool = True,
                    shape: EdgeShape = EdgeShape.ERF,
                    dt: float = 1.0, padding: float = 3.0):
    """Return (times, values) for a single normalized transition.

    The record spans ``padding * t20_80`` before and after the 50%
    point (minimum 5 ps on each side so a zero-rise-time step still
    has flat regions).
    """
    from repro.signal.waveform import Waveform

    half_span = max(padding * t20_80, 5.0)
    n = int(round(2.0 * half_span / dt)) + 1
    t = -half_span + dt * np.arange(n)
    v = edge_profile(t, t20_80, shape)
    if not rising:
        v = 1.0 - v
    return Waveform(v, dt=dt, t0=-half_span)


def sigma_for_erf_edge(t20_80: float) -> float:
    """Gaussian sigma of an erf edge with the given 20-80% time."""
    if t20_80 <= 0.0:
        raise ConfigurationError(f"transition time must be > 0, got {t20_80}")
    return t20_80 / _ERF_2080_FACTOR


def combine_rise_times(*t20_80s: float) -> float:
    """RSS-combine cascaded stage transition times.

    Cascaded Gaussian-response stages combine in root-sum-square:
    the output 20-80% time is sqrt(sum of squares) of the stages'.

    >>> round(combine_rise_times(30.0, 40.0), 3)
    50.0
    """
    return math.sqrt(sum(t * t for t in t20_80s))
