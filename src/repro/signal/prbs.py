"""Pseudo-random binary sequence utilities.

The DLC generates its test patterns with LFSRs (the paper's eye
diagrams use "a pseudo-random bit pattern produced by an LFSR in the
DLC"). This module provides the standard PRBS polynomials and a fast
software generator used by both the DLC model (``repro.dlc.lfsr``)
and test equipment models (``repro.instruments.bert``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro._rng import spawn_seeds  # noqa: F401  (re-exported: the
# sharded-generation entry point lives beside the PRBS tools)
from repro.errors import ConfigurationError

#: Standard PRBS feedback tap pairs (x^n + x^m + 1), keyed by order.
PRBS_POLYNOMIALS: Dict[int, Tuple[int, int]] = {
    7: (7, 6),
    9: (9, 5),
    11: (11, 9),
    15: (15, 14),
    23: (23, 18),
    31: (31, 28),
}


def _check_prbs_args(order: int, length: int, seed: int) -> None:
    if order not in PRBS_POLYNOMIALS:
        raise ConfigurationError(
            f"unsupported PRBS order {order}; choose from "
            f"{sorted(PRBS_POLYNOMIALS)}"
        )
    if length < 0:
        raise ConfigurationError(f"length must be >= 0, got {length}")
    if seed <= 0 or seed >= (1 << order):
        raise ConfigurationError(
            f"seed must be in [1, 2^{order}-1], got {seed}"
        )


def prbs_bits(order: int, length: int, seed: int = 1,
              cache=None) -> np.ndarray:
    """Generate *length* bits of a PRBS-*order* sequence.

    Generation is blockwise over GF(2) (see
    :func:`repro.signal._kernels.prbs_bits_blockwise`) and bit-exact
    against the scalar LFSR (:func:`prbs_bits_scalar`), including
    the :func:`advance_state` / :func:`prbs_shard_states` tiling
    contract used by sharded runs.

    Parameters
    ----------
    order:
        PRBS order; must be one of :data:`PRBS_POLYNOMIALS`.
    length:
        Number of bits to produce.
    seed:
        Nonzero initial LFSR state.
    cache:
        Optional injected :class:`repro.cache.ArtifactCache`;
        defaults to the module-level active one. The stream is
        keyed ``(order, length, seed)`` and hits are bit-identical
        to fresh generation.

    Returns
    -------
    numpy.ndarray
        Array of 0/1 ``uint8`` values.
    """
    _check_prbs_args(order, length, seed)
    from repro import cache as _cache
    from repro import telemetry
    from repro.signal import _backend

    tap_a, tap_b = PRBS_POLYNOMIALS[order]
    generate = _backend.dispatch("prbs_blockwise",
                                 telemetry.resolve(None))
    store = _cache.resolve(cache)
    if store.enabled:
        # Keys never depend on the active backend (every backend is
        # bit-exact), so cached streams stay shared across backends.
        key = _cache.canonical_digest("prbs_bits", order, length, seed)
        return store.get_or_compute(
            key, lambda: generate(order, length, seed, tap_a, tap_b),
        )
    return generate(order, length, seed, tap_a, tap_b)


def prbs_bits_batch(order: int, length: int,
                    seeds: Sequence[int]) -> np.ndarray:
    """A ``(len(seeds), length)`` block of PRBS-*order* streams.

    Row *k* is bit-exact ``prbs_bits(order, length, seeds[k])`` —
    the batched entry point simply hands all seeds to the active
    kernel backend at once (the ``fused`` backend advances every
    state through one matrix product per block instead of one per
    seed). Combine with :func:`prbs_shard_states` to tile one
    serial stream across rows.
    """
    seeds = [int(s) for s in seeds]
    _check_prbs_args(order, length, 1)  # order/length, even seedless
    for s in seeds:
        _check_prbs_args(order, length, s)
    from repro import telemetry
    from repro.signal import _backend

    tap_a, tap_b = PRBS_POLYNOMIALS[order]
    generate = _backend.dispatch("prbs_blockwise",
                                 telemetry.resolve(None))
    return generate(order, length, seeds, tap_a, tap_b)


def prbs_bits_scalar(order: int, length: int, seed: int = 1) -> np.ndarray:
    """Bit-at-a-time reference LFSR (the pre-vectorization kernel).

    Kept as the golden reference the blockwise generator is
    validated against; prefer :func:`prbs_bits` everywhere else.
    """
    _check_prbs_args(order, length, seed)
    tap_a, tap_b = PRBS_POLYNOMIALS[order]
    state = seed
    out = np.empty(length, dtype=np.uint8)
    mask = (1 << order) - 1
    # Fibonacci LFSR, shifting left: for x^n + x^m + 1 the feedback
    # is the XOR of state bits n-1 and m-1 (0-indexed from the LSB).
    shift_a = tap_a - 1
    shift_b = tap_b - 1
    for i in range(length):
        bit = ((state >> shift_a) ^ (state >> shift_b)) & 1
        state = ((state << 1) | bit) & mask
        out[i] = bit
    return out


def advance_state(order: int, seed: int, steps: int) -> int:
    """The LFSR state after *steps* bits from *seed*.

    ``prbs_bits(order, m, seed=advance_state(order, seed, k))``
    yields exactly bits ``[k, k+m)`` of the serial stream — the
    primitive that lets shards continue one PRBS stream mid-flight.
    """
    if order not in PRBS_POLYNOMIALS:
        raise ConfigurationError(f"unsupported PRBS order {order}")
    if steps < 0:
        raise ConfigurationError(f"steps must be >= 0, got {steps}")
    if seed <= 0 or seed >= (1 << order):
        raise ConfigurationError(
            f"seed must be in [1, 2^{order}-1], got {seed}"
        )
    tap_a, tap_b = PRBS_POLYNOMIALS[order]
    shift_a, shift_b = tap_a - 1, tap_b - 1
    mask = (1 << order) - 1
    # The state sequence is periodic; only the residual walk matters.
    steps %= (1 << order) - 1
    state = seed
    for _ in range(steps):
        bit = ((state >> shift_a) ^ (state >> shift_b)) & 1
        state = ((state << 1) | bit) & mask
    return state


def prbs_shard_states(order: int, seed: int,
                      shard_lengths: Sequence[int]) -> List[int]:
    """Per-shard start states that exactly tile the serial stream.

    Shard k generating ``shard_lengths[k]`` bits from its returned
    state produces the same bits a single serial generator would
    have produced over that span — concatenating the shard outputs
    reproduces ``prbs_bits(order, sum(shard_lengths), seed)``
    bit-for-bit. This is how a sharded BER run replays the *same*
    pattern the serial run checks, rather than n independent ones.
    """
    states: List[int] = []
    state = seed
    for length in shard_lengths:
        if length < 0:
            raise ConfigurationError(
                f"shard lengths must be >= 0, got {length}"
            )
        states.append(state)
        state = advance_state(order, state, length)
    return states


def prbs_period(order: int) -> int:
    """The repetition period of a maximal-length PRBS of *order*.

    >>> prbs_period(7)
    127
    """
    if order not in PRBS_POLYNOMIALS:
        raise ConfigurationError(f"unsupported PRBS order {order}")
    return (1 << order) - 1


def run_length_histogram(bits: np.ndarray) -> Dict[int, int]:
    """Histogram of run lengths (consecutive identical bits).

    A maximal-length PRBS has a characteristic run-length
    distribution; tests use this to validate generator correctness.
    """
    bits = np.asarray(bits)
    if len(bits) == 0:
        return {}
    change = np.flatnonzero(np.diff(bits.astype(np.int8)) != 0)
    boundaries = np.concatenate(([-1], change, [len(bits) - 1]))
    runs = np.diff(boundaries)
    hist: Dict[int, int] = {}
    for r in runs:
        hist[int(r)] = hist.get(int(r), 0) + 1
    return hist
