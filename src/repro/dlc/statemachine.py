"""State machines synthesized into the DLC.

"State machines encoded in the FPGA, together with higher-speed PECL
multiplexers and sampling circuits synthesize the desired tests in
real time." This module gives a generic table-driven Moore machine
plus the concrete test-sequencer FSM both applications use: idle →
arm → run (pattern streaming) → done, with an abort path.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.errors import ConfigurationError


class StateMachine:
    """Table-driven Moore state machine.

    Transitions are keyed by ``(state, event)``. Unknown events in a
    state are ignored by default (a hardware FSM simply holds state),
    or raise if *strict* is set.
    """

    def __init__(self, initial: Hashable, strict: bool = False):
        self._state = initial
        self._initial = initial
        self._strict = bool(strict)
        self._transitions: Dict[Tuple[Hashable, Hashable], Hashable] = {}
        self._entry_actions: Dict[Hashable, List[Callable[[], None]]] = {}
        self._history: List[Hashable] = [initial]

    @property
    def state(self) -> Hashable:
        """The current state."""
        return self._state

    @property
    def history(self) -> List[Hashable]:
        """Every state visited, in order (including the initial)."""
        return list(self._history)

    def add_transition(self, state: Hashable, event: Hashable,
                       next_state: Hashable) -> None:
        """Define ``state --event--> next_state``."""
        key = (state, event)
        if key in self._transitions:
            raise ConfigurationError(
                f"duplicate transition for {state!r} on {event!r}"
            )
        self._transitions[key] = next_state

    def on_enter(self, state: Hashable,
                 action: Callable[[], None]) -> None:
        """Register an action to run each time *state* is entered."""
        self._entry_actions.setdefault(state, []).append(action)

    def fire(self, event: Hashable) -> Hashable:
        """Apply *event*; return the (possibly unchanged) state."""
        key = (self._state, event)
        if key not in self._transitions:
            if self._strict:
                raise ConfigurationError(
                    f"no transition from {self._state!r} on {event!r}"
                )
            return self._state
        next_state = self._transitions[key]
        if next_state != self._state:
            self._state = next_state
            self._history.append(next_state)
            for action in self._entry_actions.get(next_state, []):
                action()
        return self._state

    def reset(self) -> None:
        """Force back to the initial state (no entry actions)."""
        self._state = self._initial
        self._history = [self._initial]


class SequencerState(enum.Enum):
    """States of the DLC test sequencer."""

    IDLE = "idle"
    ARMED = "armed"
    RUNNING = "running"
    DONE = "done"
    ERROR = "error"


class TestSequencer:
    """The DLC's test-control FSM.

    Wraps a :class:`StateMachine` with the concrete test flow:

    * ``IDLE --arm--> ARMED`` (pattern loaded, outputs quiet)
    * ``ARMED --trigger--> RUNNING`` (pattern streaming to PECL)
    * ``RUNNING --complete--> DONE``
    * ``RUNNING --abort--> IDLE``
    * any state ``--fault--> ERROR``; ``ERROR --clear--> IDLE``

    A cycle counter tracks pattern progress while running.
    """

    # Not a pytest test class despite the Test* name.
    __test__ = False

    def __init__(self, pattern_length: int = 0):
        if pattern_length < 0:
            raise ConfigurationError("pattern length must be >= 0")
        self.pattern_length = int(pattern_length)
        self.cycles_run = 0
        fsm = StateMachine(SequencerState.IDLE)
        for state in SequencerState:
            if state is not SequencerState.ERROR:
                fsm.add_transition(state, "fault", SequencerState.ERROR)
        fsm.add_transition(SequencerState.IDLE, "arm", SequencerState.ARMED)
        fsm.add_transition(SequencerState.ARMED, "trigger",
                           SequencerState.RUNNING)
        fsm.add_transition(SequencerState.ARMED, "abort",
                           SequencerState.IDLE)
        fsm.add_transition(SequencerState.RUNNING, "complete",
                           SequencerState.DONE)
        fsm.add_transition(SequencerState.RUNNING, "abort",
                           SequencerState.IDLE)
        fsm.add_transition(SequencerState.DONE, "arm",
                           SequencerState.ARMED)
        fsm.add_transition(SequencerState.ERROR, "clear",
                           SequencerState.IDLE)
        fsm.on_enter(SequencerState.RUNNING, self._on_start)
        self._fsm = fsm

    def _on_start(self) -> None:
        self.cycles_run = 0

    @property
    def state(self) -> SequencerState:
        """Current sequencer state."""
        return self._fsm.state

    def arm(self, pattern_length: Optional[int] = None) -> None:
        """Load a pattern (optionally of a new length) and arm."""
        if pattern_length is not None:
            if pattern_length < 0:
                raise ConfigurationError("pattern length must be >= 0")
            self.pattern_length = int(pattern_length)
        self._fsm.fire("arm")

    def trigger(self) -> None:
        """Start the armed test."""
        self._fsm.fire("trigger")

    def abort(self) -> None:
        """Stop and return to idle."""
        self._fsm.fire("abort")

    def fault(self) -> None:
        """Enter the error state."""
        self._fsm.fire("fault")

    def clear(self) -> None:
        """Clear an error."""
        self._fsm.fire("clear")

    def clock(self, n_cycles: int = 1) -> SequencerState:
        """Advance *n_cycles* fabric clocks while running.

        Completion fires automatically when the pattern is exhausted.
        """
        if n_cycles < 0:
            raise ConfigurationError("cycle count must be >= 0")
        if self.state is SequencerState.RUNNING:
            self.cycles_run += n_cycles
            if self.pattern_length and self.cycles_run >= self.pattern_length:
                self.cycles_run = self.pattern_length
                self._fsm.fire("complete")
        return self.state

    @property
    def progress(self) -> float:
        """Fraction of the pattern already streamed (0-1)."""
        if self.pattern_length == 0:
            return 0.0
        return min(1.0, self.cycles_run / self.pattern_length)
