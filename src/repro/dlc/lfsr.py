"""Register-accurate LFSR, the DLC's pseudo-random pattern source.

The paper's eye-diagram stimuli are "a pseudo-random bit pattern
produced by an LFSR in the DLC". This class models the hardware
register so state can be saved/restored, stepped serially, or read
out as parallel words (the form the FPGA hands to the PECL
serializers, several bits per fabric clock).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.signal.prbs import PRBS_POLYNOMIALS


class LFSR:
    """A Fibonacci LFSR with polynomial ``x^n + x^m + 1``.

    Parameters
    ----------
    order:
        Register length n. Standard PRBS orders get their standard
        second tap automatically; otherwise *taps* must be supplied.
    taps:
        Optional explicit ``(n, m)`` feedback taps.
    seed:
        Nonzero initial register state.
    """

    def __init__(self, order: int, taps: Tuple[int, int] = None,
                 seed: int = 1):
        if taps is None:
            if order not in PRBS_POLYNOMIALS:
                raise ConfigurationError(
                    f"no standard taps for order {order}; pass taps="
                )
            taps = PRBS_POLYNOMIALS[order]
        tap_a, tap_b = taps
        if tap_a != order:
            raise ConfigurationError(
                f"first tap must equal the order ({order}), got {tap_a}"
            )
        if not 1 <= tap_b < order:
            raise ConfigurationError(
                f"second tap must be in [1, {order-1}], got {tap_b}"
            )
        if not 1 <= seed < (1 << order):
            raise ConfigurationError(
                f"seed must be in [1, 2^{order}-1], got {seed}"
            )
        self.order = int(order)
        self.taps = (int(tap_a), int(tap_b))
        self._mask = (1 << order) - 1
        self._state = int(seed)
        self._seed = int(seed)

    @property
    def state(self) -> int:
        """Current register contents."""
        return self._state

    @property
    def period(self) -> int:
        """Sequence period for a maximal-length polynomial."""
        return self._mask

    def reset(self) -> None:
        """Restore the seed state."""
        self._state = self._seed

    def step(self) -> int:
        """Advance one bit time; return the output bit."""
        bit = ((self._state >> (self.taps[0] - 1))
               ^ (self._state >> (self.taps[1] - 1))) & 1
        self._state = ((self._state << 1) | bit) & self._mask
        return bit

    def bits(self, n: int) -> np.ndarray:
        """Advance *n* bit times; return the output bits."""
        if n < 0:
            raise ConfigurationError(f"bit count must be >= 0, got {n}")
        out = np.empty(n, dtype=np.uint8)
        state = self._state
        shift_a = self.taps[0] - 1
        shift_b = self.taps[1] - 1
        mask = self._mask
        for i in range(n):
            bit = ((state >> shift_a) ^ (state >> shift_b)) & 1
            state = ((state << 1) | bit) & mask
            out[i] = bit
        self._state = state
        return out

    def words(self, n_words: int, width: int) -> List[int]:
        """Advance ``n_words * width`` bit times, grouped MSB-first.

        This is how the FPGA fabric feeds the PECL serializer: one
        *width*-bit word per fabric clock, serialized MSB first.
        """
        if width < 1:
            raise ConfigurationError(f"word width must be >= 1, got {width}")
        stream = self.bits(n_words * width)
        words = []
        for k in range(n_words):
            value = 0
            for b in stream[k * width:(k + 1) * width]:
                value = (value << 1) | int(b)
            words.append(value)
        return words

    def __repr__(self) -> str:
        return (f"LFSR(order={self.order}, taps={self.taps}, "
                f"state=0b{self._state:0{self.order}b})")
