"""Rate-limited FPGA I/O pins and banks.

The XC2V1000's I/O are rated to 800 Mbps, but the paper derates them
to 300-400 Mbps "to maintain sufficient design margin". The models
here enforce both ceilings: driving past the configured limit raises
:class:`RateLimitError`; the configured limit itself cannot exceed
the silicon rating.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError, RateLimitError
from repro._units import MBPS


class IOStandard(enum.Enum):
    """Electrical standards available on the DLC's I/O."""

    LVCMOS25 = "lvcmos25"
    LVCMOS33 = "lvcmos33"
    LVDS = "lvds"
    LVPECL = "lvpecl"


#: Silicon rating of an XC2V1000-class I/O, in Mbps.
SILICON_MAX_MBPS = 800.0

#: Default derated operating limit used in the paper, in Mbps.
DEFAULT_DERATED_MBPS = 400.0


class IOPin:
    """One general-purpose FPGA I/O pin.

    Parameters
    ----------
    name:
        Pin identifier.
    max_rate_mbps:
        Configured operating ceiling in Mbps. Must not exceed
        :data:`SILICON_MAX_MBPS`.
    standard:
        Electrical standard.
    """

    def __init__(self, name: str,
                 max_rate_mbps: float = DEFAULT_DERATED_MBPS,
                 standard: IOStandard = IOStandard.LVCMOS25):
        if max_rate_mbps <= 0.0:
            raise ConfigurationError(
                f"rate limit must be positive, got {max_rate_mbps}"
            )
        if max_rate_mbps > SILICON_MAX_MBPS:
            raise ConfigurationError(
                f"pin {name!r}: configured limit {max_rate_mbps} Mbps "
                f"exceeds silicon rating {SILICON_MAX_MBPS} Mbps"
            )
        self.name = name
        self.max_rate_mbps = float(max_rate_mbps)
        self.standard = standard
        self._driven_bits: Optional[np.ndarray] = None
        self._driven_rate_mbps: Optional[float] = None

    def drive(self, bits, rate_mbps: float) -> np.ndarray:
        """Drive a bit sequence out of this pin at *rate_mbps*.

        Returns the bits as driven (the digital stream handed to the
        PECL stage). Raises :class:`RateLimitError` past the limit.
        """
        if rate_mbps <= 0.0:
            raise ConfigurationError(
                f"drive rate must be positive, got {rate_mbps}"
            )
        if rate_mbps > self.max_rate_mbps:
            telemetry.active().counter("dlc.io.rate_limit_hits").inc()
            raise RateLimitError(
                f"pin {self.name!r}: {rate_mbps} Mbps exceeds the "
                f"configured limit of {self.max_rate_mbps} Mbps"
            )
        bits = np.asarray(bits).astype(np.uint8)
        if np.any(bits > 1):
            raise ConfigurationError("bits must be 0 or 1")
        self._driven_bits = bits
        self._driven_rate_mbps = float(rate_mbps)
        return bits

    @property
    def last_driven(self) -> Optional[np.ndarray]:
        """The most recent bit stream driven on this pin, if any."""
        return self._driven_bits

    @property
    def last_rate_mbps(self) -> Optional[float]:
        """The rate of the most recent drive, in Mbps."""
        return self._driven_rate_mbps

    def __repr__(self) -> str:
        return (f"IOPin({self.name!r}, limit={self.max_rate_mbps} Mbps, "
                f"{self.standard.value})")


class IOBank:
    """A named group of I/O pins driven together (e.g. one mux input byte).

    Parameters
    ----------
    name:
        Bank identifier.
    n_pins:
        Number of pins in the bank.
    max_rate_mbps:
        Per-pin operating ceiling.
    """

    def __init__(self, name: str, n_pins: int,
                 max_rate_mbps: float = DEFAULT_DERATED_MBPS,
                 standard: IOStandard = IOStandard.LVCMOS25):
        if n_pins < 1:
            raise ConfigurationError(f"bank needs >= 1 pin, got {n_pins}")
        self.name = name
        self.pins: List[IOPin] = [
            IOPin(f"{name}[{i}]", max_rate_mbps, standard)
            for i in range(n_pins)
        ]

    @property
    def n_pins(self) -> int:
        """Number of pins in the bank."""
        return len(self.pins)

    @property
    def max_rate_mbps(self) -> float:
        """The per-pin ceiling (uniform across the bank)."""
        return self.pins[0].max_rate_mbps

    def drive(self, lanes, rate_mbps: float) -> np.ndarray:
        """Drive one bit sequence per pin.

        Parameters
        ----------
        lanes:
            2-D array-like of shape (n_pins, n_bits).
        rate_mbps:
            Per-pin rate.

        Returns
        -------
        numpy.ndarray
            The driven lanes, shape (n_pins, n_bits).
        """
        lanes = np.asarray(lanes).astype(np.uint8)
        if lanes.ndim != 2 or lanes.shape[0] != self.n_pins:
            raise ConfigurationError(
                f"bank {self.name!r} expects shape ({self.n_pins}, n); "
                f"got {lanes.shape}"
            )
        driven = np.vstack([
            pin.drive(lanes[i], rate_mbps)
            for i, pin in enumerate(self.pins)
        ])
        tel = telemetry.active()
        tel.counter("dlc.io.bank_drives").inc()
        tel.counter("dlc.io.bits_driven").inc(int(driven.size))
        return driven

    def aggregate_rate_gbps(self, rate_mbps: float) -> float:
        """Total bank throughput at a per-pin rate, in Gbps."""
        return self.n_pins * rate_mbps * MBPS

    def __repr__(self) -> str:
        return (f"IOBank({self.name!r}, {self.n_pins} pins @ "
                f"{self.max_rate_mbps} Mbps)")
