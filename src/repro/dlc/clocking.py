"""Clock distribution inside the DLC.

Two timing domains exist in the paper's systems: the 12 MHz crystal
(USB and housekeeping) and the external RF reference (0.5-2.5 GHz,
picosecond jitter) that the PECL stage divides/fans out for all
timing-critical signals. The FPGA's clock manager can divide or
multiply a reference within bounded ratios.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict

from repro.errors import ConfigurationError
from repro._units import period_ps


@dataclasses.dataclass(frozen=True)
class ClockSignal:
    """A clock: frequency plus accumulated random jitter.

    Attributes
    ----------
    frequency_ghz:
        Clock frequency in GHz.
    jitter_rms:
        RMS edge jitter in ps.
    name:
        Identifier for diagnostics.
    """

    frequency_ghz: float
    jitter_rms: float = 0.0
    name: str = "clk"

    def __post_init__(self):
        if self.frequency_ghz <= 0.0:
            raise ConfigurationError(
                f"clock frequency must be positive, got {self.frequency_ghz}"
            )
        if self.jitter_rms < 0.0:
            raise ConfigurationError(
                f"clock jitter must be >= 0, got {self.jitter_rms}"
            )

    @property
    def period(self) -> float:
        """Clock period in ps."""
        return period_ps(self.frequency_ghz)

    def divided(self, ratio: int, added_jitter_rms: float = 0.0,
                name: str = None) -> "ClockSignal":
        """Divide by an integer *ratio*; jitter adds in RSS."""
        if ratio < 1:
            raise ConfigurationError(f"divide ratio must be >= 1, got {ratio}")
        return ClockSignal(
            frequency_ghz=self.frequency_ghz / ratio,
            jitter_rms=math.hypot(self.jitter_rms, added_jitter_rms),
            name=name or f"{self.name}/{ratio}",
        )

    def multiplied(self, ratio: int, added_jitter_rms: float = 0.0,
                   name: str = None) -> "ClockSignal":
        """Multiply by an integer *ratio* (PLL); jitter adds in RSS."""
        if ratio < 1:
            raise ConfigurationError(
                f"multiply ratio must be >= 1, got {ratio}"
            )
        return ClockSignal(
            frequency_ghz=self.frequency_ghz * ratio,
            jitter_rms=math.hypot(self.jitter_rms, added_jitter_rms),
            name=name or f"{self.name}x{ratio}",
        )


#: Jitter added by one FPGA DCM pass, ps rms (CMOS PLL, far noisier
#: than the PECL path — the reason timing-critical edges bypass it).
DCM_ADDED_JITTER_RMS = 15.0


class ClockManager:
    """FPGA clock manager: derives fabric clocks from references.

    Parameters
    ----------
    crystal_mhz:
        On-board crystal frequency (12 MHz in the DLC).
    max_fabric_ghz:
        Ceiling for any fabric clock (CMOS speed limit).
    """

    def __init__(self, crystal_mhz: float = 12.0,
                 max_fabric_ghz: float = 0.4):
        if crystal_mhz <= 0.0:
            raise ConfigurationError("crystal frequency must be positive")
        if max_fabric_ghz <= 0.0:
            raise ConfigurationError("fabric ceiling must be positive")
        self.crystal = ClockSignal(crystal_mhz * 1e-3, jitter_rms=20.0,
                                   name="xtal12M")
        self.max_fabric_ghz = float(max_fabric_ghz)
        self._clocks: Dict[str, ClockSignal] = {"xtal12M": self.crystal}

    @property
    def clocks(self) -> Dict[str, ClockSignal]:
        """All registered clocks by name."""
        return dict(self._clocks)

    def register(self, clock: ClockSignal) -> ClockSignal:
        """Register an externally supplied clock (e.g. the RF input)."""
        if clock.name in self._clocks:
            raise ConfigurationError(
                f"clock name {clock.name!r} already registered"
            )
        self._clocks[clock.name] = clock
        return clock

    def derive_fabric_clock(self, source: ClockSignal, divide: int,
                            name: str = None) -> ClockSignal:
        """Divide *source* down to a fabric-rate clock.

        The result must respect the CMOS fabric ceiling; the DCM adds
        its jitter penalty.
        """
        clk = source.divided(divide, added_jitter_rms=DCM_ADDED_JITTER_RMS,
                             name=name)
        if clk.frequency_ghz > self.max_fabric_ghz:
            raise ConfigurationError(
                f"fabric clock {clk.frequency_ghz:.3f} GHz exceeds the "
                f"{self.max_fabric_ghz} GHz CMOS ceiling; divide further"
            )
        self._clocks[clk.name] = clk
        return clk

    def fabric_divider_for(self, rf_ghz: float,
                           serialization_factor: int) -> int:
        """Divider turning the RF clock into the word-rate fabric clock.

        A *serialization_factor*:1 PECL serializer consumes one word
        per ``serialization_factor`` bit periods; when the RF clock
        runs at the bit rate, the fabric clock is RF divided by the
        factor (further divided if still above the ceiling).
        """
        if serialization_factor < 1:
            raise ConfigurationError("serialization factor must be >= 1")
        divide = serialization_factor
        while rf_ghz / divide > self.max_fabric_ghz:
            divide *= 2
        return divide
