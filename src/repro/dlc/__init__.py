"""Digital Logic Core (DLC) — behavioral model of the paper's FPGA core.

The DLC is the common controlling logic of both test systems: a
Xilinx XC2V1000-class FPGA with ~200 general-purpose I/O (rated to
800 Mbps, derated to 300-400 Mbps in practice), a USB microcontroller
for PC communication, FLASH configuration storage programmed over
IEEE 1149.1, a 12 MHz crystal, and an optional SRAM pattern store.

This package models the FPGA-internal pieces: pattern generation
(LFSR and stored patterns), test-sequencer state machines, clock
management, rate-limited I/O banks, and the register file the host
reads and writes over USB.
"""

from repro.dlc.lfsr import LFSR
from repro.dlc.registers import Register, RegisterFile
from repro.dlc.io import IOPin, IOBank, IOStandard
from repro.dlc.clocking import ClockSignal, ClockManager
from repro.dlc.statemachine import StateMachine, TestSequencer, SequencerState
from repro.dlc.pattern import (
    PatternMemory,
    AlgorithmicPattern,
    walking_ones,
    walking_zeros,
    checkerboard,
    counting_pattern,
)
from repro.dlc.sram import SRAM
from repro.dlc.fpga import FPGA, FPGAResources, Bitstream
from repro.dlc.core import DigitalLogicCore
from repro.dlc.prbs_checker import CheckerState, SelfSyncChecker
from repro.dlc.selftest import (
    SelfTestReport,
    lfsr_signature_test,
    march_c_minus,
    register_readback_test,
    run_self_test,
)

__all__ = [
    "LFSR",
    "Register",
    "RegisterFile",
    "IOPin",
    "IOBank",
    "IOStandard",
    "ClockSignal",
    "ClockManager",
    "StateMachine",
    "TestSequencer",
    "SequencerState",
    "PatternMemory",
    "AlgorithmicPattern",
    "walking_ones",
    "walking_zeros",
    "checkerboard",
    "counting_pattern",
    "SRAM",
    "FPGA",
    "FPGAResources",
    "Bitstream",
    "DigitalLogicCore",
    "SelfSyncChecker",
    "CheckerState",
    "SelfTestReport",
    "run_self_test",
    "march_c_minus",
    "register_readback_test",
    "lfsr_signature_test",
]
