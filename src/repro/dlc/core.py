"""The Digital Logic Core facade.

Composes the FPGA, clocking, register file, test sequencer, pattern
sources, and the configuration FLASH into the board-level DLC of
Figure 2: the common controlling logic of both test systems.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError, RateLimitError
from repro.dlc.clocking import ClockManager, ClockSignal
from repro.dlc.fpga import FPGA, FPGAResources, Bitstream
from repro.dlc.io import IOBank, DEFAULT_DERATED_MBPS
from repro.dlc.lfsr import LFSR
from repro.dlc.pattern import PatternMemory
from repro.dlc.registers import RegisterFile
from repro.dlc.sram import SRAM
from repro.dlc.statemachine import TestSequencer, SequencerState
from repro.flash.memory import FlashMemory
from repro.flash.config_loader import ConfigLoader, store_bitstream


def default_test_design(name: str = "tsp_pattern_core") -> Bitstream:
    """A representative DLC test design bitstream.

    Sized after the paper's applications: pattern generators, the
    sequencer, USB glue and register file — a modest fraction of the
    XC2V1000.
    """
    usage = FPGAResources(logic_gates=180_000, io_pins=48,
                          block_ram_kbits=128)
    payload = (name.encode("utf-8") * 64)[:1024]
    return Bitstream(name, usage, payload)


class DigitalLogicCore:
    """Board-level DLC: FPGA + FLASH + clocks + control registers.

    Parameters
    ----------
    io_rate_mbps:
        Derated per-pin I/O ceiling (the paper uses 300-400 Mbps).
    rf_clock:
        External RF reference, if connected at construction.
    with_sram:
        Attach the optional SRAM pattern store.
    registry:
        Optional injected telemetry registry; defaults to the
        module-level active one.
    """

    def __init__(self, io_rate_mbps: float = DEFAULT_DERATED_MBPS,
                 rf_clock: Optional[ClockSignal] = None,
                 with_sram: bool = False,
                 registry=None):
        self.telemetry = registry
        self.fpga = FPGA()
        self.flash = FlashMemory()
        self.clocks = ClockManager()
        self.io_rate_mbps = float(io_rate_mbps)
        self.sram: Optional[SRAM] = SRAM() if with_sram else None
        self.sequencer = TestSequencer()
        self.registers = self._build_register_map()
        self._lfsrs: Dict[str, LFSR] = {}
        self._rf_clock: Optional[ClockSignal] = None
        if rf_clock is not None:
            self.connect_rf_clock(rf_clock)

    # -- construction helpers -------------------------------------------

    def _build_register_map(self) -> RegisterFile:
        regs = RegisterFile()
        regs.define("ID", 0x00, width=16, reset_value=0xD1C5,
                    read_only=True)
        regs.define("VERSION", 0x02, width=16, reset_value=0x0100,
                    read_only=True)
        regs.define("CONTROL", 0x04, width=16,
                    on_write=self._on_control_write)
        regs.define("STATUS", 0x06, width=16, read_only=True)
        regs.define("PATTERN_LEN", 0x08, width=32)
        regs.define("LFSR_SEED", 0x0C, width=32, reset_value=1)
        regs.define("LFSR_ORDER", 0x10, width=8, reset_value=7)
        regs.define("CHANNEL_MASK", 0x12, width=16, reset_value=0xFFFF)
        regs.define("DELAY_CODE", 0x14, width=16)
        regs.define("VOH_CODE", 0x16, width=8)
        regs.define("VOL_CODE", 0x18, width=8)
        return regs

    # CONTROL register bits.
    CTRL_ARM = 1 << 0
    CTRL_TRIGGER = 1 << 1
    CTRL_ABORT = 1 << 2
    CTRL_CLEAR = 1 << 3

    _STATUS_CODES = {
        SequencerState.IDLE: 0x0,
        SequencerState.ARMED: 0x1,
        SequencerState.RUNNING: 0x2,
        SequencerState.DONE: 0x3,
        SequencerState.ERROR: 0xF,
    }

    def _on_control_write(self, value: int) -> None:
        if value & self.CTRL_ABORT:
            self.sequencer.abort()
        if value & self.CTRL_CLEAR:
            self.sequencer.clear()
        if value & self.CTRL_ARM:
            self.sequencer.arm(self.registers["PATTERN_LEN"].value)
        if value & self.CTRL_TRIGGER:
            self.sequencer.trigger()
        self._update_status()

    def _update_status(self) -> None:
        self.registers["STATUS"].hw_set(
            self._STATUS_CODES[self.sequencer.state]
        )

    # -- configuration ----------------------------------------------------

    def program_flash(self, bitstream: Bitstream) -> int:
        """Store *bitstream* in the configuration FLASH."""
        return store_bitstream(self.flash, bitstream)

    def power_up(self) -> Bitstream:
        """Power-up: configure the FPGA from FLASH.

        Raises :class:`ConfigurationError` if FLASH holds no image.
        """
        loader = ConfigLoader(self.flash)
        bitstream = loader.power_up(self.fpga)
        self._update_status()
        return bitstream

    def configure_direct(self, bitstream: Optional[Bitstream] = None
                         ) -> Bitstream:
        """Program FLASH and power up in one step (bench convenience)."""
        if bitstream is None:
            bitstream = default_test_design()
        self.program_flash(bitstream)
        return self.power_up()

    # -- clocking ---------------------------------------------------------

    def connect_rf_clock(self, clock: ClockSignal) -> None:
        """Attach the external low-jitter RF reference."""
        self._rf_clock = clock
        if clock.name not in self.clocks.clocks:
            self.clocks.register(clock)

    @property
    def rf_clock(self) -> ClockSignal:
        """The RF reference; raises if none is connected."""
        if self._rf_clock is None:
            raise ConfigurationError(
                "no RF clock connected; the PECL stage needs a reference"
            )
        return self._rf_clock

    # -- pattern generation -----------------------------------------------

    def lfsr(self, name: str = "main") -> LFSR:
        """Fetch (creating on first use) a named fabric LFSR.

        Order and seed come from the LFSR_ORDER / LFSR_SEED registers.
        """
        if name not in self._lfsrs:
            order = self.registers["LFSR_ORDER"].value
            seed = self.registers["LFSR_SEED"].value
            seed = max(1, seed & ((1 << order) - 1))
            self._lfsrs[name] = LFSR(order, seed=seed)
        return self._lfsrs[name]

    def reset_lfsrs(self) -> None:
        """Drop fabric LFSR state (re-created from registers)."""
        self._lfsrs = {}

    def prbs_lanes(self, n_lanes: int, bits_per_lane: int,
                   lane_rate_mbps: Optional[float] = None,
                   bank_name: str = "tx") -> np.ndarray:
        """Generate PRBS data on *n_lanes* FPGA pins.

        The serial PRBS stream is struck across the lanes round-robin
        (lane k gets serial bits k, k+n, k+2n, ...) — the word layout
        an n:1 serializer needs to reconstruct the original stream.

        Returns an array of shape ``(n_lanes, bits_per_lane)``.
        """
        if n_lanes < 1:
            raise ConfigurationError(f"need >= 1 lane, got {n_lanes}")
        if bits_per_lane < 1:
            raise ConfigurationError(
                f"need >= 1 bit per lane, got {bits_per_lane}"
            )
        rate = self.io_rate_mbps if lane_rate_mbps is None else lane_rate_mbps
        serial = self.lfsr().bits(n_lanes * bits_per_lane)
        lanes = serial.reshape(bits_per_lane, n_lanes).T.copy()
        bank = self._ensure_bank(bank_name, n_lanes)
        return bank.drive(lanes, rate)

    def drive_lanes(self, lanes, lane_rate_mbps: Optional[float] = None,
                    bank_name: str = "tx") -> np.ndarray:
        """Drive a prepared lane array out of an I/O bank.

        Used when the serializer topology dictates the lane layout
        (see ``lanes_for_stream``); enforces the pins' rate limits.
        """
        lanes = np.asarray(lanes).astype(np.uint8)
        if lanes.ndim != 2:
            raise ConfigurationError("lanes must be a 2-D array")
        rate = self.io_rate_mbps if lane_rate_mbps is None \
            else lane_rate_mbps
        bank = self._ensure_bank(bank_name, lanes.shape[0])
        return bank.drive(lanes, rate)

    def pattern_lanes(self, memory: PatternMemory, n_vectors: int,
                      lane_rate_mbps: Optional[float] = None,
                      bank_name: str = "tx") -> np.ndarray:
        """Drive stored-pattern vectors onto a bank (one lane per bit)."""
        lanes = memory.lanes(n_vectors)
        rate = self.io_rate_mbps if lane_rate_mbps is None else lane_rate_mbps
        bank = self._ensure_bank(bank_name, memory.width)
        return bank.drive(lanes, rate)

    def _ensure_bank(self, name: str, n_pins: int) -> IOBank:
        # Banks are allocated at the silicon rating; io_rate_mbps is
        # the *default drive rate* (the paper's derating policy), so
        # deliberate overclock experiments (e.g. the 4 Gbps eye of
        # Figure 8, 500 Mbps per lane) remain possible while the
        # 800 Mbps hard ceiling still trips.
        from repro.dlc.io import SILICON_MAX_MBPS

        try:
            bank = self.fpga.bank(name)
        except ConfigurationError:
            bank = self.fpga.allocate_bank(name, n_pins,
                                           max_rate_mbps=SILICON_MAX_MBPS)
        if bank.n_pins != n_pins:
            raise ConfigurationError(
                f"bank {name!r} has {bank.n_pins} pins; need {n_pins}"
            )
        return bank

    # -- host-visible control ------------------------------------------

    def host_read(self, address: int) -> int:
        """Register read as seen over USB."""
        telemetry.resolve(self.telemetry) \
            .counter("dlc.register_reads").inc()
        self._update_status()
        return self.registers.read(address)

    def host_write(self, address: int, value: int) -> None:
        """Register write as seen over USB."""
        telemetry.resolve(self.telemetry) \
            .counter("dlc.register_writes").inc()
        self.registers.write(address, value)

    def run_test(self, pattern_length: int) -> SequencerState:
        """Arm, trigger, and clock a test to completion."""
        tel = telemetry.resolve(self.telemetry)
        with tel.span("dlc.run_test"):
            self.host_write(0x08, pattern_length)
            self.host_write(0x04, self.CTRL_ARM)
            self.host_write(0x04, self.CTRL_TRIGGER)
            self.sequencer.clock(pattern_length)
            self._update_status()
            # cycles_run is clamped to the pattern, so this is the
            # number of cycles actually consumed (not the request).
            tel.counter("dlc.tests_run").inc()
            tel.counter("dlc.cycles").inc(self.sequencer.cycles_run)
            return self.sequencer.state
