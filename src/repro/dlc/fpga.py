"""FPGA device model (Xilinx XC2V1000 class).

The paper's central component is "a 1-million gate FPGA (Xilinx
XC2V1000), with over 200 I/O, each capable of running up to 800
Mbps". The model tracks device capacity, accepts a bitstream (from
the configuration FLASH at power-up or directly for bench use), and
accounts resources of the "synthesized" design.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.dlc.io import IOBank, DEFAULT_DERATED_MBPS


@dataclasses.dataclass(frozen=True)
class FPGAResources:
    """Resource vector for a device or a design.

    Attributes
    ----------
    logic_gates:
        System-gate count.
    io_pins:
        User I/O count.
    block_ram_kbits:
        Block RAM in kilobits.
    """

    logic_gates: int
    io_pins: int
    block_ram_kbits: int

    def __post_init__(self):
        for field in dataclasses.fields(self):
            if getattr(self, field.name) < 0:
                raise ConfigurationError(
                    f"{field.name} must be >= 0"
                )

    def fits_in(self, capacity: "FPGAResources") -> bool:
        """True if this usage fits within *capacity*."""
        return (self.logic_gates <= capacity.logic_gates
                and self.io_pins <= capacity.io_pins
                and self.block_ram_kbits <= capacity.block_ram_kbits)

    def __add__(self, other: "FPGAResources") -> "FPGAResources":
        return FPGAResources(
            self.logic_gates + other.logic_gates,
            self.io_pins + other.io_pins,
            self.block_ram_kbits + other.block_ram_kbits,
        )


#: Capacity of the XC2V1000 (1M system gates, 328 user I/O, 720 kbit BRAM).
XC2V1000 = FPGAResources(logic_gates=1_000_000, io_pins=328,
                         block_ram_kbits=720)

#: IDCODE of the XC2V1000 as reported over IEEE 1149.1.
XC2V1000_IDCODE = 0x01008093


class Bitstream:
    """An FPGA configuration image.

    Parameters
    ----------
    design_name:
        Human-readable design identifier.
    usage:
        Resources the design consumes.
    payload:
        Raw configuration bytes (synthesized content is opaque; a
        CRC32 guards integrity through FLASH storage and JTAG).
    """

    def __init__(self, design_name: str, usage: FPGAResources,
                 payload: bytes = b""):
        if not design_name:
            raise ConfigurationError("design name must be non-empty")
        self.design_name = design_name
        self.usage = usage
        self.payload = bytes(payload)
        self.crc32 = zlib.crc32(self.payload) & 0xFFFFFFFF

    def verify(self) -> bool:
        """Recompute the payload CRC and compare."""
        return (zlib.crc32(self.payload) & 0xFFFFFFFF) == self.crc32

    def to_bytes(self) -> bytes:
        """Serialize for FLASH storage: header + payload.

        Layout: magic ``b'RBIT'``, u16 name length, name, u32 gates,
        u16 I/O, u16 BRAM kbits, u32 CRC, u32 payload length, payload.
        """
        name = self.design_name.encode("utf-8")
        header = (
            b"RBIT"
            + len(name).to_bytes(2, "big") + name
            + self.usage.logic_gates.to_bytes(4, "big")
            + self.usage.io_pins.to_bytes(2, "big")
            + self.usage.block_ram_kbits.to_bytes(2, "big")
            + self.crc32.to_bytes(4, "big")
            + len(self.payload).to_bytes(4, "big")
        )
        return header + self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "Bitstream":
        """Deserialize from FLASH contents; validates the CRC."""
        if len(data) < 4 or data[:4] != b"RBIT":
            raise ConfigurationError("not a bitstream image (bad magic)")
        pos = 4
        name_len = int.from_bytes(data[pos:pos + 2], "big")
        pos += 2
        name = data[pos:pos + name_len].decode("utf-8")
        pos += name_len
        gates = int.from_bytes(data[pos:pos + 4], "big")
        pos += 4
        io = int.from_bytes(data[pos:pos + 2], "big")
        pos += 2
        bram = int.from_bytes(data[pos:pos + 2], "big")
        pos += 2
        crc = int.from_bytes(data[pos:pos + 4], "big")
        pos += 4
        payload_len = int.from_bytes(data[pos:pos + 4], "big")
        pos += 4
        payload = data[pos:pos + payload_len]
        if len(payload) != payload_len:
            raise ConfigurationError("bitstream image truncated")
        bs = cls(name, FPGAResources(gates, io, bram), payload)
        if bs.crc32 != crc:
            raise ConfigurationError(
                f"bitstream CRC mismatch: stored 0x{crc:08x}, "
                f"computed 0x{bs.crc32:08x}"
            )
        return bs


class FPGA:
    """The DLC's FPGA: capacity, configuration state, and I/O banks.

    Parameters
    ----------
    capacity:
        Device resources; defaults to the XC2V1000.
    idcode:
        JTAG IDCODE.
    """

    def __init__(self, capacity: FPGAResources = XC2V1000,
                 idcode: int = XC2V1000_IDCODE):
        self.capacity = capacity
        self.idcode = int(idcode)
        self._bitstream: Optional[Bitstream] = None
        self._banks: Dict[str, IOBank] = {}

    @property
    def configured(self) -> bool:
        """True once a bitstream is loaded."""
        return self._bitstream is not None

    @property
    def design_name(self) -> Optional[str]:
        """Name of the loaded design, if any."""
        return self._bitstream.design_name if self._bitstream else None

    @property
    def bitstream(self) -> Optional[Bitstream]:
        """The loaded bitstream, if any."""
        return self._bitstream

    def configure(self, bitstream: Bitstream) -> None:
        """Load a configuration; design must fit and pass its CRC."""
        if not bitstream.verify():
            raise ConfigurationError(
                f"bitstream {bitstream.design_name!r} failed CRC check"
            )
        if not bitstream.usage.fits_in(self.capacity):
            raise ConfigurationError(
                f"design {bitstream.design_name!r} does not fit: needs "
                f"{bitstream.usage}, device has {self.capacity}"
            )
        self._bitstream = bitstream
        self._banks = {}

    def unconfigure(self) -> None:
        """Clear the configuration (power cycle without FLASH load)."""
        self._bitstream = None
        self._banks = {}

    def _require_configured(self) -> None:
        if not self.configured:
            raise ConfigurationError(
                "FPGA is not configured; load a bitstream first"
            )

    def allocate_bank(self, name: str, n_pins: int,
                      max_rate_mbps: float = DEFAULT_DERATED_MBPS,
                      **kwargs) -> IOBank:
        """Claim *n_pins* I/O as a named bank of the current design."""
        self._require_configured()
        if name in self._banks:
            raise ConfigurationError(f"I/O bank {name!r} already allocated")
        used = sum(b.n_pins for b in self._banks.values())
        if used + n_pins > self.capacity.io_pins:
            raise ConfigurationError(
                f"I/O exhausted: {used} used + {n_pins} requested > "
                f"{self.capacity.io_pins} available"
            )
        bank = IOBank(name, n_pins, max_rate_mbps, **kwargs)
        self._banks[name] = bank
        return bank

    def bank(self, name: str) -> IOBank:
        """Look up an allocated bank."""
        try:
            return self._banks[name]
        except KeyError:
            raise ConfigurationError(f"no I/O bank named {name!r}") from None

    @property
    def io_pins_used(self) -> int:
        """Total pins claimed by allocated banks."""
        return sum(b.n_pins for b in self._banks.values())

    def utilization(self) -> Dict[str, float]:
        """Fractional resource utilization of the loaded design."""
        self._require_configured()
        usage = self._bitstream.usage
        return {
            "logic_gates": usage.logic_gates / self.capacity.logic_gates,
            "io_pins": usage.io_pins / self.capacity.io_pins,
            "block_ram_kbits": (
                usage.block_ram_kbits / self.capacity.block_ram_kbits
                if self.capacity.block_ram_kbits else 0.0
            ),
        }
