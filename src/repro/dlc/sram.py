"""Optional SRAM pattern store.

"A high-speed port to optional SRAM is also part of the design ...
The SRAM can provide extended test pattern storage when algorithmic
pattern generation is not feasible."

The model is a word-addressable synchronous SRAM with bounded
capacity and an access counter (used by the throughput model to cost
stored-pattern tests against algorithmic ones).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import ConfigurationError


class SRAM:
    """Synchronous SRAM attached to the DLC's high-speed port.

    Parameters
    ----------
    depth:
        Number of words.
    width:
        Word width in bits.
    access_time_ns:
        Per-access cycle time in nanoseconds.
    """

    def __init__(self, depth: int = 1 << 18, width: int = 32,
                 access_time_ns: float = 5.0):
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width}")
        if access_time_ns <= 0.0:
            raise ConfigurationError("access time must be positive")
        self.depth = int(depth)
        self.width = int(width)
        self.access_time_ns = float(access_time_ns)
        self._mask = (1 << width) - 1
        # Sparse storage: unwritten words read as zero, like real
        # SRAM after a deterministic power-up in simulation.
        self._data: Dict[int, int] = {}
        # Injected manufacturing defects: (address, bit) -> 0/1.
        self._stuck: Dict[tuple, int] = {}
        self.reads = 0
        self.writes = 0

    def inject_stuck_at(self, address: int, bit: int,
                        value: int) -> None:
        """Inject a stuck-at fault: cell (address, bit) always reads
        *value* — the defect model memory test algorithms target."""
        self._check_address(address)
        if not 0 <= bit < self.width:
            raise ConfigurationError(
                f"bit {bit} out of range [0, {self.width})"
            )
        if value not in (0, 1):
            raise ConfigurationError("stuck value must be 0 or 1")
        self._stuck[(address, bit)] = value

    def clear_faults(self) -> None:
        """Remove all injected faults."""
        self._stuck = {}

    def _apply_faults(self, address: int, value: int) -> int:
        for (addr, bit), stuck in self._stuck.items():
            if addr == address:
                if stuck:
                    value |= (1 << bit)
                else:
                    value &= ~(1 << bit)
        return value

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.depth:
            raise ConfigurationError(
                f"address 0x{address:x} out of range [0, 0x{self.depth:x})"
            )

    def write(self, address: int, value: int) -> None:
        """Write one word."""
        self._check_address(address)
        if value & ~self._mask:
            raise ConfigurationError(
                f"value 0x{value:x} exceeds {self.width}-bit word"
            )
        self._data[address] = int(value)
        self.writes += 1

    def read(self, address: int) -> int:
        """Read one word (unwritten words read 0).

        Injected stuck-at faults corrupt the read value.
        """
        self._check_address(address)
        self.reads += 1
        return self._apply_faults(address, self._data.get(address, 0))

    def write_block(self, address: int, values) -> None:
        """Write consecutive words starting at *address*."""
        for i, v in enumerate(values):
            self.write(address + i, int(v))

    def read_block(self, address: int, n: int) -> np.ndarray:
        """Read *n* consecutive words."""
        return np.array([self.read(address + i) for i in range(n)],
                        dtype=np.int64)

    @property
    def capacity_bits(self) -> int:
        """Total storage in bits."""
        return self.depth * self.width

    def streaming_rate_gbps(self) -> float:
        """Max pattern rate sustainable from this SRAM, Gbps.

        One *width*-bit word per access time.
        """
        return self.width / self.access_time_ns

    def __repr__(self) -> str:
        return (f"SRAM({self.depth}x{self.width}, "
                f"{self.access_time_ns} ns access)")
