"""Control/status register file of the DLC.

The PC controls the DLC by reading and writing registers over USB
(see :mod:`repro.usb.protocol`). This module provides the FPGA-side
register file: named, addressed registers with width checking,
read-only status registers, and optional write side effects (the
hook the test sequencer uses to start/stop on register writes).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional

from repro.errors import ConfigurationError, ProtocolError


class Register:
    """One addressable register.

    Parameters
    ----------
    name:
        Symbolic name, unique within the file.
    address:
        Byte address, unique within the file.
    width:
        Width in bits (1-32).
    reset_value:
        Value after reset.
    read_only:
        Host writes raise :class:`ProtocolError` if True.
    on_write:
        Optional callback ``f(new_value)`` invoked after a
        successful host write.
    """

    def __init__(self, name: str, address: int, width: int = 16,
                 reset_value: int = 0, read_only: bool = False,
                 on_write: Optional[Callable[[int], None]] = None):
        if not 1 <= width <= 32:
            raise ConfigurationError(
                f"register width must be 1-32 bits, got {width}"
            )
        if address < 0:
            raise ConfigurationError(f"address must be >= 0, got {address}")
        self.name = name
        self.address = int(address)
        self.width = int(width)
        self.mask = (1 << width) - 1
        if reset_value & ~self.mask:
            raise ConfigurationError(
                f"reset value 0x{reset_value:x} exceeds {width} bits"
            )
        self.reset_value = int(reset_value)
        self.read_only = bool(read_only)
        self.on_write = on_write
        self._value = self.reset_value

    @property
    def value(self) -> int:
        """Current contents."""
        return self._value

    def reset(self) -> None:
        """Return to the reset value (no write callback)."""
        self._value = self.reset_value

    def host_write(self, value: int) -> None:
        """A write arriving from the host; honors read-only."""
        if self.read_only:
            raise ProtocolError(
                f"register {self.name!r} at 0x{self.address:02x} is read-only"
            )
        if value & ~self.mask:
            raise ProtocolError(
                f"value 0x{value:x} exceeds {self.width}-bit register "
                f"{self.name!r}"
            )
        self._value = int(value)
        if self.on_write is not None:
            self.on_write(self._value)

    def hw_set(self, value: int) -> None:
        """An internal (FPGA fabric) update; bypasses read-only."""
        self._value = int(value) & self.mask

    def __repr__(self) -> str:
        ro = ", ro" if self.read_only else ""
        return (f"Register({self.name!r}, addr=0x{self.address:02x}, "
                f"width={self.width}{ro}, value=0x{self._value:x})")


class RegisterFile:
    """A set of registers addressable by name or address."""

    def __init__(self):
        self._by_name: Dict[str, Register] = {}
        self._by_addr: Dict[int, Register] = {}

    def add(self, register: Register) -> Register:
        """Add a register; name and address must be unique."""
        if register.name in self._by_name:
            raise ConfigurationError(
                f"duplicate register name {register.name!r}"
            )
        if register.address in self._by_addr:
            raise ConfigurationError(
                f"duplicate register address 0x{register.address:02x}"
            )
        self._by_name[register.name] = register
        self._by_addr[register.address] = register
        return register

    def define(self, name: str, address: int, **kwargs) -> Register:
        """Create and add a register in one call."""
        return self.add(Register(name, address, **kwargs))

    def __getitem__(self, name: str) -> Register:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no register named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Register]:
        return iter(sorted(self._by_name.values(), key=lambda r: r.address))

    def __len__(self) -> int:
        return len(self._by_name)

    def at_address(self, address: int) -> Register:
        """Look up by byte address (the USB protocol's view)."""
        try:
            return self._by_addr[address]
        except KeyError:
            raise ProtocolError(
                f"no register at address 0x{address:02x}"
            ) from None

    def read(self, address: int) -> int:
        """Host read at *address*."""
        return self.at_address(address).value

    def write(self, address: int, value: int) -> None:
        """Host write at *address*."""
        self.at_address(address).host_write(value)

    def reset_all(self) -> None:
        """Reset every register to its reset value."""
        for reg in self._by_name.values():
            reg.reset()
