"""Test pattern storage and algorithmic generation.

The DLC synthesizes test patterns two ways: algorithmically in the
fabric (LFSR, counters, walking patterns — no memory needed) or from
stored vectors when "algorithmic pattern generation is not feasible"
(the optional SRAM port, :mod:`repro.dlc.sram`).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.dlc.lfsr import LFSR


class PatternMemory:
    """Vector storage for stored-pattern tests.

    Each vector is a *width*-bit word; the sequencer streams one
    vector per fabric clock.
    """

    def __init__(self, width: int, depth: int):
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width}")
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        self.width = int(width)
        self.depth = int(depth)
        self._mask = (1 << width) - 1
        self._vectors: List[int] = []

    def __len__(self) -> int:
        return len(self._vectors)

    def load(self, vectors) -> None:
        """Replace contents with *vectors* (iterable of ints)."""
        vectors = [int(v) for v in vectors]
        if len(vectors) > self.depth:
            raise ConfigurationError(
                f"{len(vectors)} vectors exceed memory depth {self.depth}"
            )
        for v in vectors:
            if v & ~self._mask:
                raise ConfigurationError(
                    f"vector 0x{v:x} exceeds {self.width} bits"
                )
        self._vectors = vectors

    def vector(self, index: int) -> int:
        """Fetch one vector."""
        if not 0 <= index < len(self._vectors):
            raise ConfigurationError(
                f"vector index {index} out of range "
                f"[0, {len(self._vectors)})"
            )
        return self._vectors[index]

    def stream_bits(self, lane: int, n_vectors: Optional[int] = None
                    ) -> np.ndarray:
        """Serial bit stream of one bit *lane* across the vectors."""
        if not 0 <= lane < self.width:
            raise ConfigurationError(
                f"lane {lane} out of range [0, {self.width})"
            )
        n = len(self._vectors) if n_vectors is None else n_vectors
        if n > len(self._vectors):
            raise ConfigurationError(
                f"requested {n} vectors but only {len(self._vectors)} loaded"
            )
        return np.array(
            [(v >> lane) & 1 for v in self._vectors[:n]], dtype=np.uint8
        )

    def lanes(self, n_vectors: Optional[int] = None) -> np.ndarray:
        """All lanes as a (width, n_vectors) array."""
        n = len(self._vectors) if n_vectors is None else n_vectors
        return np.vstack([self.stream_bits(k, n) for k in range(self.width)])


class AlgorithmicPattern:
    """Fabric-synthesized pattern generator.

    Parameters
    ----------
    width:
        Output word width in bits.
    generator:
        Callable ``f(index) -> int`` yielding the vector at *index*.
    name:
        Diagnostic label.
    """

    def __init__(self, width: int, generator: Callable[[int], int],
                 name: str = "algorithmic"):
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width}")
        self.width = int(width)
        self._mask = (1 << width) - 1
        self._generator = generator
        self.name = name

    def vector(self, index: int) -> int:
        """The vector at *index* (masked to the pattern width)."""
        if index < 0:
            raise ConfigurationError(f"index must be >= 0, got {index}")
        return int(self._generator(index)) & self._mask

    def vectors(self, n: int) -> List[int]:
        """The first *n* vectors."""
        return [self.vector(i) for i in range(n)]

    def stream_bits(self, lane: int, n: int) -> np.ndarray:
        """Serial stream of one bit lane over *n* vectors."""
        if not 0 <= lane < self.width:
            raise ConfigurationError(
                f"lane {lane} out of range [0, {self.width})"
            )
        return np.array(
            [(self.vector(i) >> lane) & 1 for i in range(n)],
            dtype=np.uint8,
        )


def walking_ones(width: int) -> AlgorithmicPattern:
    """A single 1 walking across an all-zeros word."""
    return AlgorithmicPattern(
        width, lambda i: 1 << (i % width), name=f"walking_ones[{width}]"
    )


def walking_zeros(width: int) -> AlgorithmicPattern:
    """A single 0 walking across an all-ones word."""
    mask = (1 << width) - 1
    return AlgorithmicPattern(
        width, lambda i: mask ^ (1 << (i % width)),
        name=f"walking_zeros[{width}]",
    )


def checkerboard(width: int) -> AlgorithmicPattern:
    """Alternating 0x5555/0xAAAA-style vectors."""
    lo = int("01" * ((width + 1) // 2), 2) & ((1 << width) - 1)
    hi = lo ^ ((1 << width) - 1)
    return AlgorithmicPattern(
        width, lambda i: lo if i % 2 == 0 else hi,
        name=f"checkerboard[{width}]",
    )


def counting_pattern(width: int) -> AlgorithmicPattern:
    """A binary up-counter."""
    return AlgorithmicPattern(width, lambda i: i, name=f"count[{width}]")


def prbs_pattern(width: int, order: int = 15,
                 seed: int = 1) -> AlgorithmicPattern:
    """PRBS vectors from a fabric LFSR (one word per clock).

    Vectors are generated eagerly per index from a private LFSR, so
    repeated calls for the same index are reproducible.
    """
    lfsr = LFSR(order, seed=seed)
    cache: List[int] = []

    def _vector(i: int) -> int:
        while len(cache) <= i:
            cache.append(lfsr.words(1, width)[0])
        return cache[i]

    return AlgorithmicPattern(width, _vector,
                              name=f"prbs{order}[{width}]")
