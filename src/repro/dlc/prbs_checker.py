"""Self-synchronizing PRBS checker (the in-fabric BERT).

The host-side :class:`~repro.instruments.bert.BitErrorRateTester`
aligns by correlation; real hardware cannot afford that. The fabric
instead synthesizes a *self-synchronizing* checker: the received
stream is shifted into an LFSR register, and once ``order`` clean
bits are in, the register predicts every next bit itself — any
mismatch is an error, with no alignment step and no pattern memory.

The price of self-synchronization: one channel error corrupts the
register and is counted up to once per feedback tap (error
multiplication), the textbook behaviour tests verify.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.signal.prbs import PRBS_POLYNOMIALS


@dataclasses.dataclass
class CheckerState:
    """Running state of one checker instance.

    Attributes
    ----------
    bits_in:
        Total bits consumed.
    bits_checked:
        Bits compared after synchronization.
    errors:
        Mismatches counted.
    synchronized:
        Whether the register holds enough clean history.
    slips:
        Loss-of-sync events (a stream slip or garbage, not random
        bit errors): each triggered one resynchronization and is
        reported here as a single event.
    """

    bits_in: int = 0
    bits_checked: int = 0
    errors: int = 0
    synchronized: bool = False
    slips: int = 0

    @property
    def ber(self) -> float:
        """Errors over checked bits."""
        if self.bits_checked == 0:
            return 0.0
        return self.errors / self.bits_checked


class SelfSyncChecker:
    """A self-synchronizing PRBS-N error checker.

    Parameters
    ----------
    order:
        PRBS order (one of the standard polynomials).
    resync_threshold:
        Consecutive errors that trigger a resynchronization (a slip
        or a totally wrong stream, not random bit errors).
    slip_window / slip_density:
        The density detector: *slip_density* errors within the last
        *slip_window* checked bits also declares loss of sync. A
        slipped stream mispredicts only ~half its bits, so a long
        all-errors run (the consecutive detector) may essentially
        never occur — the density detector is what bounds a slip to
        a window-sized burst instead of an unbounded error count.
    """

    def __init__(self, order: int = 7, resync_threshold: int = 16,
                 slip_window: int = 32, slip_density: int = 16):
        if order not in PRBS_POLYNOMIALS:
            raise ConfigurationError(
                f"unsupported PRBS order {order}"
            )
        if resync_threshold < 2:
            raise ConfigurationError("resync threshold must be >= 2")
        if slip_window < 2 or not 2 <= slip_density <= slip_window:
            raise ConfigurationError(
                "need slip_window >= slip_density >= 2"
            )
        self.order = int(order)
        self.taps = PRBS_POLYNOMIALS[order]
        self._mask = (1 << order) - 1
        self.resync_threshold = int(resync_threshold)
        self.slip_window = int(slip_window)
        self.slip_density = int(slip_density)
        self._window_mask = (1 << self.slip_window) - 1
        self.state = CheckerState()
        self._register = 0
        self._fill = 0
        self._consecutive_errors = 0
        self._recent = 0  # bitmask of the last slip_window results

    def _predict(self) -> int:
        return ((self._register >> (self.taps[0] - 1))
                ^ (self._register >> (self.taps[1] - 1))) & 1

    def reset(self) -> None:
        """Clear all state (a hardware sync-reset)."""
        self.state = CheckerState()
        self._register = 0
        self._fill = 0
        self._consecutive_errors = 0
        self._recent = 0

    def _resync(self) -> None:
        self._fill = 0
        self._register = 0
        self.state.synchronized = False
        self._consecutive_errors = 0
        self._recent = 0
        self.state.slips += 1

    def push(self, bit: int) -> bool:
        """Consume one received bit; returns True if it was an error.

        During synchronization bits fill the register and are not
        checked.
        """
        bit = int(bit) & 1
        self.state.bits_in += 1
        if self._fill < self.order:
            self._register = ((self._register << 1) | bit) & self._mask
            self._fill += 1
            if self._fill == self.order:
                if self._register == 0:
                    # All-zeros cannot seed a PRBS; keep filling.
                    self._fill = self.order - 1
                else:
                    self.state.synchronized = True
            return False
        predicted = self._predict()
        error = bit != predicted
        self.state.bits_checked += 1
        self._recent = ((self._recent << 1) | int(error)) \
            & self._window_mask
        if error:
            self.state.errors += 1
            self._consecutive_errors += 1
            if (self._consecutive_errors >= self.resync_threshold
                    or bin(self._recent).count("1")
                    >= self.slip_density):
                self._resync()
                return True
        else:
            self._consecutive_errors = 0
        # The *received* bit enters the register (self-sync): a
        # channel error therefore poisons future predictions — the
        # classic error-multiplication behaviour.
        self._register = ((self._register << 1) | bit) & self._mask
        return error

    def run(self, bits: Iterable[int]) -> CheckerState:
        """Consume a whole stream; returns the final state."""
        for bit in np.asarray(bits).astype(np.uint8):
            self.push(int(bit))
        return self.state

    def error_multiplication_factor(self) -> int:
        """Errors counted per single channel error (= tap count)."""
        return 2  # x^n + x^m + 1 has two feedback taps
