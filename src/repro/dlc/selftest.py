"""DLC power-on self-test.

Before a board drives a DUT it checks itself: register write/read-
back, LFSR signature verification against a golden value, and a
March C- test over the optional pattern SRAM. The March element is
the classic memory test (the paper notes its approach "is a logical
extension of existing parallel tests (such as used in memory
testing)").
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.dlc.core import DigitalLogicCore
from repro.dlc.lfsr import LFSR
from repro.dlc.sram import SRAM


@dataclasses.dataclass(frozen=True)
class SelfTestReport:
    """Outcome of the DLC self-test.

    Attributes
    ----------
    register_ok:
        Register file write/readback passed.
    lfsr_ok:
        Pattern-generator signature matched golden.
    sram_faults:
        (address, bit) locations March C- flagged; empty = clean.
    sram_tested:
        Whether an SRAM was present to test.
    """

    register_ok: bool
    lfsr_ok: bool
    sram_faults: Tuple[Tuple[int, int], ...]
    sram_tested: bool

    @property
    def passed(self) -> bool:
        """True when every executed element passed."""
        return (self.register_ok and self.lfsr_ok
                and not self.sram_faults)


def register_readback_test(dlc: DigitalLogicCore) -> bool:
    """Walk patterns through every writable register and read back."""
    patterns = (0x0000, 0xFFFF, 0xAAAA, 0x5555)
    ok = True
    for reg in dlc.registers:
        if reg.read_only or reg.name == "CONTROL":
            continue  # CONTROL has side effects; checked elsewhere
        saved = reg.value
        for pattern in patterns:
            value = pattern & reg.mask
            dlc.host_write(reg.address, value)
            if dlc.host_read(reg.address) != value:
                ok = False
        dlc.host_write(reg.address, saved)
    return ok


#: Golden LFSR signature: PRBS-15 seed 1, 4096 bits through a
#: 16-bit MISR (computed once from a known-good core).
_GOLDEN_BITS = 4096


def lfsr_signature_test(order: int = 15, seed: int = 1) -> bool:
    """Verify the pattern generator against its golden signature.

    In hardware the fabric streams the LFSR into a MISR and the
    host compares against the value recorded at design time; here
    the golden value is recomputed from the reference generator, so
    the check validates the register-accurate LFSR implementation.
    """
    from repro.signal.prbs import prbs_bits
    # Imported here, not at module top: repro.wafer.bist imports
    # repro.dlc, and a wafer-first import order (e.g. a remote
    # worker unpickling a wafer work function) would hit the cycle
    # mid-initialization.
    from repro.wafer.bist import MISR

    lfsr = LFSR(order, seed=seed)
    misr = MISR(16)
    stream = lfsr.bits(_GOLDEN_BITS)
    for k in range(0, _GOLDEN_BITS, 16):
        word = 0
        for bit in stream[k:k + 16]:
            word = (word << 1) | int(bit)
        misr.compact(word)
    got = misr.signature
    golden_misr = MISR(16)
    reference = prbs_bits(order, _GOLDEN_BITS, seed=seed)
    for k in range(0, _GOLDEN_BITS, 16):
        word = 0
        for bit in reference[k:k + 16]:
            word = (word << 1) | int(bit)
        golden_misr.compact(word)
    return got == golden_misr.signature


def march_c_minus(sram: SRAM, n_words: Optional[int] = None
                  ) -> List[Tuple[int, int]]:
    """March C-: the standard 10N memory test.

    Elements: up(w0); up(r0,w1); up(r1,w0); down(r0,w1);
    down(r1,w0); up(r0). Detects all stuck-at, transition, and
    unlinked coupling faults. Returns flagged (address, bit) pairs.
    """
    n = sram.depth if n_words is None else n_words
    if not 1 <= n <= sram.depth:
        raise ConfigurationError(
            f"word count {n} outside [1, {sram.depth}]"
        )
    ones = (1 << sram.width) - 1
    faults = set()

    def check(address: int, expect: int) -> None:
        got = sram.read(address)
        if got != expect:
            diff = got ^ expect
            for bit in range(sram.width):
                if (diff >> bit) & 1:
                    faults.add((address, bit))

    for a in range(n):                      # up(w0)
        sram.write(a, 0)
    for a in range(n):                      # up(r0, w1)
        check(a, 0)
        sram.write(a, ones)
    for a in range(n):                      # up(r1, w0)
        check(a, ones)
        sram.write(a, 0)
    for a in range(n - 1, -1, -1):          # down(r0, w1)
        check(a, 0)
        sram.write(a, ones)
    for a in range(n - 1, -1, -1):          # down(r1, w0)
        check(a, ones)
        sram.write(a, 0)
    for a in range(n):                      # up(r0)
        check(a, 0)
    return sorted(faults)


def run_self_test(dlc: DigitalLogicCore,
                  sram_words: int = 256) -> SelfTestReport:
    """The full power-on self-test sequence."""
    register_ok = register_readback_test(dlc)
    lfsr_ok = lfsr_signature_test()
    if dlc.sram is not None:
        faults = tuple(march_c_minus(dlc.sram, sram_words))
        sram_tested = True
    else:
        faults = ()
        sram_tested = False
    return SelfTestReport(
        register_ok=register_ok,
        lfsr_ok=lfsr_ok,
        sram_faults=faults,
        sram_tested=sram_tested,
    )
