"""RJ/DJ decomposition from measured crossing deviations.

The paper separates random jitter (Figure 9's single-edge histogram)
from total crossover jitter (the eye figures) by choosing the
stimulus. Modern jitter analysis separates them from one eye
measurement instead: the deterministic part is bounded and bimodal,
the random part Gaussian, so fitting normal quantiles to each tail
of the crossing histogram yields sigma (RJ) and the Dirac separation
(DJ) — the dual-Dirac method.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import MeasurementError


@dataclasses.dataclass(frozen=True)
class JitterDecomposition:
    """Separated jitter components.

    Attributes
    ----------
    rj_rms:
        Random (Gaussian) sigma, ps.
    dj_pp:
        Dual-Dirac deterministic separation, ps.
    mu_left, mu_right:
        The fitted Dirac positions, ps (relative to the mean
        crossover).
    n_samples:
        Crossings used.
    """

    rj_rms: float
    dj_pp: float
    mu_left: float
    mu_right: float
    n_samples: int

    def total_pp_estimate(self, n_edges: int = 1000) -> float:
        """Expected total p-p: DJ plus the Gaussian spread."""
        import math

        if n_edges < 2 or self.rj_rms == 0.0:
            return self.dj_pp
        return self.dj_pp + 2.0 * math.sqrt(
            2.0 * math.log(n_edges)) * self.rj_rms

    def total_tj_at_ber(self, ber: float = 1e-12) -> float:
        """Dual-Dirac total jitter at a BER."""
        from scipy.special import erfcinv
        import math

        q = math.sqrt(2.0) * erfcinv(2.0 * ber)
        return self.dj_pp + 2.0 * q * self.rj_rms


def _tail_fit(sorted_dev: np.ndarray, tail_fraction: float,
              left: bool) -> tuple:
    """Fit mu, sigma to one tail via normal quantiles.

    On a Q-Q plot (normal quantile vs measured value) a Gaussian
    tail is a line with slope sigma and intercept mu.
    """
    from scipy.special import ndtri

    n = len(sorted_dev)
    k = max(4, int(tail_fraction * n))
    ranks = (np.arange(n) + 0.5) / n
    if left:
        x = ndtri(ranks[:k])
        y = sorted_dev[:k]
    else:
        x = ndtri(ranks[-k:])
        y = sorted_dev[-k:]
    slope, intercept = np.polyfit(x, y, 1)
    return float(intercept), float(max(slope, 0.0))


def decompose_jitter(crossing_deviations: np.ndarray,
                     tail_fraction: float = 0.1) -> JitterDecomposition:
    """Dual-Dirac RJ/DJ separation of crossing deviations.

    Parameters
    ----------
    crossing_deviations:
        Crossing times about the mean crossover (ps), e.g. from
        :meth:`repro.eye.diagram.EyeDiagram.crossing_deviations`.
    tail_fraction:
        Fraction of samples per tail used in the quantile fit.

    Notes
    -----
    Needs a few hundred crossings for stable tails. DJ is clamped
    at zero when the fitted Diracs cross (pure-Gaussian data).
    """
    dev = np.sort(np.asarray(crossing_deviations, dtype=np.float64))
    if len(dev) < 50:
        raise MeasurementError(
            f"need >= 50 crossings to decompose jitter, got {len(dev)}"
        )
    if not 0.01 <= tail_fraction <= 0.45:
        raise MeasurementError(
            f"tail fraction must be in [0.01, 0.45], got {tail_fraction}"
        )
    mu_left, sigma_left = _tail_fit(dev, tail_fraction, left=True)
    mu_right, sigma_right = _tail_fit(dev, tail_fraction, left=False)
    rj = 0.5 * (sigma_left + sigma_right)
    dj = max(0.0, mu_right - mu_left)
    return JitterDecomposition(
        rj_rms=rj,
        dj_pp=dj,
        mu_left=mu_left,
        mu_right=mu_right,
        n_samples=len(dev),
    )
