"""Bathtub curves: bit-error ratio versus sampling position.

Extends the paper's eye measurements with the standard jitter-
analysis view: given a jitter budget (or empirical crossings), how
the BER varies as the sampling strobe moves across the unit interval.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
from scipy.special import erfc as _erfc

from repro.errors import MeasurementError
from repro.signal.jitter import JitterBudget

#: Equivalence contract of the vectorized bathtub against per-point
#: ``math.erfc`` evaluation: the two erfc implementations agree to a
#: few ulps (not bitwise), and in the denormal deep tail scipy may
#: underflow to zero — hence the absolute BER floor, far below any
#: measurable error ratio.
BATHTUB_EQUIVALENCE_RTOL = 1e-12
BATHTUB_EQUIVALENCE_ATOL = 1e-30


def _q_tail(x: float, sigma: float) -> float:
    """Gaussian tail probability P(X > x) for X ~ N(0, sigma)."""
    if sigma <= 0.0:
        return 0.0 if x > 0.0 else 1.0
    return 0.5 * math.erfc(x / (sigma * math.sqrt(2.0)))


def _q_tail_vec(x: np.ndarray, sigma: float) -> np.ndarray:
    """Vectorized :func:`_q_tail` (matches it within a few ulps)."""
    if sigma <= 0.0:
        return np.where(x > 0.0, 0.0, 1.0)
    return 0.5 * _erfc(x / (sigma * math.sqrt(2.0)))


def bathtub_curve(budget: JitterBudget, unit_interval: float,
                  n_points: int = 101,
                  transition_density: float = 0.5
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Analytic dual-Dirac bathtub.

    Left and right eye edges each carry half the deterministic jitter
    plus the Gaussian random tail; the BER at strobe position x is
    the probability that either edge crosses x.

    Returns
    -------
    (positions_ui, ber):
        Strobe positions in UI [0, 1] and the corresponding BER.
    """
    if unit_interval <= 0.0:
        raise MeasurementError("unit interval must be positive")
    dj_half = (budget.dj_pp + budget.dcd_pp + budget.pj_pp) / 2.0
    sigma = budget.rj_rms
    x = np.linspace(0.0, 1.0, n_points) * unit_interval
    # Left edge nominal at 0, right edge at UI.
    left = 0.5 * (_q_tail_vec(x - dj_half, sigma)
                  + _q_tail_vec(x + dj_half, sigma))
    right = 0.5 * (_q_tail_vec(unit_interval - x - dj_half, sigma)
                   + _q_tail_vec(unit_interval - x + dj_half, sigma))
    ber = transition_density * (left + right)
    return x / unit_interval, ber


def empirical_bathtub(crossing_deviations: np.ndarray,
                      unit_interval: float,
                      n_points: int = 101
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical bathtub from measured crossing deviations.

    Each measured deviation represents a displaced eye edge; the
    curve reports, per strobe position, the fraction of edges that
    would have been sampled on the wrong side.
    """
    dev = np.asarray(crossing_deviations, dtype=np.float64)
    if len(dev) == 0:
        raise MeasurementError("no crossing deviations supplied")
    if unit_interval <= 0.0:
        raise MeasurementError("unit interval must be positive")
    x = np.linspace(0.0, 1.0, n_points) * unit_interval
    n = float(len(dev))
    # Sorted edge positions turn the per-strobe counts into two
    # searchsorted passes. Sorting dev + unit_interval (rather than
    # comparing against x - unit_interval) keeps the strict-inequality
    # counts bit-identical to the scalar scan.
    left_edges = np.sort(dev)            # cluster near 0
    right_edges = np.sort(dev + unit_interval)
    n_left_le = np.searchsorted(left_edges, x, side="right")
    n_right_lt = np.searchsorted(right_edges, x, side="left")
    errs = (len(dev) - n_left_le) + n_right_lt
    ber = errs / (2.0 * n)
    return x / unit_interval, ber


def eye_opening_at_ber(budget: JitterBudget, unit_interval: float,
                       ber: float = 1e-12) -> float:
    """Horizontal eye opening (UI) at a target BER from the budget.

    ``opening = 1 - TJ(ber)/UI`` with dual-Dirac total jitter.
    """
    tj = budget.total_tj_at_ber(ber)
    return max(0.0, 1.0 - tj / unit_interval)
