"""Bathtub curves: bit-error ratio versus sampling position.

Extends the paper's eye measurements with the standard jitter-
analysis view: given a jitter budget (or empirical crossings), how
the BER varies as the sampling strobe moves across the unit interval.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.errors import MeasurementError
from repro.signal.jitter import JitterBudget


def _q_tail(x: float, sigma: float) -> float:
    """Gaussian tail probability P(X > x) for X ~ N(0, sigma)."""
    if sigma <= 0.0:
        return 0.0 if x > 0.0 else 1.0
    return 0.5 * math.erfc(x / (sigma * math.sqrt(2.0)))


def bathtub_curve(budget: JitterBudget, unit_interval: float,
                  n_points: int = 101,
                  transition_density: float = 0.5
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Analytic dual-Dirac bathtub.

    Left and right eye edges each carry half the deterministic jitter
    plus the Gaussian random tail; the BER at strobe position x is
    the probability that either edge crosses x.

    Returns
    -------
    (positions_ui, ber):
        Strobe positions in UI [0, 1] and the corresponding BER.
    """
    if unit_interval <= 0.0:
        raise MeasurementError("unit interval must be positive")
    dj_half = (budget.dj_pp + budget.dcd_pp + budget.pj_pp) / 2.0
    sigma = budget.rj_rms
    x = np.linspace(0.0, 1.0, n_points) * unit_interval
    ber = np.empty(n_points, dtype=np.float64)
    for i, xi in enumerate(x):
        # Left edge nominal at 0, right edge at UI.
        left = 0.5 * (_q_tail(xi - dj_half, sigma)
                      + _q_tail(xi + dj_half, sigma))
        right = 0.5 * (_q_tail(unit_interval - xi - dj_half, sigma)
                       + _q_tail(unit_interval - xi + dj_half, sigma))
        ber[i] = transition_density * (left + right)
    return x / unit_interval, ber


def empirical_bathtub(crossing_deviations: np.ndarray,
                      unit_interval: float,
                      n_points: int = 101
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical bathtub from measured crossing deviations.

    Each measured deviation represents a displaced eye edge; the
    curve reports, per strobe position, the fraction of edges that
    would have been sampled on the wrong side.
    """
    dev = np.asarray(crossing_deviations, dtype=np.float64)
    if len(dev) == 0:
        raise MeasurementError("no crossing deviations supplied")
    if unit_interval <= 0.0:
        raise MeasurementError("unit interval must be positive")
    x = np.linspace(0.0, 1.0, n_points) * unit_interval
    n = float(len(dev))
    left_edges = dev            # cluster near 0
    right_edges = dev + unit_interval
    ber = np.empty(n_points, dtype=np.float64)
    for i, xi in enumerate(x):
        errs = np.count_nonzero(left_edges > xi) \
            + np.count_nonzero(right_edges < xi)
        ber[i] = errs / (2.0 * n)
    return x / unit_interval, ber


def eye_opening_at_ber(budget: JitterBudget, unit_interval: float,
                       ber: float = 1e-12) -> float:
    """Horizontal eye opening (UI) at a target BER from the budget.

    ``opening = 1 - TJ(ber)/UI`` with dual-Dirac total jitter.
    """
    tj = budget.total_tj_at_ber(ber)
    return max(0.0, 1.0 - tj / unit_interval)
