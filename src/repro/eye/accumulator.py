"""Streaming eye accumulation with O(grid) memory.

:class:`~repro.eye.diagram.EyeDiagram` keeps every folded sample —
fine for bench records, hopeless for BER-length streams (1e12 bits
of samples do not fit anywhere). :class:`EyeAccumulator` folds a
record chunk-by-chunk into a fixed time x voltage density grid plus
streamed crossing statistics, so memory is bounded by the grid no
matter how long the stream runs — exactly how a sampling scope's
color-graded persistence display works.

Equivalence contract
--------------------
For the same record, ``EyeAccumulator`` fed any chunking produces a
density grid **identical** to ``EyeDiagram.histogram2d`` over the
same voltage range (binning is additive over chunks and both sides
share :mod:`repro.eye._binning`). Metrics are the binned versions of
:func:`repro.eye.metrics.measure_eye`: the crossover circular mean
is exact (streamed sine/cosine sums), while jitter and vertical
statistics are computed from histograms and therefore quantized —
jitter to ``ui / n_phase_bins`` and voltages to
``(v_range span) / n_volt_bins``. Widen the grids to tighten the
bounds.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError, MeasurementError
from repro.eye.metrics import EyeMetrics
from repro.signal.analysis import threshold_crossings
from repro.signal.waveform import Waveform, WaveformBatch
from repro._units import unit_interval_ps


class EyeAccumulator:
    """Fold waveform chunks into a fixed-size eye density grid.

    Parameters
    ----------
    rate_gbps:
        Data rate; the fold period is ``1000/rate`` ps.
    v_range:
        Fixed ``(low, high)`` voltage axis of the density grid.
        Samples outside it are dropped from the grid (never from
        crossing statistics).
    threshold:
        Crossing threshold voltage. Must be fixed up front — a
        streaming fold cannot wait for the record midpoint.
    n_time_bins, n_volt_bins:
        Density grid resolution.
    n_phase_bins:
        Crossing-phase histogram resolution (sets the jitter
        quantization, ``ui / n_phase_bins``).
    t_first_bit:
        Time at which bit cell 0 starts.
    n_channels:
        None (default) accumulates everything — scalar chunks or
        batched chunks alike — into one *merged* density grid.
        An integer switches to per-channel mode: updates must be
        :class:`~repro.signal.waveform.WaveformBatch` chunks with
        exactly this many rows, ``grid``/``phase_hist`` gain a
        leading channel axis, and every readout takes an optional
        ``channel=`` selector (None reads the merged view).
    registry:
        Optional injected telemetry registry.
    """

    def __init__(self, rate_gbps: float, v_range: Tuple[float, float],
                 threshold: float, n_time_bins: int = 64,
                 n_volt_bins: int = 64, n_phase_bins: int = 256,
                 t_first_bit: float = 0.0,
                 n_channels: Optional[int] = None, registry=None):
        if v_range[1] <= v_range[0]:
            raise ConfigurationError(
                f"v_range must be increasing, got {v_range}"
            )
        if min(n_time_bins, n_volt_bins, n_phase_bins) < 2:
            raise ConfigurationError("all bin counts must be >= 2")
        if n_channels is not None and n_channels < 1:
            raise ConfigurationError(
                f"n_channels must be >= 1, got {n_channels}"
            )
        self.unit_interval = unit_interval_ps(rate_gbps)
        self.v_range = (float(v_range[0]), float(v_range[1]))
        self.threshold = float(threshold)
        self.t_first_bit = float(t_first_bit)
        self.telemetry = registry
        ui = self.unit_interval
        self.t_edges = np.linspace(0.0, ui, n_time_bins + 1,
                                   dtype=np.float64)
        self.v_edges = np.linspace(self.v_range[0], self.v_range[1],
                                   n_volt_bins + 1, dtype=np.float64)
        self.n_channels = None if n_channels is None else int(n_channels)
        if self.n_channels is None:
            #: int64 density grid, (n_time_bins, n_volt_bins) merged
            #: or (n_channels, n_time_bins, n_volt_bins) per-channel.
            self.grid = np.zeros((n_time_bins, n_volt_bins),
                                 dtype=np.int64)
        else:
            self.grid = np.zeros(
                (self.n_channels, n_time_bins, n_volt_bins),
                dtype=np.int64)
        self.n_phase_bins = int(n_phase_bins)
        if self.n_channels is None:
            self.phase_hist = np.zeros(self.n_phase_bins,
                                       dtype=np.int64)
            self._sum_sin = 0.0
            self._sum_cos = 0.0
        else:
            self.phase_hist = np.zeros(
                (self.n_channels, self.n_phase_bins), dtype=np.int64)
            self._sum_sin = np.zeros(self.n_channels)
            self._sum_cos = np.zeros(self.n_channels)
            #: Per-channel tallies (per-channel mode only).
            self.n_samples_per_channel = np.zeros(self.n_channels,
                                                  dtype=np.int64)
            self.n_crossings_per_channel = np.zeros(self.n_channels,
                                                    dtype=np.int64)
        self.n_samples = 0
        self.n_crossings = 0
        # Boundary carry: last sample of the previous chunk (one per
        # row for a batched stream), so a crossing straddling two
        # chunks is still detected.
        self._carry_v = None
        self._carry_t = 0.0
        self._t_next: Optional[float] = None
        self._dt: Optional[float] = None
        # Channel count of the stream's batches (None until the
        # first batched chunk; scalar streams never set it).
        self._batch_channels: Optional[int] = None

    def update(self, chunk) -> "EyeAccumulator":
        """Fold one contiguous *chunk* of the record; returns self.

        Chunks must arrive in order and butt together on one sample
        grid (each chunk's ``t0`` one sample after the previous
        chunk's last), mirroring a scope streaming one long
        acquisition. *chunk* is a
        :class:`~repro.signal.waveform.Waveform` or a
        :class:`~repro.signal.waveform.WaveformBatch`: a batched
        stream folds every row per chunk with a per-row seam carry,
        and must keep one channel count throughout (a stream is
        either scalar or batched, never mixed — the seam state is
        per row).
        """
        from repro.eye._binning import fold_phases

        if isinstance(chunk, WaveformBatch):
            return self._update_batch(chunk)
        if self.n_channels is not None:
            raise ConfigurationError(
                "per-channel accumulator takes WaveformBatch chunks"
            )
        if self._batch_channels is not None:
            raise MeasurementError(
                "stream is batched; feed WaveformBatch chunks"
            )
        if len(chunk) == 0:
            return self
        if self._dt is None:
            self._dt = chunk.dt
        elif abs(chunk.dt - self._dt) > 1e-12:
            raise MeasurementError(
                f"chunk dt {chunk.dt} differs from stream dt {self._dt}"
            )
        if self._t_next is not None \
                and abs(chunk.t0 - self._t_next) > 1e-9 * self._dt:
            raise MeasurementError(
                f"chunk t0 {chunk.t0} does not continue the stream "
                f"(expected {self._t_next})"
            )
        tel = telemetry.resolve(self.telemetry)
        with tel.span("eye.accumulate"):
            ui = self.unit_interval
            values = chunk.values
            n = len(values)
            phases = fold_phases(chunk.t0 - self.t_first_bit,
                                 self._dt, n, ui)
            hist, _, _ = np.histogram2d(
                phases, values, bins=(self.t_edges, self.v_edges),
            )
            self.grid += hist.astype(np.int64)
            self.n_samples += n

            # Crossings, including one straddling the chunk seam.
            if self._carry_v is not None:
                seam = Waveform(
                    np.concatenate(([self._carry_v], values)),
                    dt=self._dt, t0=self._carry_t,
                )
            else:
                seam = Waveform(values, dt=self._dt, t0=chunk.t0)
            times = threshold_crossings(seam, self.threshold) \
                - self.t_first_bit
            if len(times):
                cp = np.mod(times, ui)
                angles = 2.0 * np.pi * cp / ui
                self._sum_sin += float(np.sin(angles).sum())
                self._sum_cos += float(np.cos(angles).sum())
                bins = np.minimum(
                    (cp / ui * self.n_phase_bins).astype(np.int64),
                    self.n_phase_bins - 1,
                )
                self.phase_hist += np.bincount(
                    bins, minlength=self.n_phase_bins
                ).astype(np.int64)
                self.n_crossings += len(times)
            self._carry_v = float(values[-1])
            self._carry_t = chunk.t0 + (n - 1) * self._dt
            self._t_next = chunk.t0 + n * self._dt
            tel.counter("eye.samples_folded").inc(n)
            tel.counter("eye.crossings").inc(len(times))
        return self

    def _update_batch(self, batch: WaveformBatch) -> "EyeAccumulator":
        """Fold one batched chunk: every row at once, per-row carry.

        Per-row equivalence contract (property-tested in
        ``tests/test_batch_equivalence.py``): for any chunking and
        any batching, each row's density grid, phase histogram, and
        crossing counts are *identical* to feeding that row's chunks
        through a scalar accumulator; the streamed circular-mean
        sums match to float round-off (summation order).
        """
        from repro.eye._binning import fold_phases
        from repro.signal import _backend

        c = batch.n_channels
        if self.n_channels is not None and c != self.n_channels:
            raise MeasurementError(
                f"batch has {c} channels; accumulator is configured "
                f"for {self.n_channels}"
            )
        if isinstance(self._carry_v, float):
            raise MeasurementError(
                "stream is scalar; feed Waveform chunks"
            )
        if self._batch_channels is not None \
                and c != self._batch_channels:
            raise MeasurementError(
                f"batch channel count changed mid-stream "
                f"({self._batch_channels} -> {c})"
            )
        if c == 0 or batch.n_samples == 0:
            return self
        if self._dt is None:
            self._dt = batch.dt
        elif abs(batch.dt - self._dt) > 1e-12:
            raise MeasurementError(
                f"chunk dt {batch.dt} differs from stream dt {self._dt}"
            )
        if self._t_next is not None \
                and abs(batch.t0 - self._t_next) > 1e-9 * self._dt:
            raise MeasurementError(
                f"chunk t0 {batch.t0} does not continue the stream "
                f"(expected {self._t_next})"
            )
        tel = telemetry.resolve(self.telemetry)
        with tel.span("eye.accumulate"):
            ui = self.unit_interval
            values = batch.values
            n = batch.n_samples
            phases = fold_phases(batch.t0 - self.t_first_bit,
                                 self._dt, n, ui)
            density_bin = _backend.dispatch("density_bin", tel)
            # Counts are integer-valued; backends may return int64
            # (exact, and asarray skips the copy) or float64.
            hist = density_bin(phases, values, self.t_edges,
                               self.v_edges)
            if self.n_channels is None:
                self.grid += np.asarray(hist.sum(axis=0),
                                        dtype=np.int64)
            else:
                self.grid += np.asarray(hist, dtype=np.int64)
                self.n_samples_per_channel += n
            self.n_samples += values.size

            # Crossings, including per-row seams between chunks.
            if self._carry_v is not None:
                seam = np.concatenate(
                    (self._carry_v[:, None], values), axis=1)
                seam_t0 = self._carry_t
            else:
                seam = values
                seam_t0 = batch.t0
            eye_fold = _backend.dispatch("eye_fold", tel)
            rows, cols, frac = eye_fold(
                seam, np.full(c, self.threshold))
            if len(rows):
                times = (seam_t0 + self._dt * (cols + frac)) \
                    - self.t_first_bit
                cp = np.mod(times, ui)
                angles = 2.0 * np.pi * cp / ui
                bins = np.minimum(
                    (cp / ui * self.n_phase_bins).astype(np.int64),
                    self.n_phase_bins - 1,
                )
                if self.n_channels is None:
                    self._sum_sin += float(np.sin(angles).sum())
                    self._sum_cos += float(np.cos(angles).sum())
                    self.phase_hist += np.bincount(
                        bins, minlength=self.n_phase_bins
                    ).astype(np.int64)
                else:
                    self._sum_sin += np.bincount(
                        rows, weights=np.sin(angles), minlength=c)
                    self._sum_cos += np.bincount(
                        rows, weights=np.cos(angles), minlength=c)
                    self.phase_hist += np.bincount(
                        rows * self.n_phase_bins + bins,
                        minlength=c * self.n_phase_bins,
                    ).reshape(c, self.n_phase_bins).astype(np.int64)
                    self.n_crossings_per_channel += np.bincount(
                        rows, minlength=c)
                self.n_crossings += len(rows)
            self._carry_v = values[:, -1].copy()
            self._carry_t = batch.t0 + (n - 1) * self._dt
            self._t_next = batch.t0 + n * self._dt
            self._batch_channels = c
            tel.counter("eye.samples_folded").inc(values.size)
            tel.counter("eye.crossings").inc(len(rows))
        return self

    # -- readouts -----------------------------------------------------------

    def _select(self, channel: Optional[int]):
        """``(phase_hist, grid, n_crossings, sum_sin, sum_cos)``
        for one channel (or the merged view when *channel* is None)."""
        if self.n_channels is None:
            if channel is not None:
                raise ConfigurationError(
                    "merged accumulator has no channel axis; "
                    "construct with n_channels= for per-channel reads"
                )
            return (self.phase_hist, self.grid, self.n_crossings,
                    self._sum_sin, self._sum_cos)
        if channel is None:
            return (self.phase_hist.sum(axis=0),
                    self.grid.sum(axis=0), self.n_crossings,
                    float(self._sum_sin.sum()),
                    float(self._sum_cos.sum()))
        return (self.phase_hist[channel], self.grid[channel],
                int(self.n_crossings_per_channel[channel]),
                float(self._sum_sin[channel]),
                float(self._sum_cos[channel]))

    def density(self, channel: Optional[int] = None
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(hist, t_edges, v_edges)``, the ``histogram2d`` shape.

        The grid is returned as ``float64`` so it is interchangeable
        with :meth:`EyeDiagram.histogram2d` output. In per-channel
        mode, *channel* selects one row's grid; None merges every
        channel (exact — counts are integers).
        """
        _, grid, _, _, _ = self._select(channel)
        return (grid.astype(np.float64), self.t_edges.copy(),
                self.v_edges.copy())

    def snapshot(self, channel: Optional[int] = None,
                 include_grid: bool = True) -> dict:
        """A detached, wire-ready view of the stream so far.

        Every value is a scalar or a fresh list copy, so taking a
        snapshot between ``update`` calls never perturbs
        accumulation — the live-streaming service channel publishes
        these at arbitrary chunk boundaries, and invariance against
        the uninterrupted stream is pinned in
        ``tests/test_eye_accumulator.py``. With *include_grid*
        False only the scalar tallies ship (cheap enough to
        publish per chunk); True adds the density grid, its edges,
        and the crossing-phase histogram. *channel* selects one row
        in per-channel mode (None: the merged view).
        """
        phase_hist, grid, n_crossings, _ss, _sc = \
            self._select(channel)
        if self.n_channels is not None and channel is not None:
            n_samples = int(self.n_samples_per_channel[channel])
        else:
            n_samples = int(self.n_samples)
        out = {
            "n_samples": n_samples,
            "n_crossings": int(n_crossings),
            "unit_interval_ps": float(self.unit_interval),
            "threshold": float(self.threshold),
            "v_range": [self.v_range[0], self.v_range[1]],
            "n_time_bins": int(len(self.t_edges) - 1),
            "n_volt_bins": int(len(self.v_edges) - 1),
        }
        if include_grid:
            out["grid"] = grid.tolist()
            out["phase_hist"] = phase_hist.tolist()
            out["t_edges"] = self.t_edges.tolist()
            out["v_edges"] = self.v_edges.tolist()
        return out

    def crossover_phase(self, channel: Optional[int] = None) -> float:
        """Mean crossover position in ps within [0, UI) — exact.

        The circular mean comes from streamed sine/cosine sums, so
        it matches :meth:`EyeDiagram.crossover_phase` to float
        round-off, not to a bin. *channel* selects one row in
        per-channel mode (None: all channels pooled).
        """
        _, _, n_crossings, sum_sin, sum_cos = self._select(channel)
        if n_crossings == 0:
            raise MeasurementError("eye has no threshold crossings")
        mean_angle = np.arctan2(sum_sin / n_crossings,
                                sum_cos / n_crossings)
        ui = self.unit_interval
        return float(np.mod((mean_angle / (2.0 * np.pi)) * ui, ui))

    def metrics(self, center_window_frac: float = 0.1,
                channel: Optional[int] = None) -> EyeMetrics:
        """Binned :class:`EyeMetrics` for the stream so far.

        Jitter statistics come from the crossing-phase histogram
        (quantized to ``ui / n_phase_bins``); vertical statistics
        from the density grid columns nearest the eye center
        (quantized to one voltage bin). See the module docstring for
        the equivalence bounds. *channel* selects one row in
        per-channel mode (None: the merged eye).
        """
        phase_hist, grid, n_crossings, sum_sin, sum_cos = \
            self._select(channel)
        if n_crossings < 2:
            raise MeasurementError(
                "eye diagram needs at least two crossings to measure "
                "jitter"
            )
        ui = self.unit_interval
        mean_phase = self.crossover_phase(channel)
        occupied = np.flatnonzero(phase_hist)
        centers = (occupied + 0.5) * (ui / self.n_phase_bins)
        dev = np.mod(centers - mean_phase + ui / 2.0, ui) - ui / 2.0
        weights = phase_hist[occupied]
        jitter_pp = float(dev.max() - dev.min())
        mean_dev = float(np.average(dev, weights=weights))
        jitter_rms = float(np.sqrt(
            np.average((dev - mean_dev) ** 2, weights=weights)
        ))
        eye_width = max(0.0, ui - jitter_pp)

        # Vertical statistics from grid columns near eye center.
        center = np.mod(mean_phase + ui / 2.0, ui)
        half_window = 0.5 * center_window_frac * ui
        t_centers = 0.5 * (self.t_edges[:-1] + self.t_edges[1:])
        d = np.mod(t_centers - center + ui / 2.0, ui) - ui / 2.0
        counts = grid[np.abs(d) <= half_window].sum(axis=0)
        if counts.sum() < 4:
            raise MeasurementError("too few samples at eye center")
        v_centers = 0.5 * (self.v_edges[:-1] + self.v_edges[1:])
        hi_mask = (v_centers > self.threshold) & (counts > 0)
        lo_mask = (v_centers <= self.threshold) & (counts > 0)
        if not hi_mask.any() or not lo_mask.any():
            raise MeasurementError(
                "eye is closed at center (one level only)"
            )
        v_high = float(np.average(v_centers[hi_mask],
                                  weights=counts[hi_mask]))
        v_low = float(np.average(v_centers[lo_mask],
                                 weights=counts[lo_mask]))
        eye_height = max(0.0, float(v_centers[hi_mask].min()
                                    - v_centers[lo_mask].max()))
        return EyeMetrics(
            unit_interval=ui,
            jitter_pp=jitter_pp,
            jitter_rms=jitter_rms,
            eye_opening_ui=eye_width / ui,
            eye_width=eye_width,
            eye_height=eye_height,
            v_high=v_high,
            v_low=v_low,
            amplitude=v_high - v_low,
            n_crossings=n_crossings,
        )

    def __repr__(self) -> str:
        return (f"EyeAccumulator(ui={self.unit_interval} ps, "
                f"grid={self.grid.shape}, samples={self.n_samples}, "
                f"crossings={self.n_crossings})")
