"""Streaming eye accumulation with O(grid) memory.

:class:`~repro.eye.diagram.EyeDiagram` keeps every folded sample —
fine for bench records, hopeless for BER-length streams (1e12 bits
of samples do not fit anywhere). :class:`EyeAccumulator` folds a
record chunk-by-chunk into a fixed time x voltage density grid plus
streamed crossing statistics, so memory is bounded by the grid no
matter how long the stream runs — exactly how a sampling scope's
color-graded persistence display works.

Equivalence contract
--------------------
For the same record, ``EyeAccumulator`` fed any chunking produces a
density grid **identical** to ``EyeDiagram.histogram2d`` over the
same voltage range (binning is additive over chunks and both sides
share :mod:`repro.eye._binning`). Metrics are the binned versions of
:func:`repro.eye.metrics.measure_eye`: the crossover circular mean
is exact (streamed sine/cosine sums), while jitter and vertical
statistics are computed from histograms and therefore quantized —
jitter to ``ui / n_phase_bins`` and voltages to
``(v_range span) / n_volt_bins``. Widen the grids to tighten the
bounds.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError, MeasurementError
from repro.eye.metrics import EyeMetrics
from repro.signal.analysis import threshold_crossings
from repro.signal.waveform import Waveform
from repro._units import unit_interval_ps


class EyeAccumulator:
    """Fold waveform chunks into a fixed-size eye density grid.

    Parameters
    ----------
    rate_gbps:
        Data rate; the fold period is ``1000/rate`` ps.
    v_range:
        Fixed ``(low, high)`` voltage axis of the density grid.
        Samples outside it are dropped from the grid (never from
        crossing statistics).
    threshold:
        Crossing threshold voltage. Must be fixed up front — a
        streaming fold cannot wait for the record midpoint.
    n_time_bins, n_volt_bins:
        Density grid resolution.
    n_phase_bins:
        Crossing-phase histogram resolution (sets the jitter
        quantization, ``ui / n_phase_bins``).
    t_first_bit:
        Time at which bit cell 0 starts.
    registry:
        Optional injected telemetry registry.
    """

    def __init__(self, rate_gbps: float, v_range: Tuple[float, float],
                 threshold: float, n_time_bins: int = 64,
                 n_volt_bins: int = 64, n_phase_bins: int = 256,
                 t_first_bit: float = 0.0, registry=None):
        if v_range[1] <= v_range[0]:
            raise ConfigurationError(
                f"v_range must be increasing, got {v_range}"
            )
        if min(n_time_bins, n_volt_bins, n_phase_bins) < 2:
            raise ConfigurationError("all bin counts must be >= 2")
        self.unit_interval = unit_interval_ps(rate_gbps)
        self.v_range = (float(v_range[0]), float(v_range[1]))
        self.threshold = float(threshold)
        self.t_first_bit = float(t_first_bit)
        self.telemetry = registry
        ui = self.unit_interval
        self.t_edges = np.linspace(0.0, ui, n_time_bins + 1,
                                   dtype=np.float64)
        self.v_edges = np.linspace(self.v_range[0], self.v_range[1],
                                   n_volt_bins + 1, dtype=np.float64)
        #: int64 density grid, shape (n_time_bins, n_volt_bins).
        self.grid = np.zeros((n_time_bins, n_volt_bins),
                             dtype=np.int64)
        self.n_phase_bins = int(n_phase_bins)
        self.phase_hist = np.zeros(self.n_phase_bins, dtype=np.int64)
        self.n_samples = 0
        self.n_crossings = 0
        self._sum_sin = 0.0
        self._sum_cos = 0.0
        # Boundary carry: last sample of the previous chunk, so a
        # crossing straddling two chunks is still detected.
        self._carry_v: Optional[float] = None
        self._carry_t = 0.0
        self._t_next: Optional[float] = None
        self._dt: Optional[float] = None

    def update(self, chunk: Waveform) -> "EyeAccumulator":
        """Fold one contiguous *chunk* of the record; returns self.

        Chunks must arrive in order and butt together on one sample
        grid (each chunk's ``t0`` one sample after the previous
        chunk's last), mirroring a scope streaming one long
        acquisition.
        """
        from repro.eye._binning import fold_phases

        if len(chunk) == 0:
            return self
        if self._dt is None:
            self._dt = chunk.dt
        elif abs(chunk.dt - self._dt) > 1e-12:
            raise MeasurementError(
                f"chunk dt {chunk.dt} differs from stream dt {self._dt}"
            )
        if self._t_next is not None \
                and abs(chunk.t0 - self._t_next) > 1e-9 * self._dt:
            raise MeasurementError(
                f"chunk t0 {chunk.t0} does not continue the stream "
                f"(expected {self._t_next})"
            )
        tel = telemetry.resolve(self.telemetry)
        with tel.span("eye.accumulate"):
            ui = self.unit_interval
            values = chunk.values
            n = len(values)
            phases = fold_phases(chunk.t0 - self.t_first_bit,
                                 self._dt, n, ui)
            hist, _, _ = np.histogram2d(
                phases, values, bins=(self.t_edges, self.v_edges),
            )
            self.grid += hist.astype(np.int64)
            self.n_samples += n

            # Crossings, including one straddling the chunk seam.
            if self._carry_v is not None:
                seam = Waveform(
                    np.concatenate(([self._carry_v], values)),
                    dt=self._dt, t0=self._carry_t,
                )
            else:
                seam = Waveform(values, dt=self._dt, t0=chunk.t0)
            times = threshold_crossings(seam, self.threshold) \
                - self.t_first_bit
            if len(times):
                cp = np.mod(times, ui)
                angles = 2.0 * np.pi * cp / ui
                self._sum_sin += float(np.sin(angles).sum())
                self._sum_cos += float(np.cos(angles).sum())
                bins = np.minimum(
                    (cp / ui * self.n_phase_bins).astype(np.int64),
                    self.n_phase_bins - 1,
                )
                self.phase_hist += np.bincount(
                    bins, minlength=self.n_phase_bins
                ).astype(np.int64)
                self.n_crossings += len(times)
            self._carry_v = float(values[-1])
            self._carry_t = chunk.t0 + (n - 1) * self._dt
            self._t_next = chunk.t0 + n * self._dt
            tel.counter("eye.samples_folded").inc(n)
            tel.counter("eye.crossings").inc(len(times))
        return self

    # -- readouts -----------------------------------------------------------

    def density(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(hist, t_edges, v_edges)``, the ``histogram2d`` shape.

        The grid is returned as ``float64`` so it is interchangeable
        with :meth:`EyeDiagram.histogram2d` output.
        """
        return (self.grid.astype(np.float64), self.t_edges.copy(),
                self.v_edges.copy())

    def crossover_phase(self) -> float:
        """Mean crossover position in ps within [0, UI) — exact.

        The circular mean comes from streamed sine/cosine sums, so
        it matches :meth:`EyeDiagram.crossover_phase` to float
        round-off, not to a bin.
        """
        if self.n_crossings == 0:
            raise MeasurementError("eye has no threshold crossings")
        mean_angle = np.arctan2(self._sum_sin / self.n_crossings,
                                self._sum_cos / self.n_crossings)
        ui = self.unit_interval
        return float(np.mod((mean_angle / (2.0 * np.pi)) * ui, ui))

    def metrics(self, center_window_frac: float = 0.1) -> EyeMetrics:
        """Binned :class:`EyeMetrics` for the stream so far.

        Jitter statistics come from the crossing-phase histogram
        (quantized to ``ui / n_phase_bins``); vertical statistics
        from the density grid columns nearest the eye center
        (quantized to one voltage bin). See the module docstring for
        the equivalence bounds.
        """
        if self.n_crossings < 2:
            raise MeasurementError(
                "eye diagram needs at least two crossings to measure "
                "jitter"
            )
        ui = self.unit_interval
        mean_phase = self.crossover_phase()
        occupied = np.flatnonzero(self.phase_hist)
        centers = (occupied + 0.5) * (ui / self.n_phase_bins)
        dev = np.mod(centers - mean_phase + ui / 2.0, ui) - ui / 2.0
        weights = self.phase_hist[occupied]
        jitter_pp = float(dev.max() - dev.min())
        mean_dev = float(np.average(dev, weights=weights))
        jitter_rms = float(np.sqrt(
            np.average((dev - mean_dev) ** 2, weights=weights)
        ))
        eye_width = max(0.0, ui - jitter_pp)

        # Vertical statistics from grid columns near eye center.
        center = np.mod(mean_phase + ui / 2.0, ui)
        half_window = 0.5 * center_window_frac * ui
        t_centers = 0.5 * (self.t_edges[:-1] + self.t_edges[1:])
        d = np.mod(t_centers - center + ui / 2.0, ui) - ui / 2.0
        counts = self.grid[np.abs(d) <= half_window].sum(axis=0)
        if counts.sum() < 4:
            raise MeasurementError("too few samples at eye center")
        v_centers = 0.5 * (self.v_edges[:-1] + self.v_edges[1:])
        hi_mask = (v_centers > self.threshold) & (counts > 0)
        lo_mask = (v_centers <= self.threshold) & (counts > 0)
        if not hi_mask.any() or not lo_mask.any():
            raise MeasurementError(
                "eye is closed at center (one level only)"
            )
        v_high = float(np.average(v_centers[hi_mask],
                                  weights=counts[hi_mask]))
        v_low = float(np.average(v_centers[lo_mask],
                                 weights=counts[lo_mask]))
        eye_height = max(0.0, float(v_centers[hi_mask].min()
                                    - v_centers[lo_mask].max()))
        return EyeMetrics(
            unit_interval=ui,
            jitter_pp=jitter_pp,
            jitter_rms=jitter_rms,
            eye_opening_ui=eye_width / ui,
            eye_width=eye_width,
            eye_height=eye_height,
            v_high=v_high,
            v_low=v_low,
            amplitude=v_high - v_low,
            n_crossings=self.n_crossings,
        )

    def __repr__(self) -> str:
        return (f"EyeAccumulator(ui={self.unit_interval} ps, "
                f"grid={self.grid.shape}, samples={self.n_samples}, "
                f"crossings={self.n_crossings})")
