"""ASCII rendering of eye diagrams for terminal output.

The examples print their eyes with this renderer, standing in for
the photographs of the sampling-scope screen in the paper's figures.
"""

from __future__ import annotations

import numpy as np

from repro.eye.diagram import EyeDiagram

_SHADES = " .:-=+*#%@"


def render_eye_ascii(eye: EyeDiagram, width: int = 64,
                     height: int = 20) -> str:
    """Render the eye's 2-D density as ASCII art.

    Darker characters mark higher trace density, mimicking a
    color-graded sampling-scope display.
    """
    hist, _, _ = eye.histogram2d(n_time_bins=width, n_volt_bins=height)
    # histogram2d returns time on axis 0; display wants voltage rows,
    # top row = highest voltage.
    density = hist.T[::-1]
    peak = density.max()
    ui_ps = eye.unit_interval
    footer = f"|<-- 1 UI = {ui_ps:.0f} ps -->|".center(width)
    if peak <= 0:
        # An empty eye still gets its time-axis footer so the output
        # frame is the same shape as the populated case.
        rows = [" " * width for _ in range(height)]
        return "\n".join(rows) + "\n" + footer
    levels = np.clip(
        (density / peak) ** 0.5 * (len(_SHADES) - 1), 0, len(_SHADES) - 1
    ).astype(int)
    rows = ["".join(_SHADES[v] for v in row) for row in levels]
    return "\n".join(rows) + "\n" + footer
