"""Folding a waveform into an eye diagram.

An eye diagram overlays every bit cell of a long record onto a single
one-UI (or two-UI) window, exactly as a sampling oscilloscope
triggered by the bit clock does.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro import telemetry
from repro.errors import MeasurementError
from repro.signal.waveform import Waveform, WaveformBatch
from repro.signal.analysis import threshold_crossings
from repro._units import unit_interval_ps


class EyeDiagram:
    """An eye diagram: folded samples plus folded threshold crossings.

    Parameters
    ----------
    phases:
        Sample times folded into [0, span_ui) UI, in ps.
    voltages:
        Sample voltages corresponding to *phases*.
    unit_interval:
        The bit period in ps.
    crossing_phases:
        Threshold-crossing times folded into [0, 1) UI, in ps.
    threshold:
        The crossing threshold voltage used.
    """

    def __init__(self, phases: np.ndarray, voltages: np.ndarray,
                 unit_interval: float, crossing_phases: np.ndarray,
                 threshold: float):
        if len(phases) != len(voltages):
            raise MeasurementError("phases and voltages length mismatch")
        if unit_interval <= 0.0:
            raise MeasurementError("unit interval must be positive")
        self.phases = np.asarray(phases, dtype=np.float64)
        self.voltages = np.asarray(voltages, dtype=np.float64)
        self.unit_interval = float(unit_interval)
        self.crossing_phases = np.asarray(crossing_phases, dtype=np.float64)
        self.threshold = float(threshold)

    @classmethod
    def from_waveform(cls, waveform: Waveform, rate_gbps: float,
                      threshold: Optional[float] = None,
                      t_first_bit: float = 0.0,
                      discard_ui: int = 1,
                      registry=None, cache=None) -> "EyeDiagram":
        """Fold *waveform* into an eye at *rate_gbps*.

        The fold is allocation-lean: the analysis window is a no-copy
        view of the record and sample phases come from
        :func:`repro.eye._binning.fold_phases` (tiled, not an O(n)
        ``mod``, whenever the UI is commensurate with the sample
        grid).

        Parameters
        ----------
        threshold:
            Crossing threshold; default is the waveform midpoint.
        t_first_bit:
            Time at which bit cell 0 starts.
        discard_ui:
            Leading/trailing unit intervals to exclude (pattern
            start-up and shut-down edges).
        registry:
            Optional injected telemetry registry.
        cache:
            Optional injected :class:`repro.cache.ArtifactCache`;
            defaults to the module-level active one. Folds are
            memoized keyed ``(waveform token, rate, threshold,
            origin, discard)``; hits return the stored diagram
            itself, which — like every :class:`EyeDiagram` — must be
            treated as immutable.
        """
        from repro import cache as _cache

        store = _cache.resolve(cache)
        if store.enabled:
            key = _cache.canonical_digest(
                "eye.fold", waveform.cache_token(), float(rate_gbps),
                threshold, float(t_first_bit), int(discard_ui),
            )
            return store.get_or_compute(
                key,
                lambda: cls._fold_impl(waveform, rate_gbps, threshold,
                                       t_first_bit, discard_ui,
                                       registry),
            )
        return cls._fold_impl(waveform, rate_gbps, threshold,
                              t_first_bit, discard_ui, registry)

    @classmethod
    def _fold_impl(cls, waveform: Waveform, rate_gbps: float,
                   threshold: Optional[float], t_first_bit: float,
                   discard_ui: int, registry) -> "EyeDiagram":
        from repro.eye._binning import fold_phases

        tel = telemetry.resolve(registry)
        with tel.span("eye.fold"):
            ui = unit_interval_ps(rate_gbps)
            if threshold is None:
                threshold = 0.5 * (waveform.min() + waveform.max())
            t_lo = t_first_bit + discard_ui * ui
            t_hi = waveform.t_end - discard_ui * ui
            if t_hi - t_lo < 2.0 * ui:
                raise MeasurementError(
                    "record too short for an eye diagram at this rate"
                )
            # Same index arithmetic as Waveform.slice_time, but on a
            # read-only view — no megasample copy.
            dt = waveform.dt
            i0 = max(0, int(np.ceil((t_lo - waveform.t0) / dt)))
            i1 = min(len(waveform) - 1,
                     int(np.floor((t_hi - waveform.t0) / dt)))
            if i1 < i0:
                raise MeasurementError(
                    "record too short for an eye diagram at this rate"
                )
            values = waveform.values[i0:i1 + 1]
            t0w = waveform.t0 + i0 * dt
            phases = fold_phases(t0w - t_first_bit, dt, len(values), ui)
            window = Waveform(values, dt=dt, t0=t0w)  # view, no copy
            crossings = threshold_crossings(window, threshold) \
                - t_first_bit
            crossing_phases = np.mod(crossings, ui)
            tel.counter("eye.folds").inc()
            tel.counter("eye.samples_folded").inc(len(phases))
            tel.counter("eye.crossings").inc(len(crossing_phases))
            return cls(phases, values, ui, crossing_phases, threshold)

    @classmethod
    def from_batch(cls, batch: WaveformBatch, rate_gbps: float,
                   threshold: Optional[float] = None,
                   t_first_bit: float = 0.0, discard_ui: int = 1,
                   merge: bool = False, registry=None, cache=None):
        """Fold every channel of *batch* at *rate_gbps* at once.

        The batched counterpart of :meth:`from_waveform`: the
        analysis window, fold phases, and threshold crossings are
        computed for the whole ``(channels, samples)`` block in one
        vectorized pass (rows share one time grid, so the window
        indices and phase fold are computed once).

        Parameters
        ----------
        merge:
            False (default) returns one :class:`EyeDiagram` per
            channel, each *bit-identical* to folding that row
            through :meth:`from_waveform` (per-row midpoint
            thresholds when *threshold* is None). True returns a
            single merged diagram over every channel's samples and
            crossings — the all-channels color-graded eye — using
            one shared threshold (the batch-global midpoint when
            None).
        threshold, t_first_bit, discard_ui, registry, cache:
            As for :meth:`from_waveform`. Per-channel folds are
            memoized per row under the *same* keys as the
            single-channel path; merged folds are not cached.
        """
        from repro import cache as _cache

        store = _cache.resolve(cache)
        if merge or not store.enabled or not batch.n_channels:
            return cls._fold_batch_impl(batch, rate_gbps, threshold,
                                        t_first_bit, discard_ui,
                                        registry, merge)
        keys = [
            _cache.canonical_digest(
                "eye.fold", tok, float(rate_gbps), threshold,
                float(t_first_bit), int(discard_ui),
            )
            for tok in batch.cache_tokens()
        ]
        hits = []
        for key in keys:
            hit, value = store.get(key)
            hits.append(value if hit else None)
        missing = [i for i, eye in enumerate(hits) if eye is None]
        if missing:
            sub = WaveformBatch(batch.values[missing], dt=batch.dt,
                                t0=batch.t0)
            eyes = cls._fold_batch_impl(sub, rate_gbps, threshold,
                                        t_first_bit, discard_ui,
                                        registry, False)
            for j, i in enumerate(missing):
                eye = eyes[j]
                stored = cls(eye.phases, eye.voltages.copy(),
                             eye.unit_interval, eye.crossing_phases,
                             eye.threshold)
                store.put(keys[i], stored)
                hits[i] = stored
        return hits

    @classmethod
    def _fold_batch_impl(cls, batch: WaveformBatch, rate_gbps: float,
                         threshold: Optional[float],
                         t_first_bit: float, discard_ui: int,
                         registry, merge: bool):
        from repro.eye._binning import fold_phases

        tel = telemetry.resolve(registry)
        with tel.span("eye.fold_batch"):
            ui = unit_interval_ps(rate_gbps)
            if merge and not batch.n_channels:
                raise MeasurementError("cannot merge an empty batch")
            t_lo = t_first_bit + discard_ui * ui
            t_hi = batch.t_end - discard_ui * ui
            if t_hi - t_lo < 2.0 * ui:
                raise MeasurementError(
                    "record too short for an eye diagram at this rate"
                )
            dt = batch.dt
            i0 = max(0, int(np.ceil((t_lo - batch.t0) / dt)))
            i1 = min(batch.n_samples - 1,
                     int(np.floor((t_hi - batch.t0) / dt)))
            if i1 < i0:
                raise MeasurementError(
                    "record too short for an eye diagram at this rate"
                )
            values = batch.values[:, i0:i1 + 1]
            t0w = batch.t0 + i0 * dt
            phases = fold_phases(t0w - t_first_bit, dt,
                                 values.shape[1], ui)
            if threshold is not None:
                thr = np.full(batch.n_channels, float(threshold))
            elif merge:
                thr = np.full(batch.n_channels,
                              0.5 * (float(batch.values.min())
                                     + float(batch.values.max())))
            else:
                # Same per-row midpoint the scalar fold computes
                # from the full record.
                thr = 0.5 * (batch.values.min(axis=1)
                             + batch.values.max(axis=1))

            # Vectorized threshold_crossings over every row, through
            # the active kernel backend's fold op.
            from repro.signal import _backend

            eye_fold = _backend.dispatch("eye_fold", tel)
            rows, cols, frac = eye_fold(values, thr)
            crossings = (t0w + dt * (cols + frac)) - t_first_bit
            crossing_phases = np.mod(crossings, ui)

            tel.counter("eye.folds").inc(batch.n_channels)
            tel.counter("eye.samples_folded").inc(values.size)
            tel.counter("eye.crossings").inc(len(crossing_phases))
            if merge:
                return cls(np.tile(phases, batch.n_channels),
                           values.reshape(-1), ui, crossing_phases,
                           float(thr[0]))
            counts = np.bincount(rows, minlength=batch.n_channels)
            parts = np.split(crossing_phases,
                             np.cumsum(counts)[:-1])
            return [
                cls(phases, values[c], ui, parts[c], float(thr[c]))
                for c in range(batch.n_channels)
            ]

    @property
    def n_samples(self) -> int:
        """Number of folded voltage samples."""
        return len(self.phases)

    @property
    def n_crossings(self) -> int:
        """Number of folded threshold crossings."""
        return len(self.crossing_phases)

    def crossing_deviations(self) -> np.ndarray:
        """Crossing-time deviations (ps) about the circular mean.

        Folds wrap-around: a crossing nominally at phase 0 can fold
        to just under one UI. Deviations are computed circularly so
        both tails land on the same cluster.
        """
        if self.n_crossings == 0:
            raise MeasurementError("eye has no threshold crossings")
        ui = self.unit_interval
        angles = 2.0 * np.pi * self.crossing_phases / ui
        mean_angle = np.arctan2(np.mean(np.sin(angles)),
                                np.mean(np.cos(angles)))
        mean_phase = (mean_angle / (2.0 * np.pi)) * ui
        dev = self.crossing_phases - mean_phase
        dev = np.mod(dev + ui / 2.0, ui) - ui / 2.0
        return dev

    def crossover_phase(self) -> float:
        """Mean crossover position in ps within [0, UI)."""
        dev = self.crossing_deviations()
        # Reconstruct the circular mean used by crossing_deviations.
        ui = self.unit_interval
        angles = 2.0 * np.pi * self.crossing_phases / ui
        mean_angle = np.arctan2(np.mean(np.sin(angles)),
                                np.mean(np.cos(angles)))
        return float(np.mod((mean_angle / (2.0 * np.pi)) * ui, ui))

    def samples_near_phase(self, phase: float,
                           half_window: float) -> np.ndarray:
        """Voltages sampled within +/- *half_window* ps of *phase*.

        The window is circular in the UI.
        """
        ui = self.unit_interval
        d = np.mod(self.phases - phase + ui / 2.0, ui) - ui / 2.0
        return self.voltages[np.abs(d) <= half_window]

    def histogram2d(self, n_time_bins: int = 64,
                    n_volt_bins: int = 64) -> Tuple[np.ndarray, np.ndarray,
                                                    np.ndarray]:
        """2-D density (time x voltage), like a scope's color-graded eye.

        Delegates to :func:`repro.eye._binning.density_grid` — the
        binning convention shared with ``render_eye_ascii`` and the
        streaming accumulator, including pinned ``float64`` outputs
        for an empty eye.
        """
        from repro.eye._binning import density_grid

        return density_grid(self.phases, self.voltages,
                            self.unit_interval, n_time_bins,
                            n_volt_bins)
