"""Eye metrics: jitter at the crossover, opening, height, width.

The paper quotes two headline numbers per eye: peak-to-peak jitter
measured at the crossover point and the usable eye opening in unit
intervals. Its own figures satisfy ``opening = 1 - jitter_pp / UI``
at every data rate, so that is the definition used here (see
DESIGN.md section 5).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import MeasurementError
from repro.eye.diagram import EyeDiagram


@dataclasses.dataclass(frozen=True)
class EyeMetrics:
    """Summary measurements of one eye diagram.

    Attributes
    ----------
    unit_interval:
        Bit period in ps.
    jitter_pp:
        Peak-to-peak jitter at the crossover, ps.
    jitter_rms:
        RMS jitter at the crossover, ps.
    eye_opening_ui:
        Usable horizontal opening, ``1 - jitter_pp/UI``.
    eye_width:
        Horizontal opening in ps, ``UI - jitter_pp``.
    eye_height:
        Vertical opening at eye center, volts.
    v_high, v_low:
        Mean rail voltages measured at eye center.
    amplitude:
        ``v_high - v_low``.
    n_crossings:
        Number of crossover observations.
    """

    unit_interval: float
    jitter_pp: float
    jitter_rms: float
    eye_opening_ui: float
    eye_width: float
    eye_height: float
    v_high: float
    v_low: float
    amplitude: float
    n_crossings: int

    def summary(self) -> str:
        """Human-readable one-line summary."""
        rate = 1_000.0 / self.unit_interval
        return (
            f"{rate:.2f} Gbps eye: jitter {self.jitter_pp:.1f} ps p-p "
            f"({self.jitter_rms:.2f} ps rms), opening "
            f"{self.eye_opening_ui:.2f} UI, height {self.eye_height*1e3:.0f} mV, "
            f"amplitude {self.amplitude*1e3:.0f} mV"
        )


def measure_eye(eye, center_window_frac: float = 0.1) -> EyeMetrics:
    """Measure an :class:`EyeDiagram` (or a streaming accumulator).

    An :class:`~repro.eye.accumulator.EyeAccumulator` is dispatched
    to its own :meth:`~repro.eye.accumulator.EyeAccumulator.metrics`
    (binned statistics, documented bounds); an :class:`EyeDiagram`
    takes the exact per-sample path below.

    Parameters
    ----------
    center_window_frac:
        Width (fraction of UI) of the window at eye center used for
        vertical measurements.
    """
    if not isinstance(eye, EyeDiagram) and hasattr(eye, "metrics"):
        return eye.metrics(center_window_frac=center_window_frac)
    if eye.n_crossings < 2:
        raise MeasurementError(
            "eye diagram needs at least two crossings to measure jitter"
        )
    dev = eye.crossing_deviations()
    jitter_pp = float(dev.max() - dev.min())
    jitter_rms = float(np.std(dev))
    ui = eye.unit_interval
    eye_width = max(0.0, ui - jitter_pp)
    eye_opening_ui = eye_width / ui

    # Vertical measurements at eye center (half a UI from crossover).
    center = np.mod(eye.crossover_phase() + ui / 2.0, ui)
    half_window = 0.5 * center_window_frac * ui
    center_volts = eye.samples_near_phase(center, half_window)
    if len(center_volts) < 4:
        raise MeasurementError("too few samples at eye center")
    highs = center_volts[center_volts > eye.threshold]
    lows = center_volts[center_volts <= eye.threshold]
    if len(highs) == 0 or len(lows) == 0:
        raise MeasurementError("eye is closed at center (one level only)")
    v_high = float(np.mean(highs))
    v_low = float(np.mean(lows))
    eye_height = max(0.0, float(highs.min() - lows.max()))

    return EyeMetrics(
        unit_interval=ui,
        jitter_pp=jitter_pp,
        jitter_rms=jitter_rms,
        eye_opening_ui=eye_opening_ui,
        eye_width=eye_width,
        eye_height=eye_height,
        v_high=v_high,
        v_low=v_low,
        amplitude=v_high - v_low,
        n_crossings=eye.n_crossings,
    )


def q_factor(metrics: EyeMetrics, noise_rms: float) -> float:
    """Optical-style Q factor: amplitude over two sigma of noise.

    Parameters
    ----------
    noise_rms:
        RMS voltage noise on each rail (assumed equal).
    """
    if noise_rms <= 0.0:
        raise MeasurementError("noise rms must be positive for Q factor")
    return metrics.amplitude / (2.0 * noise_rms)
