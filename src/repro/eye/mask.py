"""Eye-mask testing.

Production serial links are graded against a keep-out mask: a
hexagon in the eye center plus top/bottom limit bars. The paper
grades its eyes by opening (UI); a mask test is the standard
pass/fail form of the same measurement, included here as the tool a
production deployment of the mini-tester would use.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.eye.diagram import EyeDiagram


@dataclasses.dataclass(frozen=True)
class EyeMask:
    """A hexagonal center mask plus amplitude bars.

    Coordinates are normalized: time in UI about the eye center
    (x in [-0.5, 0.5]), voltage as a fraction of the nominal
    amplitude about the eye midpoint (y in [-0.5, 0.5] covers the
    full swing).

    Attributes
    ----------
    x_inner:
        Half-width of the hexagon's flat middle, UI.
    x_outer:
        Half-width at the y=0 points, UI.
    y_height:
        Half-height of the hexagon, fraction of amplitude.
    y_limit:
        Top/bottom keep-out: samples beyond this fraction above/
        below the rails violate (overshoot bars).
    """

    x_inner: float = 0.15
    x_outer: float = 0.30
    y_height: float = 0.15
    y_limit: float = 0.75

    def __post_init__(self):
        if not 0.0 < self.x_inner <= self.x_outer <= 0.5:
            raise ConfigurationError(
                "need 0 < x_inner <= x_outer <= 0.5"
            )
        if not 0.0 < self.y_height <= 0.5:
            raise ConfigurationError("need 0 < y_height <= 0.5")
        if self.y_limit <= 0.5:
            raise ConfigurationError("y_limit must exceed 0.5")

    def hexagon_vertices(self) -> List[Tuple[float, float]]:
        """The mask polygon, counterclockwise from the left point."""
        return [
            (-self.x_outer, 0.0),
            (-self.x_inner, -self.y_height),
            (self.x_inner, -self.y_height),
            (self.x_outer, 0.0),
            (self.x_inner, self.y_height),
            (-self.x_inner, self.y_height),
        ]

    def inside_hexagon(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Vectorized point-in-hexagon test (normalized coords)."""
        # The hexagon is convex and symmetric: |y| <= y_height and
        # |y| <= y_height * (x_outer - |x|)/(x_outer - x_inner)
        # for |x| between x_inner and x_outer; nothing outside
        # x_outer.
        ax = np.abs(x)
        ay = np.abs(y)
        inside = (ax <= self.x_outer) & (ay <= self.y_height)
        taper = ax > self.x_inner
        slope_limit = self.y_height * (self.x_outer - ax) \
            / (self.x_outer - self.x_inner)
        inside &= np.where(taper, ay <= slope_limit, True)
        return inside


@dataclasses.dataclass(frozen=True)
class MaskResult:
    """Outcome of a mask test.

    Attributes
    ----------
    hexagon_hits:
        Samples inside the center keep-out.
    bar_hits:
        Samples beyond the amplitude bars.
    n_samples:
        Samples examined.
    """

    hexagon_hits: int
    bar_hits: int
    n_samples: int

    @property
    def total_hits(self) -> int:
        """All violations."""
        return self.hexagon_hits + self.bar_hits

    @property
    def passed(self) -> bool:
        """True with zero violations."""
        return self.total_hits == 0

    @property
    def hit_ratio(self) -> float:
        """Violations per examined sample."""
        if self.n_samples == 0:
            return 0.0
        return self.total_hits / self.n_samples


def mask_test(eye: EyeDiagram, mask: EyeMask = EyeMask()) -> MaskResult:
    """Run a mask test on a folded eye.

    The eye center and amplitude are taken from the eye itself
    (crossover phase + half a UI; mean rail levels).
    """
    ui = eye.unit_interval
    center_phase = (eye.crossover_phase() + ui / 2.0) % ui
    # Normalize time about the center, wrapped into [-0.5, 0.5) UI.
    x = (eye.phases - center_phase) / ui
    x = np.mod(x + 0.5, 1.0) - 0.5
    highs = eye.voltages[eye.voltages > eye.threshold]
    lows = eye.voltages[eye.voltages <= eye.threshold]
    if len(highs) == 0 or len(lows) == 0:
        raise ConfigurationError("eye has a single level; no mask test")
    v_high = float(np.mean(highs))
    v_low = float(np.mean(lows))
    amplitude = v_high - v_low
    mid = 0.5 * (v_high + v_low)
    y = (eye.voltages - mid) / amplitude

    hexagon_hits = int(np.count_nonzero(mask.inside_hexagon(x, y)))
    bar_hits = int(np.count_nonzero(np.abs(y) > mask.y_limit))
    return MaskResult(
        hexagon_hits=hexagon_hits,
        bar_hits=bar_hits,
        n_samples=len(eye.phases),
    )


def margin_to_mask(eye: EyeDiagram, mask: EyeMask = EyeMask(),
                   steps: int = 20) -> float:
    """Mask margin: the largest scale factor the mask tolerates.

    The hexagon is grown until samples hit it; the reported margin
    is (largest passing scale - 1), e.g. +0.5 means the eye passes a
    mask 50% larger. Returns -1.0 if even the nominal mask fails.
    """
    if steps < 2:
        raise ConfigurationError("need >= 2 steps")
    if not mask_test(eye, mask).passed:
        return -1.0
    margin = 0.0
    for k in range(1, steps + 1):
        scale = 1.0 + k * (0.1)
        grown = EyeMask(
            x_inner=min(mask.x_inner * scale, 0.49),
            x_outer=min(mask.x_outer * scale, 0.5),
            y_height=min(mask.y_height * scale, 0.5),
            y_limit=mask.y_limit,
        )
        if not mask_test(eye, grown).passed:
            break
        margin = scale - 1.0
    return margin
