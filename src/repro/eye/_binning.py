"""Shared fold/binning arithmetic for eye construction and display.

Two consumers need the same primitives: the fold
(:meth:`repro.eye.diagram.EyeDiagram.from_waveform`, the streaming
:class:`repro.eye.accumulator.EyeAccumulator`) needs sample phases,
and every density view (``EyeDiagram.histogram2d``,
``render_eye_ascii``) needs one 2-D binning convention so they can
never drift apart. Both live here.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def fold_phases(offset: float, dt: float, n: int,
                ui: float) -> np.ndarray:
    """Phases ``mod(offset + dt*arange(n), ui)`` without an O(n) mod.

    On a uniform grid the phase sequence is periodic whenever the
    unit interval is an exact integer multiple of the sample spacing
    (it is at every paper rate: 400/250/200/125 ps on a 1 ps grid).
    In that case one period is computed and tiled — the tiled values
    can differ from the direct ``np.mod`` by ~1 ulp, which moves no
    physical measurement. Non-commensurate grids fall back to the
    direct computation.

    Parameters
    ----------
    offset:
        Time of the first sample relative to the fold origin, ps.
    dt:
        Sample spacing, ps.
    n:
        Number of samples.
    ui:
        Fold period (the unit interval), ps.

    Returns
    -------
    numpy.ndarray
        ``float64`` phases in ``[0, ui)``; empty input pins the same
        dtype.
    """
    if n <= 0:
        return np.empty(0, dtype=np.float64)
    k = ui / dt
    k_int = int(round(k))
    if k_int >= 1 and abs(k - k_int) < 1e-9 and k_int < n:
        tile = np.mod(offset + dt * np.arange(k_int), ui)
        # mod of a value ~ulp below a period boundary can round up to
        # exactly ui; fold it back so the [0, ui) contract holds.
        tile[tile >= ui] -= ui
        return np.resize(tile, n)
    phases = np.mod(offset + dt * np.arange(n), ui)
    phases[phases >= ui] -= ui
    return phases


def density_grid(phases: np.ndarray, voltages: np.ndarray, ui: float,
                 n_time_bins: int, n_volt_bins: int,
                 v_range: Optional[Tuple[float, float]] = None
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The 2-D (time x voltage) density every eye display uses.

    One convention shared by ``EyeDiagram.histogram2d`` and
    ``render_eye_ascii``: time axis spans ``[0, ui)``; the voltage
    axis spans *v_range* (data min/max when omitted).

    Returns
    -------
    tuple
        ``(hist, t_edges, v_edges)`` with ``hist`` shaped
        ``(n_time_bins, n_volt_bins)``. Empty input returns an
        all-zero grid over ``v_range`` (or ``(0, 1)`` volts) with
        every array pinned ``float64`` — matching the populated
        case's dtypes exactly.
    """
    phases = np.asarray(phases, dtype=np.float64)
    voltages = np.asarray(voltages, dtype=np.float64)
    if v_range is None:
        if len(voltages) == 0:
            v_range = (0.0, 1.0)
        else:
            v_range = (float(voltages.min()), float(voltages.max()))
    if len(phases) == 0:
        hist = np.zeros((n_time_bins, n_volt_bins), dtype=np.float64)
        t_edges = np.linspace(0.0, ui, n_time_bins + 1,
                              dtype=np.float64)
        v_edges = np.linspace(v_range[0], v_range[1], n_volt_bins + 1,
                              dtype=np.float64)
        return hist, t_edges, v_edges
    hist, t_edges, v_edges = np.histogram2d(
        phases, voltages, bins=(n_time_bins, n_volt_bins),
        range=((0.0, ui), v_range),
    )
    return hist, t_edges, v_edges


def density_grid_stack(phases: np.ndarray, voltages: np.ndarray,
                       t_edges: np.ndarray,
                       v_edges: np.ndarray) -> np.ndarray:
    """Per-row 2-D densities for a ``(channels, samples)`` stack.

    One ``np.histogramdd`` call with the row index as a third
    coordinate replaces a per-channel loop of ``np.histogram2d``
    calls. ``histogram2d`` is itself a thin ``histogramdd`` wrapper,
    so with identical explicit *t_edges*/*v_edges* every sample
    lands in exactly the bin the per-channel call would choose —
    each row of the result is *bit-identical* to
    ``np.histogram2d(phases, voltages[c], bins=(t_edges, v_edges))``
    (counts are integers, so sums over channels are exact too).

    Parameters
    ----------
    phases:
        Shared folded sample phases, shape ``(samples,)``.
    voltages:
        Sample stack, shape ``(channels, samples)``.
    t_edges, v_edges:
        Explicit bin edges for the phase and voltage axes.

    Returns
    -------
    numpy.ndarray
        ``(channels, n_time_bins, n_volt_bins)`` float64 counts.
    """
    voltages = np.asarray(voltages, dtype=np.float64)
    c, n = voltages.shape
    if c == 0 or n == 0:
        return np.zeros((c, len(t_edges) - 1, len(v_edges) - 1),
                        dtype=np.float64)
    rows = np.repeat(np.arange(c, dtype=np.float64), n)
    hist, _ = np.histogramdd(
        (rows, np.tile(np.asarray(phases, dtype=np.float64), c),
         voltages.reshape(-1)),
        bins=(np.arange(c + 1, dtype=np.float64), t_edges, v_edges),
    )
    return hist
