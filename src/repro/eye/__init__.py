"""Eye-diagram construction and metrology.

Reproduces the sampling-oscilloscope measurements in the paper's
evaluation: eye diagrams (Figures 7, 8, 16, 17, 19), peak-to-peak
crossover jitter, and eye opening in unit intervals.
"""

from repro.eye.accumulator import EyeAccumulator
from repro.eye.diagram import EyeDiagram
from repro.eye.metrics import EyeMetrics, measure_eye
from repro.eye.bathtub import bathtub_curve, empirical_bathtub
from repro.eye.render import render_eye_ascii
from repro.eye.decompose import JitterDecomposition, decompose_jitter
from repro.eye.mask import EyeMask, MaskResult, margin_to_mask, mask_test

__all__ = [
    "EyeAccumulator",
    "EyeDiagram",
    "EyeMetrics",
    "measure_eye",
    "bathtub_curve",
    "empirical_bathtub",
    "render_eye_ascii",
    "JitterDecomposition",
    "decompose_jitter",
    "EyeMask",
    "MaskResult",
    "mask_test",
    "margin_to_mask",
]
