"""PRBS verification over a *coded* stream.

The raw :class:`~repro.dlc.prbs_checker.SelfSyncChecker` grades line
bits directly; on a coded link the payload rides inside 8b10b
symbols, so verification means: align and decode the line stream,
strip framing, descramble, and only then run the self-synchronizing
PRBS check over the recovered payload bits — while reporting the
line-layer health (code violations, disparity errors, lock state)
the raw checker cannot see.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro import telemetry
from repro.coding.link import DecodedFrame, LinkCodec
from repro.dlc.prbs_checker import CheckerState, SelfSyncChecker


def prbs_payload_bytes(order: int, n_bytes: int,
                       seed: int = 1) -> np.ndarray:
    """*n_bytes* of PRBS-*order* packed MSB-first into bytes."""
    from repro.signal.prbs import prbs_bits

    bits = prbs_bits(order, 8 * n_bytes, seed=seed)
    return np.packbits(bits)


@dataclasses.dataclass
class CodedCheckResult:
    """Line-layer and payload-layer verdicts for one stream."""

    frame: DecodedFrame
    payload: CheckerState

    @property
    def code_violations(self) -> int:
        return self.frame.stats.code_violations

    @property
    def disparity_errors(self) -> int:
        return self.frame.stats.disparity_errors

    @property
    def locked(self) -> bool:
        return self.frame.stats.locked

    @property
    def payload_ber(self) -> float:
        return self.payload.ber

    @property
    def clean(self) -> bool:
        """Error-free line and payload, with lock held."""
        return (self.frame.clean and self.payload.errors == 0
                and self.payload.slips == 0)


class CodedStreamChecker:
    """Self-synchronizing PRBS check through the coded-link stack.

    Parameters
    ----------
    codec:
        The framing in use on the transmit side (scrambling and
        comma layout must match).
    order:
        PRBS order of the payload stream.
    registry:
        Optional injected telemetry registry.
    """

    def __init__(self, codec: Optional[LinkCodec] = None,
                 order: int = 7, resync_threshold: int = 16,
                 registry=None):
        self.codec = codec if codec is not None \
            else LinkCodec(registry=registry)
        self.order = int(order)
        self.resync_threshold = int(resync_threshold)
        self.telemetry = registry

    def check(self, line_bits, n_bytes: Optional[int] = None
              ) -> CodedCheckResult:
        """Decode *line_bits* and grade the recovered payload."""
        tel = telemetry.resolve(self.telemetry)
        frame = self.codec.decode_frame(line_bits, n_bytes=n_bytes)
        checker = SelfSyncChecker(
            order=self.order, resync_threshold=self.resync_threshold)
        if len(frame.payload):
            checker.run(np.unpackbits(frame.payload))
        state = checker.state
        tel.counter("coding.payload_bits_checked").inc(
            state.bits_checked)
        tel.counter("coding.payload_errors").inc(state.errors)
        tel.counter("coding.checker_slips").inc(state.slips)
        return CodedCheckResult(frame=frame, payload=state)
