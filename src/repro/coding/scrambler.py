"""Self-synchronizing (multiplicative) scrambler/descrambler.

Whitens the payload *before* 8b10b encoding so pathological data
(long constant runs driving the baseline wander, repeating patterns
tonal in the spectrum) still produces transition-rich symbols. The
default polynomial is the 64b/66b standard G(x) = 1 + x^39 + x^58.

Self-synchronizing means the descrambler is pure feed-forward over
the *received* bits — after ``max(taps)`` clean bits it produces
correct output from any starting state, so a receiver can join a
running stream (or recover from an error burst) with no side
channel. The price is error multiplication: one channel error
corrupts ``len(taps) + 1`` descrambled bits.

Only the scrambler has feedback; it is computed in vectorized chunks
of ``min(taps)`` bits (each chunk depends only on already-computed
history), and the descrambler is a single vectorized XOR, so both
directions run at array speed over 1-D streams and batched
``(channels, n)`` blocks alike.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: The 64b/66b self-synchronizing polynomial's tap distances.
DEFAULT_TAPS: Tuple[int, int] = (39, 58)


class Scrambler:
    """A two-tap multiplicative scrambler pair.

    Parameters
    ----------
    taps:
        Tap distances ``(a, b)`` of G(x) = 1 + x^a + x^b, a < b.
    """

    def __init__(self, taps: Tuple[int, int] = DEFAULT_TAPS):
        a, b = int(taps[0]), int(taps[1])
        if not 0 < a < b:
            raise ConfigurationError(
                f"taps must satisfy 0 < a < b, got {taps}"
            )
        self.taps = (a, b)

    def _history(self, state, shape) -> np.ndarray:
        b = self.taps[1]
        if state is None:
            return np.zeros(shape[:-1] + (b,), dtype=np.uint8)
        state = np.asarray(state, dtype=np.uint8) & 1
        if state.shape != shape[:-1] + (b,):
            raise ConfigurationError(
                f"state must have shape {shape[:-1] + (b,)}, "
                f"got {state.shape}"
            )
        return state.copy()

    def scramble(self, bits, state=None
                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Scramble *bits* (last axis = time).

        Returns ``(scrambled, state)`` where *state* is the last
        ``b`` output bits (oldest first), resumable into the next
        call. A fresh (all-zero) state is used when none is given.
        """
        bits = (np.asarray(bits, dtype=np.uint8) & 1)
        a, b = self.taps
        n = bits.shape[-1]
        buf = np.concatenate(
            [self._history(state, bits.shape),
             np.zeros_like(bits)], axis=-1)
        # out[i] = in[i] ^ out[i-a] ^ out[i-b]: chunks of <= a bits
        # reference only already-filled history.
        for start in range(0, n, a):
            stop = min(start + a, n)
            lo, hi = b + start, b + stop
            buf[..., lo:hi] = (bits[..., start:stop]
                               ^ buf[..., lo - a:hi - a]
                               ^ buf[..., lo - b:hi - b])
        return buf[..., b:].copy(), buf[..., -b:].copy()

    def descramble(self, bits, state=None
                   ) -> Tuple[np.ndarray, np.ndarray]:
        """Descramble *bits*; feed-forward, hence self-synchronizing.

        Returns ``(descrambled, state)`` with *state* the trailing
        ``b`` *received* bits. With no state, the first ``b`` output
        bits are computed against a zero history and are only
        correct if the transmitter also started from zeros.
        """
        bits = (np.asarray(bits, dtype=np.uint8) & 1)
        a, b = self.taps
        n = bits.shape[-1]
        buf = np.concatenate(
            [self._history(state, bits.shape), bits], axis=-1)
        out = bits ^ buf[..., b - a:b - a + n] ^ buf[..., 0:n]
        return out, buf[..., -b:].copy()

    def sync_bits(self) -> int:
        """Clean received bits after which the descrambler is exact."""
        return self.taps[1]

    def error_multiplication(self) -> int:
        """Descrambled errors produced per single channel error."""
        return len(self.taps) + 1


def scramble_bytes(data, taps: Tuple[int, int] = DEFAULT_TAPS,
                   state=None) -> np.ndarray:
    """Scramble a byte array (MSB-first bit order within each byte)."""
    data = np.asarray(data, dtype=np.uint8)
    bits = np.unpackbits(data, axis=-1)
    out, _ = Scrambler(taps).scramble(bits, state=state)
    return np.packbits(out, axis=-1)


def descramble_bytes(data, taps: Tuple[int, int] = DEFAULT_TAPS,
                     state=None) -> np.ndarray:
    """Inverse of :func:`scramble_bytes` (zero-state framing)."""
    data = np.asarray(data, dtype=np.uint8)
    bits = np.unpackbits(data, axis=-1)
    out, _ = Scrambler(taps).descramble(bits, state=state)
    return np.packbits(out, axis=-1)
