"""Link framing: comma preambles, lock acquisition, loss-of-lock.

Two pieces:

:class:`LinkLockStateMachine` is the receiver's CDR-style lock
tracker — HUNT (no boundary) → ALIGN (comma found, confirming) →
LOCKED, dropping back to HUNT when code violations burst (the
signature of a slipped or broken stream, not of scattered channel
errors).

:class:`LinkCodec` is the whole TX/RX framing stack: optional
self-synchronizing scrambling, comma preamble + periodic comma
insertion, 8b10b encode on the way out; bit-slip alignment, decode,
lock tracking, payload extraction and descrambling on the way back.
Encoding is fully vectorized and accepts batched ``(channels,
n_bytes)`` payloads bit-identically to the per-row scalar path.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional, Union

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError
from repro.coding.align import Alignment, BitSlipAligner
from repro.coding.code8b10b import (
    COMMA, SYMBOL_BITS, decode_stream, encode_stream,
)
from repro.coding.scrambler import DEFAULT_TAPS, Scrambler


class LinkState(enum.Enum):
    """Receiver lock states."""

    HUNT = "hunt"
    ALIGN = "align"
    LOCKED = "locked"


class LinkLockStateMachine:
    """Tracks symbol-stream health into a lock decision.

    Parameters
    ----------
    lock_commas:
        Comma sightings (violation-free since the last) required to
        declare LOCKED.
    loss_window / loss_violations:
        Sliding window (symbols) and the violation count within it
        that declares loss of lock — bursts unlock, isolated channel
        errors do not.
    """

    def __init__(self, lock_commas: int = 2, loss_window: int = 16,
                 loss_violations: int = 4):
        if lock_commas < 1:
            raise ConfigurationError("lock_commas must be >= 1")
        if loss_violations < 1 or loss_window < loss_violations:
            raise ConfigurationError(
                "need loss_window >= loss_violations >= 1"
            )
        self.lock_commas = int(lock_commas)
        self.loss_window = int(loss_window)
        self.loss_violations = int(loss_violations)
        self.state = LinkState.HUNT
        self.acquisitions = 0
        self.losses = 0
        self.symbols = 0
        #: Symbol count at the first transition into LOCKED.
        self.first_lock_symbols: Optional[int] = None
        self._commas_seen = 0
        self._recent: List[bool] = []

    @property
    def locked(self) -> bool:
        return self.state is LinkState.LOCKED

    def restart_hunt(self) -> None:
        """Force back to HUNT (the aligner lost the boundary)."""
        self.state = LinkState.HUNT
        self._commas_seen = 0
        self._recent = []

    def step(self, comma: bool, violation: bool) -> LinkState:
        """Advance one symbol; returns the state *after* it."""
        self.symbols += 1
        if self.state is LinkState.LOCKED:
            self._recent.append(bool(violation))
            if len(self._recent) > self.loss_window:
                self._recent.pop(0)
            if sum(self._recent) >= self.loss_violations:
                self.losses += 1
                self.restart_hunt()
            return self.state
        if violation:
            self._commas_seen = 0
            self.state = LinkState.HUNT
            return self.state
        if comma:
            self._commas_seen += 1
            self.state = LinkState.ALIGN
            if self._commas_seen >= self.lock_commas:
                self.state = LinkState.LOCKED
                self.acquisitions += 1
                self._recent = []
                if self.first_lock_symbols is None:
                    self.first_lock_symbols = self.symbols
        return self.state


@dataclasses.dataclass
class LinkStats:
    """Receiver-side accounting for one decoded frame."""

    symbols: int = 0
    commas: int = 0
    payload_symbols: int = 0
    code_violations: int = 0
    disparity_errors: int = 0
    lock_acquisitions: int = 0
    lock_losses: int = 0
    lock_time_symbols: Optional[int] = None
    slip_bits: int = 0
    discarded_bits: int = 0
    locked: bool = False

    @property
    def total_errors(self) -> int:
        return self.code_violations + self.disparity_errors


@dataclasses.dataclass
class DecodedFrame:
    """A recovered payload plus the link health alongside it."""

    payload: np.ndarray
    stats: LinkStats

    @property
    def clean(self) -> bool:
        return self.stats.total_errors == 0 and self.stats.locked


class LinkCodec:
    """The full coded-link framing stack (see module docstring).

    Parameters
    ----------
    scramble:
        Self-synchronously scramble payload bytes before encoding.
    n_preamble:
        Comma symbols opening every frame (>= ``lock_commas`` so a
        clean frame locks inside its own preamble).
    comma_period:
        Insert one comma every *comma_period* payload bytes (0 =
        preamble only); periodic commas bound relock time after a
        mid-frame loss.
    registry:
        Optional injected telemetry registry.
    """

    def __init__(self, scramble: bool = False, n_preamble: int = 4,
                 comma_period: int = 0, lock_commas: int = 2,
                 loss_window: int = 16, loss_violations: int = 4,
                 scrambler_taps=DEFAULT_TAPS, registry=None):
        if n_preamble < max(1, lock_commas):
            raise ConfigurationError(
                f"n_preamble must be >= lock_commas "
                f"({lock_commas}), got {n_preamble}"
            )
        if comma_period < 0:
            raise ConfigurationError("comma_period must be >= 0")
        self.scramble = bool(scramble)
        self.n_preamble = int(n_preamble)
        self.comma_period = int(comma_period)
        self.lock_commas = int(lock_commas)
        self.loss_window = int(loss_window)
        self.loss_violations = int(loss_violations)
        self.scrambler = Scrambler(scrambler_taps)
        self.telemetry = registry

    @classmethod
    def from_spec(cls, spec, registry=None) -> Optional["LinkCodec"]:
        """Normalize an ``encoding=`` argument into a codec.

        ``None`` passes through (raw NRZ), a :class:`LinkCodec` is
        used as-is, and the string modes are ``"8b10b"`` and
        ``"8b10b-scrambled"``.
        """
        if spec is None or isinstance(spec, cls):
            return spec
        if spec == "8b10b":
            return cls(scramble=False, registry=registry)
        if spec == "8b10b-scrambled":
            return cls(scramble=True, registry=registry)
        raise ConfigurationError(
            f"unknown encoding {spec!r}; use None, '8b10b', "
            f"'8b10b-scrambled', or a LinkCodec"
        )

    # -- frame geometry ---------------------------------------------------

    def n_commas(self, n_bytes: int) -> int:
        """Comma symbols a frame of *n_bytes* payload carries."""
        extra = 0 if self.comma_period == 0 \
            else (max(n_bytes - 1, 0)) // self.comma_period
        return self.n_preamble + extra

    def frame_symbols(self, n_bytes: int) -> int:
        """Total symbols in a frame of *n_bytes* payload."""
        return n_bytes + self.n_commas(n_bytes)

    def frame_bits(self, n_bytes: int) -> int:
        """Line bits in a frame of *n_bytes* payload."""
        return SYMBOL_BITS * self.frame_symbols(n_bytes)

    def overhead(self) -> float:
        """Line-rate overhead factor of the 8b10b expansion."""
        return SYMBOL_BITS / 8.0

    def _frame_symbol_layout(self, n_bytes: int):
        """(k_mask, payload_positions) for one frame's symbols."""
        n_sym = self.frame_symbols(n_bytes)
        k_mask = np.zeros(n_sym, dtype=bool)
        k_mask[:self.n_preamble] = True
        if self.comma_period > 0 and n_bytes > 1:
            # A comma lands before payload byte p for every full
            # comma_period bytes already emitted.
            payload_idx = np.arange(n_bytes)
            commas_before = payload_idx // self.comma_period
            positions = (self.n_preamble + payload_idx
                         + commas_before)
            k_mask[:] = True
            k_mask[positions] = False
        payload_positions = np.flatnonzero(~k_mask)
        return k_mask, payload_positions

    # -- transmit side ----------------------------------------------------

    def encode_frame(self, payload, rd: int = -1) -> np.ndarray:
        """Frame and encode *payload* bytes into serial line bits."""
        bits = self.encode_frame_batch(
            np.asarray(payload, dtype=np.uint8)[None, :], rd=rd)
        return bits[0]

    def encode_frame_batch(self, payloads, rd: int = -1) -> np.ndarray:
        """Batched :meth:`encode_frame` over ``(channels, n_bytes)``.

        Bit-identical per row to the scalar path: the comma layout,
        scrambler framing (fresh zero state per frame), and 8b10b
        disparity evolution are all per-row deterministic.
        """
        payloads = np.asarray(payloads, dtype=np.uint8)
        if payloads.ndim != 2:
            raise ConfigurationError(
                f"expected (channels, n_bytes), got shape "
                f"{payloads.shape}"
            )
        n_rows, n_bytes = payloads.shape
        tel = telemetry.resolve(self.telemetry)
        if self.scramble:
            scrambled, _ = self.scrambler.scramble(
                np.unpackbits(payloads, axis=-1))
            payloads = np.packbits(scrambled, axis=-1)
        k_mask, payload_positions = self._frame_symbol_layout(n_bytes)
        symbols = np.full((n_rows, len(k_mask)), COMMA, dtype=np.uint8)
        symbols[:, payload_positions] = payloads
        bits, _ = encode_stream(
            symbols, k=np.broadcast_to(k_mask, symbols.shape), rd=rd)
        tel.counter("coding.symbols_encoded").inc(symbols.size)
        tel.counter("coding.commas_inserted").inc(
            int(np.count_nonzero(k_mask)) * n_rows)
        return bits

    # -- receive side -----------------------------------------------------

    def decode_frame(self, bits, n_bytes: Optional[int] = None
                     ) -> DecodedFrame:
        """Align, decode, lock-track, and descramble one frame.

        Works from an arbitrary bit phase (leading garbage or a
        slipped stream): a bit-slip aligner hunts the comma, the
        lock state machine gates payload extraction, and a
        violation burst sends the whole pipeline back to the hunt —
        re-alignment included — exactly as a hardware receiver
        would. *n_bytes* optionally truncates the recovered payload
        (the transmit-side frame length, when known).
        """
        bits = (np.asarray(bits).astype(np.uint8) & 1)
        tel = telemetry.resolve(self.telemetry)
        stats = LinkStats()
        sm = LinkLockStateMachine(
            lock_commas=self.lock_commas,
            loss_window=self.loss_window,
            loss_violations=self.loss_violations,
        )
        aligner = BitSlipAligner(confirm=1)
        payload_symbols: List[np.ndarray] = []
        pos = 0
        while pos + SYMBOL_BITS <= len(bits):
            alignment = aligner.find(bits, start=pos)
            if alignment is None:
                stats.discarded_bits += len(bits) - pos
                break
            stats.discarded_bits += alignment.position - pos
            stats.slip_bits += alignment.slip
            n_sym = (len(bits) - alignment.position) // SYMBOL_BITS
            stop = alignment.position + n_sym * SYMBOL_BITS
            decoded = decode_stream(bits[alignment.position:stop],
                                    rd=alignment.polarity)
            commas = decoded.k & (decoded.data == COMMA) \
                & ~decoded.violations
            resume_at = None
            for s in range(n_sym):
                state = sm.step(bool(commas[s]),
                                bool(decoded.violations[s]))
                stats.code_violations += int(decoded.violations[s])
                stats.disparity_errors += int(
                    decoded.disparity_errors[s])
                if state is LinkState.LOCKED and not commas[s] \
                        and not decoded.k[s]:
                    # Payload keeps its slot even through a
                    # violation (the decoder outputs *something*),
                    # so downstream byte alignment survives single
                    # corrupted symbols.
                    payload_symbols.append(decoded.data[s:s + 1])
                stats.commas += int(commas[s])
                if state is LinkState.HUNT and sm.losses > 0 \
                        and resume_at is None:
                    # Lost lock: resume the comma hunt one bit past
                    # this symbol so a slipped boundary can be
                    # re-found at a new phase.
                    resume_at = alignment.position \
                        + (s + 1) * SYMBOL_BITS
                    break
            stats.symbols = sm.symbols
            if resume_at is None:
                pos = stop
                break
            pos = resume_at
        stats.lock_acquisitions = sm.acquisitions
        stats.lock_losses = sm.losses
        stats.lock_time_symbols = sm.first_lock_symbols
        stats.locked = sm.locked
        payload = (np.concatenate(payload_symbols)
                   if payload_symbols else np.zeros(0, dtype=np.uint8))
        if self.scramble and len(payload):
            descrambled, _ = self.scrambler.descramble(
                np.unpackbits(payload))
            payload = np.packbits(descrambled)
        if n_bytes is not None:
            payload = payload[:n_bytes]
        stats.payload_symbols = len(payload)
        tel.counter("coding.symbols_decoded").inc(stats.symbols)
        tel.counter("coding.commas_seen").inc(stats.commas)
        tel.counter("coding.code_violations").inc(
            stats.code_violations)
        tel.counter("coding.disparity_errors").inc(
            stats.disparity_errors)
        tel.counter("coding.lock_acquisitions").inc(
            stats.lock_acquisitions)
        tel.counter("coding.lock_losses").inc(stats.lock_losses)
        return DecodedFrame(payload=payload, stats=stats)

    def decode_frame_batch(self, bits, n_bytes: Optional[int] = None
                           ) -> List[DecodedFrame]:
        """Per-row :meth:`decode_frame` over a ``(channels, n)`` block.

        Each row aligns independently (real lanes slip
        independently); the symbol decode inside each row is
        vectorized.
        """
        bits = np.asarray(bits)
        if bits.ndim != 2:
            raise ConfigurationError(
                f"expected (channels, n_bits), got shape {bits.shape}"
            )
        return [self.decode_frame(row, n_bytes=n_bytes)
                for row in bits]
