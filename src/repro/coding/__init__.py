"""repro.coding — coded serial links (8b10b, scrambling, CDR lock).

The paper's test systems drive raw NRZ; every real multi-gigabit
link the related work runs is *coded* — DC-balanced 8b10b symbols,
comma-based word alignment, scrambled payloads, and a lock state
machine that knows when the receiver can trust its bits. This
package supplies that layer:

- :mod:`~repro.coding.code8b10b` — the 8b10b encoder/decoder with
  running-disparity tracking and K characters (vectorized, batch-
  capable).
- :mod:`~repro.coding.scrambler` — self-synchronizing scrambler/
  descrambler (64b/66b polynomial by default).
- :mod:`~repro.coding.align` — bit-slip comma alignment.
- :mod:`~repro.coding.link` — the lock state machine and
  :class:`LinkCodec`, the full TX/RX framing stack that
  ``PECLTransmitter``/``PECLReceiver`` and the test systems accept
  via their ``encoding=`` arguments.
- :mod:`~repro.coding.checker` — PRBS verification through the
  decoded payload with line-layer telemetry.
"""

from repro.coding.align import Alignment, BitSlipAligner
from repro.coding.checker import (
    CodedCheckResult, CodedStreamChecker, prbs_payload_bytes,
)
from repro.coding.code8b10b import (
    COMMA, COMMA_CODES, K, K_CODES, SYMBOL_BITS,
    DecodeResult, Decoder8b10b, Encoder8b10b,
    bits_to_symbols, decode_stream, decode_symbol,
    encode_stream, encode_symbol, symbols_to_bits,
)
from repro.coding.link import (
    DecodedFrame, LinkCodec, LinkLockStateMachine, LinkState,
    LinkStats,
)
from repro.coding.scrambler import (
    DEFAULT_TAPS, Scrambler, descramble_bytes, scramble_bytes,
)

__all__ = [
    "Alignment", "BitSlipAligner",
    "CodedCheckResult", "CodedStreamChecker", "prbs_payload_bytes",
    "COMMA", "COMMA_CODES", "K", "K_CODES", "SYMBOL_BITS",
    "DecodeResult", "Decoder8b10b", "Encoder8b10b",
    "bits_to_symbols", "decode_stream", "decode_symbol",
    "encode_stream", "encode_symbol", "symbols_to_bits",
    "DecodedFrame", "LinkCodec", "LinkLockStateMachine", "LinkState",
    "LinkStats",
    "DEFAULT_TAPS", "Scrambler", "descramble_bytes", "scramble_bytes",
]
