"""Bit-slip word alignment on the comma character.

A deserializer wakes up at an arbitrary bit phase: symbol boundaries
land anywhere within its 10-bit word. Hardware fixes this with a
*bitslip* — shift the framing one bit and look again — until the
comma (K.28.5) pattern sits aligned in the word; the comma's 7-bit
core is singular, i.e. it cannot straddle two valid symbols, so an
aligned sighting pins the boundary exactly (SNIPPETS.md Snippet 2's
``BitSlip`` + comma path, in array form).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.coding.code8b10b import COMMA_CODES, SYMBOL_BITS


@dataclasses.dataclass(frozen=True)
class Alignment:
    """A detected word boundary.

    Attributes
    ----------
    position:
        Absolute bit index of the first aligned symbol.
    slip:
        Bit-slips a hardware aligner would apply (``position`` mod
        10) to rotate its framing onto the boundary.
    polarity:
        Entry running disparity of the comma found there (-1/+1).
    """

    position: int
    slip: int
    polarity: int


def _window_codes(bits: np.ndarray) -> np.ndarray:
    """Pack every 10-bit window of *bits* into symbol integers."""
    if len(bits) < SYMBOL_BITS:
        return np.zeros(0, dtype=np.uint16)
    windows = np.lib.stride_tricks.sliding_window_view(
        (bits & 1).astype(np.uint16), SYMBOL_BITS)
    shifts = np.arange(SYMBOL_BITS - 1, -1, -1)
    return (windows << shifts).sum(axis=-1).astype(np.uint16)


class BitSlipAligner:
    """Comma hunter over a serial bit stream.

    Parameters
    ----------
    confirm:
        Comma sightings required at the same 10-bit phase before an
        alignment is reported (>= 2 rejects chance patterns in
        uncoded garbage; 1 is the fast relock setting used once a
        frame is known to carry commas).
    """

    def __init__(self, confirm: int = 1):
        if confirm < 1:
            raise ValueError("confirm must be >= 1")
        self.confirm = int(confirm)
        #: Cumulative bit-slips applied across ``find`` calls.
        self.slips = 0

    def find(self, bits, start: int = 0) -> Optional[Alignment]:
        """Locate the next aligned comma at or after *start*.

        Scans every bit offset (the software form of slipping one
        bit per try), requiring ``confirm`` sightings at the same
        phase. Returns ``None`` when no comma aligns.
        """
        bits = np.asarray(bits)
        codes = _window_codes(bits[start:])
        is_comma = (codes == COMMA_CODES[0]) | (codes == COMMA_CODES[1])
        hits = np.flatnonzero(is_comma)
        if len(hits) == 0:
            return None
        if self.confirm > 1:
            phases = hits % SYMBOL_BITS
            for phase in np.unique(phases):
                at_phase = hits[phases == phase]
                if len(at_phase) >= self.confirm:
                    hits = at_phase
                    break
            else:
                return None
        first = int(hits[0])
        polarity = -1 if codes[first] == COMMA_CODES[0] else +1
        self.slips += first % SYMBOL_BITS
        return Alignment(position=start + first,
                         slip=first % SYMBOL_BITS,
                         polarity=polarity)

    def aligned_words(self, bits, alignment: Alignment) -> np.ndarray:
        """Cut *bits* into 10-bit words from the aligned boundary."""
        bits = np.asarray(bits)
        usable = (len(bits) - alignment.position) // SYMBOL_BITS
        stop = alignment.position + usable * SYMBOL_BITS
        return (bits[alignment.position:stop] & 1).reshape(
            usable, SYMBOL_BITS)
