"""8b10b line code: running-disparity encode/decode with K characters.

The IBM/Widmer code every multi-gigabit link in the related work
assumes (the 5 Gbps 16:1 serializer and the 10 Gbps driver/receiver
ASIC both run 8b10b framing): each byte becomes a 10-bit symbol
chosen from two alternatives so the running disparity (RD) — the
cumulative ones-minus-zeros balance — stays within ±1 symbol-to-
symbol, the line stays DC-balanced, and no run exceeds 5 bits.
Twelve K (control) characters carry out-of-band framing; K.28.5 is
the *comma* whose 7-bit singular pattern cannot appear anywhere else
in an aligned stream, making blind word alignment possible.

The tables here are composed from the published 5b/6b and 3b/4b
sub-block tables (including the D.x.A7 alternate rule) at import
time; both the encoder and decoder are vectorized over whole symbol
arrays — RD evolution reduces to a prefix-XOR of per-symbol flip
flags for encode and a last-imbalanced-symbol scan for decode, so
batched (channels, n) blocks need no per-symbol Python loop.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Bits per 8b10b symbol on the line.
SYMBOL_BITS = 10


def K(x: int, y: int) -> int:
    """The byte value of control character K.x.y (serwb convention)."""
    return ((y & 0b111) << 5) | (x & 0b11111)


#: The comma character K.28.5 (0xBC).
COMMA = K(28, 5)

#: Valid control-character byte values.
K_CODES = frozenset(
    [K(28, y) for y in range(8)]
    + [K(23, 7), K(27, 7), K(29, 7), K(30, 7)]
)

# -- published sub-block tables ----------------------------------------
#
# 5b/6b: input EDCBA (x), output abcdei, columns (RD-, RD+). Balanced
# codes repeat; the balanced-but-alternating D.07 swaps on RD like the
# imbalanced rows.
_5B6B = [
    ("100111", "011000"),  # D.00
    ("011101", "100010"),  # D.01
    ("101101", "010010"),  # D.02
    ("110001", "110001"),  # D.03
    ("110101", "001010"),  # D.04
    ("101001", "101001"),  # D.05
    ("011001", "011001"),  # D.06
    ("111000", "000111"),  # D.07
    ("111001", "000110"),  # D.08
    ("100101", "100101"),  # D.09
    ("010101", "010101"),  # D.10
    ("110100", "110100"),  # D.11
    ("001101", "001101"),  # D.12
    ("101100", "101100"),  # D.13
    ("011100", "011100"),  # D.14
    ("010111", "101000"),  # D.15
    ("011011", "100100"),  # D.16
    ("100011", "100011"),  # D.17
    ("010011", "010011"),  # D.18
    ("110010", "110010"),  # D.19
    ("001011", "001011"),  # D.20
    ("101010", "101010"),  # D.21
    ("011010", "011010"),  # D.22
    ("111010", "000101"),  # D.23
    ("110011", "001100"),  # D.24
    ("100110", "100110"),  # D.25
    ("010110", "010110"),  # D.26
    ("110110", "001001"),  # D.27
    ("001110", "001110"),  # D.28
    ("101110", "010001"),  # D.29
    ("011110", "100001"),  # D.30
    ("101011", "010100"),  # D.31
]

# 3b/4b: input HGF (y), output fghj, columns (RD-, RD+); the primary
# and alternate encodings of y = 7 are listed separately.
_3B4B_DATA = [
    ("1011", "0100"),  # D.x.0
    ("1001", "1001"),  # D.x.1
    ("0101", "0101"),  # D.x.2
    ("1100", "0011"),  # D.x.3
    ("1101", "0010"),  # D.x.4
    ("1010", "1010"),  # D.x.5
    ("0110", "0110"),  # D.x.6
    ("1110", "0001"),  # D.x.P7
]
_3B4B_A7 = ("0111", "1000")

# Control characters: K.28 has its own 6b code; K.23/27/29/30 borrow
# the imbalanced data rows. The 4b alternates of y = 1, 2, 5, 6 are
# complemented relative to the data table so no K sequence fakes a
# comma.
_K_5B6B = {28: ("001111", "110000")}
_3B4B_K = [
    ("1011", "0100"),  # K.x.0
    ("0110", "1001"),  # K.x.1
    ("1010", "0101"),  # K.x.2
    ("1100", "0011"),  # K.x.3
    ("1101", "0010"),  # K.x.4
    ("0101", "1010"),  # K.x.5
    ("1001", "0110"),  # K.x.6
    ("0111", "1000"),  # K.x.7 (always the alternate)
]

#: x values whose D.x.7 takes the alternate 4b code, by the RD at the
#: sub-block boundary (avoids runs of five through the join).
_A7_AT_MINUS = frozenset({17, 18, 20})
_A7_AT_PLUS = frozenset({11, 13, 14})


def _bits_of(code_str: str) -> int:
    return int(code_str, 2)


def _popcount(value: int) -> int:
    return bin(value).count("1")


def _encode_reference(byte: int, k: bool, rd: int) -> Tuple[int, int]:
    """Table-composed scalar encode: (10-bit code, rd after).

    The single source the vectorized tables are built from; ``rd``
    is -1 or +1 on both sides, transmission order is abcdei fghj
    with 'a' in the most significant bit.
    """
    x, y = byte & 0b11111, (byte >> 5) & 0b111
    col = 0 if rd < 0 else 1
    if k:
        if byte not in K_CODES:
            raise ConfigurationError(
                f"0x{byte:02X} is not a valid K character"
            )
        six = _K_5B6B[x][col] if x in _K_5B6B else _5B6B[x][col]
        rd4 = -rd if _popcount(_bits_of(six)) != 3 else rd
        four = _3B4B_K[y][0 if rd4 < 0 else 1]
    else:
        six = _5B6B[x][col]
        rd4 = -rd if _popcount(_bits_of(six)) != 3 else rd
        use_a7 = (y == 7) and (
            (rd4 < 0 and x in _A7_AT_MINUS)
            or (rd4 > 0 and x in _A7_AT_PLUS)
        )
        pair = _3B4B_A7 if use_a7 else _3B4B_DATA[y]
        four = pair[0 if rd4 < 0 else 1]
    rd_out = -rd4 if _popcount(_bits_of(four)) != 2 else rd4
    return (_bits_of(six) << 4) | _bits_of(four), rd_out


def _build_tables():
    """Enumerate the full code space into vectorizable lookups."""
    encode = np.zeros((2, 2, 256), dtype=np.uint16)
    flips = np.zeros((2, 256), dtype=bool)
    valid_input = np.zeros((2, 256), dtype=bool)
    dec_valid = np.zeros(1024, dtype=bool)
    dec_data = np.zeros(1024, dtype=np.uint8)
    dec_k = np.zeros(1024, dtype=bool)
    dec_ok = np.zeros((2, 1024), dtype=bool)  # [rd_idx, code]
    for k in (False, True):
        bytes_ = sorted(K_CODES) if k else range(256)
        for byte in bytes_:
            valid_input[int(k), byte] = True
            for rd_idx, rd in ((0, -1), (1, +1)):
                code, rd_out = _encode_reference(byte, k, rd)
                encode[rd_idx, int(k), byte] = code
                flips[int(k), byte] = rd_out != rd
                if dec_valid[code] and (dec_data[code] != byte
                                        or dec_k[code] != k):
                    raise AssertionError(
                        f"8b10b table collision at code {code:010b}"
                    )
                dec_valid[code] = True
                dec_data[code] = byte
                dec_k[code] = k
                dec_ok[rd_idx, code] = True
    pop10 = np.array([_popcount(c) for c in range(1024)], dtype=np.int8)
    return encode, flips, valid_input, dec_valid, dec_data, dec_k, \
        dec_ok, pop10


(_ENCODE, _FLIPS, _VALID_INPUT, _DEC_VALID, _DEC_DATA, _DEC_K,
 _DEC_OK, _POP10) = _build_tables()

#: The two 10-bit comma symbols (K.28.5 entered at RD- and RD+), as
#: integers in transmission order ('a' in the MSB).
COMMA_CODES = (int(_ENCODE[0, 1, COMMA]), int(_ENCODE[1, 1, COMMA]))

_BIT_SHIFTS = np.arange(SYMBOL_BITS - 1, -1, -1)


def symbols_to_bits(codes: np.ndarray) -> np.ndarray:
    """Expand 10-bit symbol integers to serial bits ('a' first)."""
    codes = np.asarray(codes, dtype=np.uint16)
    bits = (codes[..., None] >> _BIT_SHIFTS) & 1
    return bits.reshape(codes.shape[:-1] + (-1,)).astype(np.uint8)


def bits_to_symbols(bits: np.ndarray) -> np.ndarray:
    """Pack serial bits (length a multiple of 10) into symbol ints."""
    bits = np.asarray(bits)
    if bits.shape[-1] % SYMBOL_BITS:
        raise ConfigurationError(
            f"bit count {bits.shape[-1]} is not a multiple of "
            f"{SYMBOL_BITS}"
        )
    grouped = (bits & 1).astype(np.uint16).reshape(
        bits.shape[:-1] + (-1, SYMBOL_BITS))
    return (grouped << _BIT_SHIFTS).sum(axis=-1).astype(np.uint16)


def _rd_index(rd) -> np.ndarray:
    rd = np.asarray(rd)
    if not np.all(np.abs(rd) == 1):
        raise ConfigurationError("running disparity must be -1 or +1")
    return (rd > 0).astype(np.int64)


def encode_symbol(byte: int, k: bool = False, rd: int = -1
                  ) -> Tuple[int, int]:
    """Encode one byte: (10-bit code, rd after). Scalar convenience."""
    _rd_index(rd)
    return _encode_reference(int(byte) & 0xFF, bool(k), int(rd))


def encode_stream(data, k=None, rd=-1):
    """Encode a byte array (last axis = symbols) to serial bits.

    Parameters
    ----------
    data:
        Byte values, 1-D ``(n,)`` or batched ``(channels, n)``.
    k:
        Optional boolean mask marking control characters.
    rd:
        Entry running disparity, -1 or +1 (scalar, or per-row for a
        batch).

    Returns
    -------
    (bits, rd_out):
        Serial 0/1 ``uint8`` bits in transmission order (10 per
        symbol, 'a' first) with the same leading shape as *data*,
        and the exit running disparity (-1/+1, per row for a batch).
    """
    data = np.asarray(data, dtype=np.uint8)
    kmask = np.zeros(data.shape, dtype=bool) if k is None \
        else np.broadcast_to(np.asarray(k, dtype=bool), data.shape)
    if not np.all(_VALID_INPUT[kmask.astype(np.int64), data]):
        bad = data[kmask & ~_VALID_INPUT[1, data]]
        raise ConfigurationError(
            f"invalid K character(s): "
            f"{[f'0x{b:02X}' for b in np.unique(bad)]}"
        )
    rd_idx0 = _rd_index(rd)
    flips = _FLIPS[kmask.astype(np.int64), data].astype(np.int64)
    cum = np.cumsum(flips, axis=-1)
    entry_idx = (np.expand_dims(rd_idx0, -1) if data.ndim > 1
                 else rd_idx0) + cum - flips
    entry_idx &= 1
    codes = _ENCODE[entry_idx, kmask.astype(np.int64), data]
    rd_out_idx = (rd_idx0 + (cum[..., -1] if data.size else 0)) & 1
    rd_out = rd_out_idx * 2 - 1
    if data.ndim == 1:
        rd_out = int(rd_out)
    return symbols_to_bits(codes), rd_out


@dataclasses.dataclass
class DecodeResult:
    """Outcome of decoding an aligned 8b10b symbol stream.

    Attributes
    ----------
    data:
        Decoded byte per symbol (garbage where ``violations``).
    k:
        Control-character flags.
    violations:
        Symbols whose 10-bit code is outside the code space.
    disparity_errors:
        Valid codes received at the wrong running disparity.
    rd:
        Exit running disparity (-1/+1).
    """

    data: np.ndarray
    k: np.ndarray
    violations: np.ndarray
    disparity_errors: np.ndarray
    rd: int

    @property
    def n_violations(self) -> int:
        return int(np.count_nonzero(self.violations))

    @property
    def n_disparity_errors(self) -> int:
        return int(np.count_nonzero(self.disparity_errors))

    @property
    def clean(self) -> bool:
        return self.n_violations == 0 and self.n_disparity_errors == 0


def decode_symbol(code: int, rd: int = -1):
    """Decode one 10-bit code; scalar convenience over the tables."""
    res = decode_stream(symbols_to_bits(np.array([code])), rd=rd)
    return (int(res.data[0]), bool(res.k[0]), bool(res.violations[0]),
            bool(res.disparity_errors[0]), res.rd)


def decode_stream(bits, rd: int = -1) -> DecodeResult:
    """Decode an *aligned* serial bit stream (1-D, multiple of 10).

    Running disparity is tracked through errors: an out-of-space
    code moves RD by its measured imbalance, so one corrupted symbol
    cannot poison the disparity check for the rest of the stream.
    """
    codes = bits_to_symbols(np.asarray(bits))
    if codes.ndim != 1:
        raise ConfigurationError("decode_stream expects a 1-D stream")
    rd0 = int(rd)
    _rd_index(rd0)
    if len(codes) == 0:
        empty = np.zeros(0, dtype=bool)
        return DecodeResult(data=np.zeros(0, dtype=np.uint8),
                            k=empty.copy(), violations=empty.copy(),
                            disparity_errors=empty.copy(), rd=rd0)
    valid = _DEC_VALID[codes]
    pops = _POP10[codes]
    # RD entering each symbol = polarity of the last imbalanced
    # symbol before it (balanced symbols carry RD through; the
    # balanced-alternating codes are balanced too, so this rule is
    # exact for valid streams and a best-effort clamp through
    # garbage).
    force = np.sign(pops - 5).astype(np.int64)
    idx = np.arange(len(codes))
    carrier = np.where(force != 0, idx, -1)
    last = np.maximum.accumulate(carrier)
    prev = np.concatenate(([-1], last[:-1]))
    entry_rd = np.where(prev >= 0, force[prev.clip(min=0)], rd0)
    entry_idx = (entry_rd > 0).astype(np.int64)
    disparity_errors = valid & ~_DEC_OK[entry_idx, codes]
    rd_final = int(force[last[-1]]) if len(codes) and last[-1] >= 0 \
        else rd0
    return DecodeResult(
        data=_DEC_DATA[codes],
        k=_DEC_K[codes],
        violations=~valid,
        disparity_errors=disparity_errors,
        rd=rd_final if rd_final != 0 else rd0,
    )


class Encoder8b10b:
    """Stateful encoder: carries running disparity across calls."""

    def __init__(self, rd: int = -1):
        _rd_index(rd)
        self.rd = int(rd)

    def encode(self, data, k=None) -> np.ndarray:
        """Encode bytes, advancing the held running disparity."""
        bits, self.rd = encode_stream(data, k=k, rd=self.rd)
        return bits

    def comma(self, n: int = 1) -> np.ndarray:
        """Emit *n* K.28.5 comma symbols."""
        return self.encode(np.full(n, COMMA, dtype=np.uint8),
                           k=np.ones(n, dtype=bool))


class Decoder8b10b:
    """Stateful decoder: carries running disparity across calls."""

    def __init__(self, rd: int = -1):
        _rd_index(rd)
        self.rd = int(rd)

    def decode(self, bits) -> DecodeResult:
        """Decode aligned bits, advancing the held disparity."""
        result = decode_stream(bits, rd=self.rd)
        self.rd = result.rd
        return result
