"""Priority scheduler: bounded slots, preemption, deadlines.

The test-floor master's dispatch brain. Jobs queue on a priority
heap (higher priority first, FIFO within a priority) and run on at
most *max_slots* worker threads via ``asyncio.to_thread``. All
scheduler state lives on the event-loop thread; worker threads
only touch their own :class:`~.jobs.Job` condition and hand
notifications back with ``call_soon_threadsafe``.

Preemption is cooperative: when a strictly higher-priority job is
queued and every slot is busy, the lowest-priority running job is
asked to pause. Its worker thread parks at the next
``should_abort`` checkpoint and acks back, which is the moment the
slot actually frees — the scheduler never yanks a thread
mid-measurement. The preempted job re-queues itself
(``auto_resume``) and continues, bit-identical, when a slot opens.

Deadlines are wall-clock from job start (pauses included): an
overrunning job gets an abort request and finishes with its
partials.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from typing import Dict, List, Optional

from repro import telemetry
from repro.errors import ConfigurationError
from repro.service.jobs import (
    ABORTED, COMPLETED, FAILED, PAUSED, PAUSING, PENDING, RUNNING,
    TERMINAL_STATES, Job, JobContext,
)
from repro.service.pubsub import PubSubHub
from repro.service.runner import JobRunner


class Scheduler:
    """Priority job scheduler over bounded worker slots.

    Parameters
    ----------
    runner:
        The :class:`~.runner.JobRunner` executing job kinds.
    hub:
        The :class:`~.pubsub.PubSubHub` receiving job events.
    max_slots:
        Concurrent worker threads.
    registry:
        Optional injected telemetry registry; defaults to the
        module-level active one.
    """

    def __init__(self, runner: JobRunner, hub: PubSubHub,
                 max_slots: int = 2, registry=None):
        if max_slots < 1:
            raise ConfigurationError(
                f"need >= 1 slot, got {max_slots}"
            )
        self.runner = runner
        self.hub = hub
        self.max_slots = int(max_slots)
        self.telemetry = registry
        self.jobs: Dict[int, Job] = {}
        self._heap: List[tuple] = []
        self._queued: set = set()
        self._running: set = set()
        self._ids = itertools.count(1)
        self._seq = itertools.count(1)
        self._tasks: Dict[int, asyncio.Task] = {}
        self._deadlines: Dict[int, asyncio.TimerHandle] = {}

    # -- client surface (event-loop thread) ------------------------------

    def submit(self, kind: str, params: Optional[dict] = None,
               priority: int = 0,
               deadline_s: Optional[float] = None) -> Job:
        """Queue a job; returns it (dispatch happens immediately
        when a slot is free)."""
        if kind not in self.runner.kinds:
            raise ConfigurationError(
                f"unknown job kind {kind!r}; "
                f"registered: {', '.join(self.runner.kinds)}"
            )
        job = Job(next(self._ids), kind, params or {},
                  priority=priority, deadline_s=deadline_s)
        self.jobs[job.job_id] = job
        self._enqueue(job)
        tel = telemetry.resolve(self.telemetry)
        tel.counter("service.jobs_submitted").inc()
        self._publish_state(job)
        self._pump()
        return job

    def get(self, job_id: int) -> Job:
        """The job, or :class:`ConfigurationError` if unknown."""
        try:
            return self.jobs[int(job_id)]
        except (KeyError, ValueError, TypeError):
            raise ConfigurationError(
                f"unknown job id {job_id!r}"
            ) from None

    def pause(self, job_id: int) -> dict:
        """Ask a running job to park at its next checkpoint."""
        job = self.get(job_id)
        if job.state not in (RUNNING, PAUSING, PAUSED):
            raise ConfigurationError(
                f"job {job.job_id} is {job.state}; only running "
                f"jobs pause"
            )
        if job.state == RUNNING:
            job.state = PAUSING
            job.auto_resume = False
            job.request_pause()
            self._publish_state(job)
            self._update_gauges()
        else:
            # Already pausing/paused: a client pause cancels any
            # pending auto-resume so the job stays parked.
            job.auto_resume = False
            self._drop_from_queue(job)
        return job.describe()

    def resume(self, job_id: int) -> dict:
        """Re-queue a paused job (it runs when a slot opens)."""
        job = self.get(job_id)
        if job.state == PAUSING:
            # The worker has not parked yet; just cancel the pause.
            job.request_resume()
            job.state = RUNNING
            self._publish_state(job)
            self._update_gauges()
        elif job.state == PAUSED:
            self._enqueue(job)
            self._pump()
        elif job.state not in (RUNNING,):
            raise ConfigurationError(
                f"job {job.job_id} is {job.state}; only paused "
                f"jobs resume"
            )
        return job.describe()

    def abort(self, job_id: int,
              reason: str = "abort requested") -> dict:
        """Stop a job: immediately if pending, at the next
        checkpoint if running, waking it if parked."""
        job = self.get(job_id)
        if job.state in TERMINAL_STATES:
            return job.describe()
        if job.state == PENDING:
            job.state = ABORTED
            job.abort_reason = reason
            job.finished_at = time.monotonic()
            self._drop_from_queue(job)
            telemetry.resolve(self.telemetry) \
                .counter("service.jobs_aborted").inc()
            self._publish_state(job)
            self._update_gauges()
            self._pump()
        else:
            self._drop_from_queue(job)
            job.request_abort(reason)
        return job.describe()

    def list_jobs(self) -> list:
        """Wire-ready summaries of every known job, by id."""
        return [self.jobs[jid].describe()
                for jid in sorted(self.jobs)]

    async def drain(self) -> None:
        """Wait until the queue is empty and every worker is done.

        Follows the cascade: a finishing job's slot admits the next
        queued one, which drain also waits out. A job parked by a
        client pause (no auto-resume) blocks drain until it is
        resumed or aborted — its worker thread is still alive.
        """
        while True:
            tasks = [t for t in self._tasks.values()
                     if not t.done()]
            if tasks:
                await asyncio.gather(*tasks,
                                     return_exceptions=True)
                continue
            self._pump()
            if not self._tasks:
                return

    def shutdown(self) -> None:
        """Abort everything still live (drain afterwards to wait)."""
        for job in list(self.jobs.values()):
            if job.state not in TERMINAL_STATES:
                self.abort(job.job_id, reason="server shutdown")

    # -- dispatch --------------------------------------------------------

    def _enqueue(self, job: Job) -> None:
        if job.job_id in self._queued:
            return
        heapq.heappush(self._heap,
                       (-job.priority, next(self._seq), job.job_id))
        self._queued.add(job.job_id)

    def _drop_from_queue(self, job: Job) -> None:
        # Lazy removal: the id leaves the queued set now; the heap
        # entry is skipped when popped.
        self._queued.discard(job.job_id)

    def _peek(self) -> Optional[Job]:
        """Highest-priority queued job, discarding stale entries."""
        while self._heap:
            _, _, jid = self._heap[0]
            job = self.jobs.get(jid)
            if jid in self._queued and job is not None \
                    and job.state in (PENDING, PAUSED):
                return job
            heapq.heappop(self._heap)
        return None

    def _pump(self) -> None:
        """Fill free slots from the queue, then consider
        preemption."""
        while len(self._running) < self.max_slots:
            job = self._peek()
            if job is None:
                break
            heapq.heappop(self._heap)
            self._queued.discard(job.job_id)
            if job.state == PENDING:
                self._start(job)
            else:  # PAUSED: grant the slot back and wake the worker
                self._running.add(job.job_id)
                job.state = RUNNING
                job.request_resume()
                telemetry.resolve(self.telemetry) \
                    .counter("service.jobs_resumed").inc()
                self._publish_state(job)
        self._maybe_preempt()
        self._update_gauges()

    def _maybe_preempt(self) -> None:
        top = self._peek()
        if top is None or len(self._running) < self.max_slots:
            return
        running = [self.jobs[jid] for jid in self._running]
        if any(j.state == PAUSING for j in running):
            return  # a slot is already on its way out
        candidates = [j for j in running if j.state == RUNNING]
        if not candidates:
            return
        victim = min(candidates,
                     key=lambda j: (j.priority, -j.job_id))
        if top.priority <= victim.priority:
            return
        victim.state = PAUSING
        victim.auto_resume = True
        victim.request_pause()
        telemetry.resolve(self.telemetry) \
            .counter("service.preemptions").inc()
        self._publish_state(victim)

    def _start(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        self._running.add(job.job_id)
        job.state = RUNNING
        job.started_at = time.monotonic()
        ctx = JobContext(
            job, loop, self.hub,
            on_paused=lambda: loop.call_soon_threadsafe(
                self._on_pause_ack, job),
        )
        if job.deadline_s is not None:
            self._deadlines[job.job_id] = loop.call_later(
                job.deadline_s, self._on_deadline, job)
        self._publish_state(job)
        self._tasks[job.job_id] = loop.create_task(
            self._run(job, ctx))

    def _on_pause_ack(self, job: Job) -> None:
        """The worker thread has actually parked: free its slot."""
        if job.state != PAUSING:
            return  # resumed or aborted before the ack landed
        job.state = PAUSED
        self._running.discard(job.job_id)
        telemetry.resolve(self.telemetry) \
            .counter("service.jobs_paused").inc()
        self._publish_state(job)
        if job.auto_resume:
            self._enqueue(job)
        self._pump()

    def _on_deadline(self, job: Job) -> None:
        self._deadlines.pop(job.job_id, None)
        if job.state not in TERMINAL_STATES:
            telemetry.resolve(self.telemetry) \
                .counter("service.deadline_aborts").inc()
            self.abort(job.job_id, reason="deadline exceeded")

    async def _run(self, job: Job, ctx: JobContext) -> None:
        tel = telemetry.resolve(self.telemetry)
        try:
            payload = await asyncio.to_thread(self.runner.run, job,
                                              ctx)
        except Exception as exc:
            job.state = FAILED
            job.error = f"{type(exc).__name__}: {exc}"
            tel.counter("service.jobs_failed").inc()
        else:
            if job.abort_requested:
                job.state = ABORTED
                if payload is not None:
                    job.partial = payload
                tel.counter("service.jobs_aborted").inc()
            else:
                job.state = COMPLETED
                job.result = payload
                tel.counter("service.jobs_completed").inc()
        finally:
            job.finished_at = time.monotonic()
            handle = self._deadlines.pop(job.job_id, None)
            if handle is not None:
                handle.cancel()
            self._running.discard(job.job_id)
            self._queued.discard(job.job_id)
            self._tasks.pop(job.job_id, None)
            self._publish_state(job)
            self._pump()

    # -- bookkeeping -----------------------------------------------------

    def _publish_state(self, job: Job) -> None:
        data = {"job_id": job.job_id, "kind": job.kind,
                "state": job.state, "priority": job.priority}
        if job.error is not None:
            data["error"] = job.error
        if job.abort_reason is not None:
            data["abort_reason"] = job.abort_reason
        self.hub.publish(f"job.{job.job_id}.state", data)

    def _update_gauges(self) -> None:
        tel = telemetry.resolve(self.telemetry)
        states = [j.state for j in self.jobs.values()]
        tel.gauge("service.jobs_queued").set(states.count(PENDING))
        tel.gauge("service.jobs_running").set(len(self._running))
        tel.gauge("service.jobs_paused").set(
            states.count(PAUSED) + states.count(PAUSING))
