"""Builtin job types and the worker-side dispatcher.

The bridge between the async master and the synchronous
measurement stack: the scheduler hands a :class:`~.jobs.Job` plus
its :class:`~.jobs.JobContext` to :meth:`JobRunner.run` on a worker
thread (``asyncio.to_thread``), and the job type wires the
context's ``should_abort``/``progress`` into the existing hooks of
:class:`~repro.host.shmoo.ShmooRunner`, the BER shard plan, and the
streaming :class:`~repro.eye.EyeAccumulator`.

Every builtin reuses the library's canonical computation — the
shmoo cell comes from :func:`repro.host.shmoo.strobe_rate_test`,
the BER shard math from the same
:class:`~repro.parallel.ShardPlan` + :func:`~repro._rng.spawn_seeds`
recipe as :meth:`TestSession.characterize_ber` — so a job submitted
over RPC returns bit-identical numbers to the direct library call
with the same parameters.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

import numpy as np

from repro import telemetry
from repro._rng import spawn_seeds
from repro.errors import ConfigurationError
from repro.parallel import Executor, ShardPlan
from repro.service.jobs import Job, JobContext


class JobRunner:
    """Dispatches jobs to registered job types on worker threads.

    Parameters
    ----------
    registry:
        Optional injected telemetry registry, forwarded to the
        testers and runners each job builds.
    executor:
        Optional :class:`repro.parallel.Executor` for job types
        that can shard (the shmoo sweep). Serial/thread backends
        only — the partial-streaming wrappers close over the job
        context and don't pickle. None (default) runs sweeps
        serially, which also gives the finest pause/abort
        granularity (every cell is a checkpoint).
    """

    def __init__(self, registry=None,
                 executor: Optional[Executor] = None):
        if executor is not None and executor.backend == "process":
            raise ConfigurationError(
                "the service runner streams partials through "
                "closures; use a serial or thread executor"
            )
        self.telemetry = registry
        self.executor = executor
        self._kinds: Dict[str, Callable[[JobContext, dict], Any]] = {
            "shmoo": self.run_shmoo_job,
            "ber": self.run_ber_job,
            "eye": self.run_eye_job,
            "wafer": self.run_wafer_job,
        }

    @property
    def kinds(self) -> tuple:
        """Registered job type names."""
        return tuple(sorted(self._kinds))

    def register(self, kind: str,
                 fn: Callable[[JobContext, dict], Any]) -> None:
        """Add (or replace) a job type; *fn* gets ``(ctx, params)``
        and returns a JSON-ready payload."""
        self._kinds[str(kind)] = fn

    def run(self, job: Job, ctx: JobContext) -> Any:
        """Execute *job* (worker thread); returns its payload."""
        try:
            fn = self._kinds[job.kind]
        except KeyError:
            raise ConfigurationError(
                f"unknown job kind {job.kind!r}; "
                f"registered: {', '.join(self.kinds)}"
            ) from None
        tel = telemetry.resolve(self.telemetry)
        with tel.span(f"service.job.{job.kind}"):
            return fn(ctx, job.params)

    # -- builtin job types -----------------------------------------------

    def run_shmoo_job(self, ctx: JobContext, params: dict) -> dict:
        """Strobe-position vs rate shmoo on a fresh mini-tester.

        Params: ``rates`` and ``strobe_fracs`` (required axes),
        ``n_bits`` (300), ``seed`` (1), ``adaptive`` (False),
        ``coarse_step`` (8). Streams one partial per evaluated cell
        and returns :meth:`ShmooResult.to_dict`, bit-identical to
        :func:`~repro.host.shmoo.minitester_strobe_rate_shmoo` with
        the same arguments.
        """
        from repro.core.minitester import MiniTester
        from repro.host.shmoo import ShmooRunner, strobe_rate_test

        rates = [float(x) for x in params["rates"]]
        fracs = [float(y) for y in params["strobe_fracs"]]
        n_bits = int(params.get("n_bits", 300))
        seed = int(params.get("seed", 1))
        tester = MiniTester(registry=self.telemetry)
        base = strobe_rate_test(tester, n_bits=n_bits, seed=seed)
        total = len(rates) * len(fracs)
        done = {"cells": 0}

        def test(x: float, y: float) -> bool:
            ok = base(x, y)
            done["cells"] += 1
            ctx.partial({"cells_done": done["cells"],
                         "cells_total": total,
                         "cell": {"x": x, "y": y, "ok": bool(ok)}})
            return ok

        runner = ShmooRunner(test, x_name="rate (Gbps)",
                             y_name="strobe (UI)",
                             registry=self.telemetry)
        if params.get("adaptive", False):
            result = runner.run_adaptive(
                rates, fracs,
                coarse_step=int(params.get("coarse_step", 8)),
                progress=ctx.progress,
                should_abort=ctx.should_abort,
                executor=self.executor,
            )
        else:
            result = runner.run(rates, fracs,
                                progress=ctx.progress,
                                should_abort=ctx.should_abort,
                                executor=self.executor)
        return result.to_dict()

    def run_ber_job(self, ctx: JobContext, params: dict) -> dict:
        """Sharded BER characterization on a fresh mini-tester.

        Params: ``total_bits`` (20000), ``n_shards`` (4), ``seed``
        (1), ``rate_gbps`` (tester default). Shard partitioning and
        per-shard seeding follow
        :meth:`TestSession.characterize_ber` exactly — identical
        totals to the direct call. Streams cumulative tallies after
        every shard; each shard boundary is a pause/abort
        checkpoint.
        """
        from repro.core.minitester import MiniTester
        from repro.host.session import BERCharacterization

        total_bits = int(params.get("total_bits", 20_000))
        n_shards = int(params.get("n_shards", 4))
        seed = int(params.get("seed", 1))
        if total_bits < 1:
            raise ConfigurationError("need a positive bit budget")
        tester = MiniTester(registry=self.telemetry)
        rate = float(params.get("rate_gbps", tester.rate_gbps))
        plan = ShardPlan.for_range(total_bits, n_shards)
        ranges = [shard.items[0] for shard in plan.shards]
        seeds = spawn_seeds(len(ranges), root=seed)
        pairs = []
        for i, ((_start, count), s) in enumerate(zip(ranges, seeds)):
            if ctx.should_abort():
                break
            ber = tester.run_loopback(n_bits=int(count), seed=int(s),
                                      rate_gbps=rate).ber
            pairs.append((ber.n_bits, ber.n_errors))
            ctx.partial({"shards_done": len(pairs),
                         "n_shards": len(ranges),
                         "bits": sum(b for b, _ in pairs),
                         "errors": sum(e for _, e in pairs)})
            ctx.progress(i + 1, len(ranges))
        result = BERCharacterization(
            total_bits=sum(b for b, _ in pairs),
            total_errors=sum(e for _, e in pairs),
            shard_errors=tuple(e for _, e in pairs),
            rate_gbps=rate,
        )
        out = result.to_dict()
        out["complete"] = len(pairs) == len(ranges)
        return out

    def run_eye_job(self, ctx: JobContext, params: dict) -> dict:
        """Streaming eye capture through the accumulator.

        Params: ``n_bits`` (1200), ``rate_gbps`` (2.5), ``seed``
        (2), ``chunk_samples`` (2048), ``n_time_bins``/
        ``n_volt_bins`` (32). Folds the PRBS record chunk by chunk;
        every chunk boundary is a checkpoint and publishes a
        grid-free :meth:`EyeAccumulator.snapshot`. Returns the full
        snapshot (grid included) — chunking never changes it.
        """
        from repro.eye import EyeAccumulator
        from repro.signal.nrz import bits_to_waveform
        from repro.signal.prbs import prbs_bits
        from repro.signal.waveform import Waveform

        n_bits = int(params.get("n_bits", 1200))
        rate = float(params.get("rate_gbps", 2.5))
        seed = int(params.get("seed", 2))
        chunk = int(params.get("chunk_samples", 2048))
        if chunk < 1:
            raise ConfigurationError(
                f"chunk_samples must be >= 1, got {chunk}"
            )
        bits = prbs_bits(7, n_bits)
        wf = bits_to_waveform(bits, rate, v_low=-0.4, v_high=0.4,
                              t20_80=72.0,
                              rng=np.random.default_rng(seed))
        acc = EyeAccumulator(
            rate, v_range=(-0.45, 0.45), threshold=0.0,
            n_time_bins=int(params.get("n_time_bins", 32)),
            n_volt_bins=int(params.get("n_volt_bins", 32)),
            registry=self.telemetry,
        )
        n = len(wf)
        for i in range(0, n, chunk):
            if ctx.should_abort():
                break
            acc.update(Waveform(wf.values[i:i + chunk].copy(),
                                dt=wf.dt, t0=wf.t0 + i * wf.dt))
            ctx.partial(acc.snapshot(include_grid=False))
            ctx.progress(min(i + chunk, n), n)
        out = acc.snapshot(include_grid=True)
        out["complete"] = not ctx.job.abort_requested
        return out

    def run_wafer_job(self, ctx: JobContext, params: dict) -> dict:
        """Multi-site wafer sort.

        Params: ``diameter_mm`` (100), ``die_mm`` (10),
        ``n_sites`` (4), ``test_time_s`` (0.5), ``seed`` (0). The
        sort itself is one uninterruptible unit (the wafer stack
        has no mid-sort hooks), so the only checkpoint is before
        the first touchdown.
        """
        from repro.wafer.inkmap import summarize
        from repro.wafer.map import WaferMap
        from repro.wafer.probe import ProbeCard
        from repro.wafer.scheduler import MultiSiteScheduler

        if ctx.should_abort():
            return {"dies_tested": 0, "touchdowns": 0,
                    "total_time_s": 0.0, "complete": False}
        die = float(params.get("die_mm", 10.0))
        wafer = WaferMap(
            diameter_mm=float(params.get("diameter_mm", 100.0)),
            die_width_mm=die, die_height_mm=die,
        )
        card = ProbeCard(n_sites=int(params.get("n_sites", 4)))
        scheduler = MultiSiteScheduler(
            card, test_time_s=float(params.get("test_time_s", 0.5)),
            registry=self.telemetry,
        )
        ctx.progress(0, 1)
        run = scheduler.sort_wafer(wafer,
                                   seed=int(params.get("seed", 0)))
        summary = summarize(wafer)
        ctx.progress(1, 1)
        return {
            "dies_tested": int(run.dies_tested),
            "touchdowns": int(run.touchdowns),
            "total_time_s": float(run.total_time_s),
            "bins": {"total": summary.total,
                     "passed": summary.passed,
                     "failed": summary.failed,
                     "skipped": summary.skipped,
                     "untested": summary.untested},
            "complete": True,
        }
