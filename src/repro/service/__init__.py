"""repro.service — the asynchronous test-floor master.

The paper's production picture is many testers and many engineers
sharing one floor. This subsystem is that coordination layer for
the simulation stack: an asyncio RPC server
(:class:`~repro.service.rpc.RPCServer`, newline-delimited JSON), a
priority scheduler with bounded worker slots, cooperative
preemption, and per-job deadlines
(:class:`~repro.service.scheduler.Scheduler`), builtin
shmoo/BER/eye/wafer job types that reuse the library's canonical
computations bit-for-bit (:class:`~repro.service.runner.JobRunner`),
and a pub/sub hub streaming partial results to subscribers with
bounded, lossy-oldest queues (:class:`~repro.service.pubsub.PubSubHub`).

Usage::

    from repro.service import serve_in_thread

    with serve_in_thread(max_slots=2) as handle:
        with handle.client() as cli:
            cli.subscribe("job.*")
            job = cli.submit(kind="ber",
                             params={"total_bits": 4000},
                             priority=1)
            done = cli.result(job_id=job["job_id"])

Everything is stdlib (asyncio + threading + json) — no new
dependencies — and jobs run the same measurement code a direct
caller would, so results match direct library calls exactly.
"""

from repro.service.jobs import (
    ABORTED, COMPLETED, FAILED, PAUSED, PAUSING, PENDING, RUNNING,
    TERMINAL_STATES, Job, JobContext,
)
from repro.service.master import (
    MasterHandle, TestFloorMaster, serve_in_thread,
)
from repro.service.pubsub import PubSubHub, Subscription, topic_matches
from repro.service.rpc import Client, RemoteError, RPCServer
from repro.service.runner import JobRunner
from repro.service.scheduler import Scheduler
from repro.service.wire import decode_line, encode_line

__all__ = [
    "PENDING", "RUNNING", "PAUSING", "PAUSED", "COMPLETED",
    "FAILED", "ABORTED", "TERMINAL_STATES",
    "Job", "JobContext", "JobRunner", "Scheduler",
    "PubSubHub", "Subscription", "topic_matches",
    "RPCServer", "Client", "RemoteError",
    "TestFloorMaster", "MasterHandle", "serve_in_thread",
    "encode_line", "decode_line",
]
