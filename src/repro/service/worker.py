"""Remote executor worker: the process the pool master dials up.

Launch one per core (the master's ``spawn=True`` does this for
local workers) or point it at a master on another host::

    REPRO_POOL_SECRET=... python -m repro.service.worker \\
        --connect 10.0.0.5:7920 --name rack3-w0

The secret must match the master pool's
(:attr:`~repro.parallel.pool.WorkerPool.secret`); the handshake
authenticates both directions with HMAC before either side accepts
a pickled frame. The wire is trusted-network-only — authenticated,
not encrypted.

The worker connects, handshakes (protocol version checked both
ways), then loops: receive a ``job`` frame (the pickled work
function plus flags), receive ``chunk`` frames, execute each through
the universal :func:`repro.parallel.workers.run_chunk` frame — the
same code path as every other backend, which is what keeps remote
results bit-identical — and send the pickled results home, with a
per-chunk telemetry snapshot when the master asked for one.

A dedicated reader thread answers heartbeat pings and routes cache
replies, so the main thread can crunch a chunk for minutes without
the master declaring the process dead. When the job enables the
shared cache tier, chunks run under an activated
:class:`repro.cache.remote.RemoteCacheTier` that consults the
master's artifact store before computing and publishes what it had
to compute.
"""

from __future__ import annotations

import argparse
import os
import queue
import socket
import sys
import threading
import traceback
from typing import Any, Dict, Optional, Tuple

from repro import cache as artifact_cache
from repro import telemetry
from repro.cache.remote import RemoteCacheTier
from repro.errors import ProtocolError, ReproError
from repro.parallel import transport
from repro.parallel.workers import run_chunk

#: Jobs retained per worker; in-order TCP guarantees a chunk never
#: precedes its job frame, so only aborted-and-superseded jobs age
#: out.
_MAX_JOBS = 8

#: Seconds a cache read-through waits for the master before
#: degrading to a local miss.
CACHE_FETCH_TIMEOUT_S = 30.0


class _Job:
    """One run's setup: the work function and its flags."""

    __slots__ = ("fn", "collect", "cache")

    def __init__(self, fn, collect: bool, cache: bool):
        self.fn = fn
        self.collect = collect
        self.cache = cache


class WorkerSession:
    """One worker's connection to a pool master.

    Parameters
    ----------
    host, port:
        The master's :attr:`~repro.parallel.pool.WorkerPool.address`.
    name:
        Worker name; must be unique across the pool (it keys the
        master's per-worker telemetry labels).
    secret:
        Shared HMAC handshake secret; defaults to the
        ``REPRO_POOL_SECRET`` environment variable (which the
        master exports to workers it spawns itself). Must match the
        master's :attr:`~repro.parallel.pool.WorkerPool.secret` or
        the handshake is rejected.
    """

    def __init__(self, host: str, port: int, name: str = "worker",
                 secret: Optional[str] = None):
        sock = socket.create_connection((host, int(port)))
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.stream = transport.MessageStream(sock)
        self.name = name
        self.secret = transport.resolve_secret(secret)
        self._work: "queue.Queue" = queue.Queue()
        self._cache_replies: Dict[int, "queue.Queue"] = {}
        self._cache_req = iter(range(1, 1 << 62)).__next__
        self._jobs: "Dict[int, _Job]" = {}
        self._tier: Optional[RemoteCacheTier] = None
        self._closed = False

    # -- handshake ---------------------------------------------------------

    def handshake(self) -> dict:
        """Answer the challenge, send hello, verify the welcome.

        Authentication is mutual: the hello proves this worker
        holds the pool secret (HMAC over the master's challenge
        nonce) and the welcome must prove the master does too
        (HMAC over our nonce) before any pickled frame from it is
        accepted. Raises on reject, mismatch, or failed auth.
        """
        self.stream.settimeout(transport.HANDSHAKE_TIMEOUT_S)
        challenge = self.stream.recv()
        if challenge is None \
                or challenge.get("type") != "challenge":
            raise ProtocolError(
                f"expected a challenge frame, got "
                f"{challenge and challenge.get('type')!r} (master "
                f"too old, or not a repro pool?)"
            )
        nonce = str(challenge.get("nonce", ""))
        my_nonce = transport.new_nonce()
        self.stream.send(transport.hello_frame(
            self.name, os.getpid(),
            auth=transport.auth_digest(self.secret, nonce, "worker"),
            nonce=my_nonce))
        reply = self.stream.recv()
        self.stream.settimeout(None)
        if reply is None:
            raise ProtocolError("master closed during handshake")
        if reply.get("type") == "reject":
            raise ProtocolError(
                f"master rejected worker {self.name!r}: "
                f"{reply.get('reason', 'no reason given')}"
            )
        if reply.get("type") != "welcome" \
                or reply.get("protocol") != transport.PROTOCOL_VERSION:
            raise ProtocolError(
                f"bad welcome frame: {reply!r}"
            )
        if not transport.check_digest(self.secret, my_nonce,
                                      "master", reply.get("auth")):
            raise ProtocolError(
                "master failed authentication: welcome digest does "
                "not match our pool secret"
            )
        return reply

    # -- reader thread -----------------------------------------------------

    def _reader_loop(self) -> None:
        """Split incoming frames: pings answered here, cache
        replies routed to the waiting compute, work queued."""
        try:
            while True:
                msg = self.stream.recv()
                if msg is None:
                    break
                kind = msg.get("type")
                if kind == "ping":
                    self.stream.send({"type": "pong",
                                      "seq": msg.get("seq")})
                elif kind in ("cache_hit", "cache_miss"):
                    waiter = self._cache_replies.pop(
                        msg.get("req"), None)
                    if waiter is not None:
                        waiter.put(msg)
                else:
                    self._work.put(msg)
        except (ConnectionError, ProtocolError):
            pass
        self._work.put(None)  # wake the main loop for exit
        for waiter in list(self._cache_replies.values()):
            waiter.put(None)

    # -- shared cache transport (worker side) ------------------------------

    def _cache_fetch(self, key: str) -> Tuple[bool, Any]:
        """One read-through round trip to the master's cache."""
        req = self._cache_req()
        waiter: "queue.Queue" = queue.Queue()
        self._cache_replies[req] = waiter
        try:
            self.stream.send({"type": "cache_get", "req": req,
                              "key": key})
            reply = waiter.get(timeout=CACHE_FETCH_TIMEOUT_S)
        except (ConnectionError, queue.Empty):
            self._cache_replies.pop(req, None)
            return False, None
        if not reply or reply.get("type") != "cache_hit":
            return False, None
        try:
            return True, transport.unpack_payload(reply["payload"])
        except Exception:
            return False, None

    def _cache_publish(self, key: str, value: Any) -> None:
        """Fire-and-forget a computed artifact to the master."""
        try:
            self.stream.send({
                "type": "cache_put", "key": key,
                "payload": transport.pack_payload(value),
            })
        except Exception:
            pass  # a lost publish only costs a future miss

    def _cache_tier(self) -> RemoteCacheTier:
        if self._tier is None:
            self._tier = RemoteCacheTier(fetch=self._cache_fetch,
                                         publish=self._cache_publish)
        return self._tier

    # -- main loop ---------------------------------------------------------

    def serve(self) -> None:
        """Process job/chunk/close frames until the master hangs up."""
        reader = threading.Thread(target=self._reader_loop,
                                  name="repro-worker-reader",
                                  daemon=True)
        reader.start()
        while True:
            msg = self._work.get()
            if msg is None or msg.get("type") == "close":
                return
            kind = msg.get("type")
            if kind == "job":
                self._on_job(msg)
            elif kind == "chunk":
                self._on_chunk(msg)
            # Unknown frame types are ignored (forward compat).

    def _on_job(self, msg: dict) -> None:
        job_id = msg.get("job")
        self._jobs[job_id] = _Job(
            fn=transport.unpack_payload(msg["fn"]),
            collect=bool(msg.get("collect")),
            cache=bool(msg.get("cache")),
        )
        while len(self._jobs) > _MAX_JOBS:
            self._jobs.pop(next(iter(self._jobs)))

    def _on_chunk(self, msg: dict) -> None:
        job_id = msg.get("job")
        cid = msg.get("chunk")
        job = self._jobs.get(job_id)
        reply = {"type": "result", "job": job_id, "chunk": cid}
        if job is None:
            reply.update(ok=False, error={
                "type": "ProtocolError",
                "message": f"chunk for unknown job {job_id!r}",
                "traceback": "",
            })
            self._send_result(reply)
            return
        try:
            entries = transport.unpack_payload(msg["entries"])
            if job.cache:
                with artifact_cache.use_cache(self._cache_tier()):
                    results, snap = run_chunk(job.fn, entries,
                                              job.collect)
            else:
                results, snap = run_chunk(job.fn, entries,
                                          job.collect)
        except Exception as exc:
            reply.update(ok=False, error={
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            })
        else:
            reply.update(ok=True,
                         payload=transport.pack_payload(results),
                         telemetry=snap)
        self._send_result(reply)

    def _send_result(self, reply: dict) -> None:
        try:
            self.stream.send(reply)
        except ProtocolError as exc:
            # The result itself is too big for one wire frame; an
            # actionable structured failure beats killing the
            # connection (which would requeue the chunk forever).
            fallback = {
                "type": "result", "job": reply.get("job"),
                "chunk": reply.get("chunk"), "ok": False,
                "error": {
                    "type": "ConfigurationError",
                    "message": (
                        f"chunk result does not fit the wire "
                        f"({exc}); reduce Executor(chunk_size=...) "
                        f"or return smaller per-item results"),
                    "traceback": "",
                },
            }
            try:
                self.stream.send(fallback)
            except (ConnectionError, ProtocolError):
                pass
        except ConnectionError:
            pass  # master gone; serve() exits on the queue sentinel

    def close(self) -> None:
        """Drop the connection."""
        self._closed = True
        self.stream.close()


def run_worker(host: str, port: int, name: str = "worker",
               secret: Optional[str] = None) -> int:
    """Connect, handshake, serve until the master disconnects.

    Returns a process exit code (0 on an orderly close, 2 on a
    refused handshake) — the body of ``python -m
    repro.service.worker``.
    """
    session = WorkerSession(host, port, name=name, secret=secret)
    try:
        welcome = session.handshake()
    except (ProtocolError, ReproError) as exc:
        print(f"worker {name}: {exc}", file=sys.stderr)
        session.close()
        return 2
    # The worker records into a throwaway registry by default; the
    # master's per-chunk collect flag decides what rides home.
    telemetry.disable()
    del welcome
    try:
        session.serve()
    finally:
        session.close()
    return 0


def main(argv=None) -> int:
    """CLI entry point: ``python -m repro.service.worker``."""
    parser = argparse.ArgumentParser(
        description="repro remote executor worker")
    parser.add_argument("--connect", required=True,
                        metavar="HOST:PORT",
                        help="pool master address "
                             "(WorkerPool.address)")
    parser.add_argument("--name", default=f"worker-{os.getpid()}",
                        help="unique worker name within the pool")
    parser.add_argument("--secret", default=None,
                        help="shared handshake secret (defaults to "
                             f"${transport.SECRET_ENV}); must match "
                             "the master's WorkerPool secret")
    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        parser.error(f"--connect wants HOST:PORT, got "
                     f"{args.connect!r}")
    return run_worker(host, int(port), name=args.name,
                      secret=args.secret)


if __name__ == "__main__":
    sys.exit(main())
