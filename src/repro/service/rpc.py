"""NDJSON RPC over asyncio streams, plus a small sync client.

The control plane of the test-floor master. Each TCP connection
carries newline-delimited JSON both ways: requests in
(``{"id", "method", "params"}``), responses out (``{"id", "ok",
"result" | "error"}``), and — once a connection subscribes —
server-pushed event lines (``{"event", "seq", "data"}``)
interleaved with responses. Every request is dispatched as its own
task, so one connection can have many calls in flight and a slow
job submission never blocks a status poll.

Handler exceptions never tear down the connection: they come back
as structured errors (type, message, traceback) which the sync
:class:`Client` re-raises as :class:`RemoteError`.

The client is deliberately synchronous and tiny — a background
reader thread demultiplexes responses (by id) from events (by the
``event`` key) so tests, examples, and shop-floor scripts don't
need an event loop of their own.
"""

from __future__ import annotations

import asyncio
import itertools
import queue
import socket
import threading
import traceback
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import telemetry
from repro.errors import ProtocolError, ReproError
from repro.service import wire
from repro.service.pubsub import PubSubHub


class RemoteError(ReproError):
    """A server-side failure, re-raised client-side.

    Attributes
    ----------
    remote_type:
        Exception class name on the server.
    remote_traceback:
        Server-side traceback text (may be empty).
    """

    def __init__(self, remote_type: str, message: str,
                 remote_traceback: str = ""):
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type
        self.remote_traceback = remote_traceback


class _Connection:
    """Per-client server state: writer lock, subscription, tasks."""

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.lock = asyncio.Lock()
        self.subscription = None
        self.pump_task: Optional[asyncio.Task] = None
        self.tasks: set = set()

    async def send(self, obj: Any) -> None:
        """Write one wire line (serialized per connection)."""
        async with self.lock:
            self.writer.write(wire.encode_line(obj))
            await self.writer.drain()


class RPCServer:
    """Serves a method table over NDJSON/TCP.

    Parameters
    ----------
    methods:
        ``name -> callable(**params)`` table; callables may be
        plain functions or coroutines and must return JSON-ready
        payloads. A ``subscribe`` method is provided by the server
        itself (it needs the connection).
    hub:
        The :class:`~.pubsub.PubSubHub` events are streamed from.
    host, port:
        Bind address; port 0 picks a free port (see
        :attr:`address` after :meth:`start`).
    registry:
        Optional injected telemetry registry.
    """

    def __init__(self, methods: Dict[str, Callable], hub: PubSubHub,
                 host: str = "127.0.0.1", port: int = 0,
                 registry=None):
        self._methods = dict(methods)
        self.hub = hub
        self.host = host
        self.port = int(port)
        self.telemetry = registry
        self.address: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._conns: set = set()

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._on_client, self.host, self.port,
            limit=wire.MAX_LINE_BYTES,
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self.address

    async def stop(self) -> None:
        """Stop accepting and drop every live connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._conns):
            await self._close_conn(conn)

    async def _close_conn(self, conn: _Connection) -> None:
        self._conns.discard(conn)
        if conn.subscription is not None:
            self.hub.unsubscribe(conn.subscription)
            conn.subscription = None
        if conn.pump_task is not None:
            conn.pump_task.cancel()
        for task in list(conn.tasks):
            task.cancel()
        try:
            conn.writer.close()
            await conn.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def _on_client(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        conn = _Connection(writer)
        self._conns.add(conn)
        tel = telemetry.resolve(self.telemetry)
        tel.counter("service.rpc_connections").inc()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    req = wire.decode_line(line)
                except ProtocolError as exc:
                    tel.counter("service.rpc_errors").inc()
                    await conn.send({"id": None, "ok": False,
                                     "error": wire.error_payload(exc)})
                    continue
                task = asyncio.ensure_future(
                    self._dispatch(conn, req))
                conn.tasks.add(task)
                task.add_done_callback(conn.tasks.discard)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            await self._close_conn(conn)

    async def _dispatch(self, conn: _Connection, req: dict) -> None:
        rid = req.get("id")
        method = req.get("method")
        params = req.get("params") or {}
        tel = telemetry.resolve(self.telemetry)
        tel.counter("service.rpc_requests").inc()
        try:
            if not isinstance(params, dict):
                raise ProtocolError("params must be an object")
            if method == "subscribe":
                result = self._subscribe(conn, **params)
            elif method == "methods":
                result = sorted(self._methods) + ["subscribe",
                                                  "methods"]
            else:
                try:
                    handler = self._methods[method]
                except KeyError:
                    raise ProtocolError(
                        f"unknown method {method!r}"
                    ) from None
                result = handler(**params)
                if asyncio.iscoroutine(result):
                    result = await result
            await conn.send({"id": rid, "ok": True,
                             "result": result})
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            tel.counter("service.rpc_errors").inc()
            try:
                await conn.send({
                    "id": rid, "ok": False,
                    "error": wire.error_payload(
                        exc, traceback.format_exc()),
                })
            except (ConnectionError, OSError):
                pass

    def _subscribe(self, conn: _Connection,
                   patterns=None, maxsize=None) -> dict:
        """Attach (or retarget) this connection's event stream."""
        patterns = list(patterns or ["*"])
        if conn.subscription is not None:
            self.hub.unsubscribe(conn.subscription)
            conn.pump_task.cancel()
        conn.subscription = self.hub.subscribe(patterns,
                                               maxsize=maxsize)
        conn.pump_task = asyncio.ensure_future(self._pump(conn))
        return {"patterns": patterns}

    async def _pump(self, conn: _Connection) -> None:
        """Forward one subscription's events onto the wire."""
        sub = conn.subscription
        try:
            while True:
                event = await sub.get()
                if event is None:
                    break
                await conn.send(event)
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass


class Client:
    """Blocking NDJSON RPC client with an event inbox.

    A daemon reader thread splits incoming lines into responses
    (matched to waiting calls by ``id``) and events (queued for
    :meth:`next_event`). Any server method is callable as an
    attribute: ``client.submit(kind="ber", priority=2)``.

    Use as a context manager, or :meth:`close` explicitly.
    """

    def __init__(self, host: str, port: int,
                 timeout_s: float = 30.0):
        self.timeout_s = float(timeout_s)
        self._sock = socket.create_connection((host, int(port)))
        self._file = self._sock.makefile("rb")
        self._wlock = threading.Lock()
        self._ids = itertools.count(1)
        self._pending: Dict[int, "queue.Queue"] = {}
        self._events: "queue.Queue" = queue.Queue()
        self._closed = False
        self._reader = threading.Thread(target=self._read_loop,
                                        daemon=True)
        self._reader.start()

    def _read_loop(self) -> None:
        try:
            for line in self._file:
                obj = wire.decode_line(line)
                if "event" in obj:
                    self._events.put(obj)
                    continue
                waiter = self._pending.pop(obj.get("id"), None)
                if waiter is not None:
                    waiter.put(obj)
        except (OSError, ValueError, ProtocolError):
            pass
        finally:
            # Wake every waiter so calls fail fast on disconnect.
            for waiter in list(self._pending.values()):
                waiter.put(None)

    def call(self, method: str, **params) -> Any:
        """One RPC round-trip; raises :class:`RemoteError` on a
        server-side failure."""
        if self._closed:
            raise ProtocolError("client is closed")
        rid = next(self._ids)
        waiter: "queue.Queue" = queue.Queue()
        self._pending[rid] = waiter
        payload = wire.encode_line({"id": rid, "method": method,
                                    "params": params})
        with self._wlock:
            self._sock.sendall(payload)
        try:
            reply = waiter.get(timeout=self.timeout_s)
        except queue.Empty:
            self._pending.pop(rid, None)
            raise ProtocolError(
                f"no reply to {method!r} within {self.timeout_s}s"
            ) from None
        if reply is None:
            raise ProtocolError("connection closed mid-call")
        if reply.get("ok"):
            return reply.get("result")
        err = reply.get("error") or {}
        raise RemoteError(err.get("type", "Exception"),
                          err.get("message", "remote failure"),
                          err.get("traceback", ""))

    def subscribe(self, *patterns: str,
                  maxsize: Optional[int] = None) -> dict:
        """Start streaming events matching *patterns* (default
        everything)."""
        return self.call("subscribe",
                         patterns=list(patterns) or ["*"],
                         maxsize=maxsize)

    def next_event(self,
                   timeout_s: Optional[float] = None
                   ) -> Optional[dict]:
        """The next queued event, or None after *timeout_s*."""
        try:
            return self._events.get(
                timeout=self.timeout_s if timeout_s is None
                else timeout_s)
        except queue.Empty:
            return None

    def drain_events(self) -> List[dict]:
        """Every event received so far, without blocking."""
        out = []
        while True:
            try:
                out.append(self._events.get_nowait())
            except queue.Empty:
                return out

    def close(self) -> None:
        """Shut the connection down; outstanding calls fail."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __getattr__(self, name: str) -> Callable:
        if name.startswith("_"):
            raise AttributeError(name)

        def proxy(**params):
            return self.call(name, **params)

        proxy.__name__ = name
        proxy.__doc__ = f"RPC proxy for the {name!r} server method."
        return proxy
