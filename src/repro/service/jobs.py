"""Job model for the test-floor master.

A job is one queued unit of tester work (a shmoo, a BER
characterization, an eye capture, a wafer sort) with a priority, an
optional deadline, and a lifecycle::

    pending -> running -> completed | failed | aborted
                  ^  \\
                  |   v
               paused <- pausing

Control is cooperative and rides the measurement stack's existing
``should_abort`` seam: the worker thread polls
:meth:`JobContext.should_abort` between cells/shards/chunks, and
that checkpoint is where an abort is observed and where a pause
physically parks the thread (blocking on a condition until resume
or abort). Because the pause happens *inside* the callback — the
measurement code just sees ``should_abort() -> False`` once the
job resumes — a paused-then-resumed run produces bit-identical
results to an uninterrupted one.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError

#: Lifecycle states (plain strings so they serialize as-is).
PENDING = "pending"
RUNNING = "running"
PAUSING = "pausing"
PAUSED = "paused"
COMPLETED = "completed"
FAILED = "failed"
ABORTED = "aborted"

#: States a job never leaves.
TERMINAL_STATES = frozenset({COMPLETED, FAILED, ABORTED})


class Job:
    """One unit of queued tester work and its control plumbing.

    Parameters
    ----------
    job_id:
        Scheduler-assigned identifier.
    kind:
        Registered job type (``"shmoo"``, ``"ber"``, ``"eye"``,
        ``"wafer"``, or anything the runner knows).
    params:
        JSON-ready keyword arguments for the job type.
    priority:
        Higher runs first; ties run in submission order.
    deadline_s:
        Optional wall-clock budget from the moment the job starts
        running; overruns are aborted.
    """

    def __init__(self, job_id: int, kind: str, params: Dict[str, Any],
                 priority: int = 0,
                 deadline_s: Optional[float] = None):
        if deadline_s is not None and deadline_s <= 0.0:
            raise ConfigurationError(
                f"deadline must be positive, got {deadline_s}"
            )
        self.job_id = int(job_id)
        self.kind = str(kind)
        self.params = dict(params)
        self.priority = int(priority)
        self.deadline_s = deadline_s
        self.state = PENDING
        self.result: Any = None
        self.partial: Any = None
        self.error: Optional[str] = None
        self.abort_reason: Optional[str] = None
        self.submitted_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Set by the scheduler when a preemption (not a client
        #: pause) parked the job, so it re-queues itself.
        self.auto_resume = False
        # Worker-side control flags, guarded by the condition. The
        # worker thread reads them inside should_abort; the event
        # loop writes them via request_*.
        self._cond = threading.Condition()
        self._abort_requested = False
        self._pause_requested = False

    # -- control requests (called from the event-loop thread) -----------

    def request_abort(self, reason: str = "abort requested") -> None:
        """Ask the worker to stop at its next checkpoint (also
        wakes a worker parked in pause)."""
        with self._cond:
            if self.abort_reason is None:
                self.abort_reason = reason
            self._abort_requested = True
            self._pause_requested = False
            self._cond.notify_all()

    def request_pause(self) -> None:
        """Ask the worker to park at its next checkpoint."""
        with self._cond:
            if not self._abort_requested:
                self._pause_requested = True

    def request_resume(self) -> None:
        """Release a parked worker."""
        with self._cond:
            self._pause_requested = False
            self._cond.notify_all()

    @property
    def abort_requested(self) -> bool:
        """True once an abort has been asked for."""
        with self._cond:
            return self._abort_requested

    # -- worker-side checkpoint (called from the worker thread) ----------

    def checkpoint(self,
                   on_paused: Optional[Callable[[], None]] = None,
                   on_resumed: Optional[Callable[[], None]] = None
                   ) -> bool:
        """The worker's ``should_abort`` body.

        Returns True to stop the measurement. A pending pause
        request parks the calling thread here: *on_paused* fires
        (threadsafe scheduler hand-off — this is what frees the
        slot), the thread waits on the condition, and on release
        *on_resumed* fires before returning False so the
        measurement continues exactly where it left off.
        """
        with self._cond:
            if self._abort_requested:
                return True
            if not self._pause_requested:
                return False
            if on_paused is not None:
                on_paused()
            while self._pause_requested and not self._abort_requested:
                self._cond.wait()
            if self._abort_requested:
                return True
        if on_resumed is not None:
            on_resumed()
        return False

    # -- wire form -------------------------------------------------------

    def describe(self) -> dict:
        """Wire-ready status summary."""
        out = {
            "job_id": self.job_id,
            "kind": self.kind,
            "priority": self.priority,
            "state": self.state,
            "deadline_s": self.deadline_s,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.abort_reason is not None:
            out["abort_reason"] = self.abort_reason
        if self.state in TERMINAL_STATES:
            out["result"] = self.result
            if self.partial is not None and self.result is None:
                out["partial"] = self.partial
        return out

    def __repr__(self) -> str:
        return (f"Job(id={self.job_id}, kind={self.kind!r}, "
                f"priority={self.priority}, state={self.state!r})")


class JobContext:
    """What a running job's worker thread sees.

    Bridges the worker back to the event loop: progress and partial
    results are handed to the loop with ``call_soon_threadsafe``
    and published on the job's topics; :meth:`should_abort` is the
    cooperative checkpoint wired into the measurement stack's
    existing hooks.

    Topics: ``job.<id>.state``, ``job.<id>.progress``,
    ``job.<id>.partial``.
    """

    def __init__(self, job: Job, loop, hub,
                 on_paused: Optional[Callable[[], None]] = None,
                 on_resumed: Optional[Callable[[], None]] = None):
        self.job = job
        self._loop = loop
        self._hub = hub
        self._on_paused = on_paused
        self._on_resumed = on_resumed

    def should_abort(self) -> bool:
        """Cooperative checkpoint; pass as the measurement's
        ``should_abort`` hook."""
        return self.job.checkpoint(on_paused=self._on_paused,
                                   on_resumed=self._on_resumed)

    def emit(self, channel: str, data) -> None:
        """Publish *data* on ``job.<id>.<channel>`` (threadsafe)."""
        topic = f"job.{self.job.job_id}.{channel}"
        self._loop.call_soon_threadsafe(self._hub.publish, topic,
                                        data)

    def progress(self, done: int, total: int) -> None:
        """Publish a progress tick; wire into ``progress`` hooks."""
        self.emit("progress", {"done": int(done),
                               "total": int(total)})

    def partial(self, data) -> None:
        """Publish a partial result and remember the latest one (an
        aborted job returns it)."""
        self.job.partial = data
        self.emit("partial", data)


def priority_key(job: Job, seq: int) -> Tuple[int, int]:
    """Heap key: higher priority first, FIFO within a priority."""
    return (-job.priority, seq)
