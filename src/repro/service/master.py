"""The test-floor master: RPC + scheduler + streaming, assembled.

One :class:`TestFloorMaster` is the paper's PC controller promoted
to a shared shop-floor service: multiple operators (RPC clients)
submit shmoo/BER/eye/wafer jobs with priorities, watch partial
results stream live, and pause/resume/abort work — all multiplexed
onto a bounded pool of worker threads driving the same measurement
library a direct caller would use, with identical numbers.

For synchronous callers (tests, examples, shop scripts) the
:func:`serve_in_thread` helper runs a whole master on a background
event-loop thread and hands back its address::

    with serve_in_thread(max_slots=2) as handle:
        with handle.client() as cli:
            job = cli.submit(kind="ber",
                             params={"total_bits": 2000})
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional, Tuple

from repro import telemetry
from repro.errors import ReproError
from repro.parallel import Executor
from repro.service.pubsub import PubSubHub
from repro.service.rpc import Client, RPCServer
from repro.service.runner import JobRunner
from repro.service.scheduler import Scheduler


class TestFloorMaster:
    """RPC job server + priority scheduler + live event streams.

    Parameters
    ----------
    host, port:
        Bind address (port 0 picks a free port).
    max_slots:
        Concurrent worker threads for jobs.
    registry:
        Optional injected telemetry registry shared by every layer.
    executor:
        Optional :class:`repro.parallel.Executor` (serial/thread)
        the runner shards sweeps on.
    """

    __test__ = False  # not a pytest collection target

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 max_slots: int = 2, registry=None,
                 executor: Optional[Executor] = None):
        self.telemetry = registry
        self.hub = PubSubHub(registry=registry)
        self.runner = JobRunner(registry=registry, executor=executor)
        self.scheduler = Scheduler(self.runner, self.hub,
                                   max_slots=max_slots,
                                   registry=registry)
        self.server = RPCServer(self._methods(), self.hub,
                                host=host, port=port,
                                registry=registry)

    def _methods(self) -> dict:
        return {
            "ping": self._ping,
            "kinds": self._kinds,
            "submit": self._submit,
            "status": self._status,
            "result": self._result,
            "list_jobs": self.scheduler.list_jobs,
            "pause": self.scheduler.pause,
            "resume": self.scheduler.resume,
            "abort": self.scheduler.abort,
            "telemetry": self._telemetry,
        }

    # -- RPC method handlers (event-loop thread) -------------------------

    def _ping(self) -> dict:
        """Liveness check."""
        return {"ok": True, "kinds": list(self.runner.kinds)}

    def _kinds(self) -> list:
        """Registered job types."""
        return list(self.runner.kinds)

    def _submit(self, kind: str, params: Optional[dict] = None,
                priority: int = 0,
                deadline_s: Optional[float] = None) -> dict:
        """Queue a job; returns its status summary (with id)."""
        job = self.scheduler.submit(kind, params,
                                    priority=int(priority),
                                    deadline_s=deadline_s)
        return job.describe()

    def _status(self, job_id: int) -> dict:
        """One job's status summary."""
        return self.scheduler.get(job_id).describe()

    def _result(self, job_id: int) -> dict:
        """One job's payloads: final result and latest partial."""
        job = self.scheduler.get(job_id)
        return {"job_id": job.job_id, "state": job.state,
                "result": job.result, "partial": job.partial}

    def _telemetry(self) -> dict:
        """The service registry's full snapshot."""
        return telemetry.resolve(self.telemetry).to_dict()

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Start serving; returns the bound ``(host, port)``."""
        return await self.server.start()

    async def stop(self) -> None:
        """Abort live jobs, wait for workers, stop the server."""
        self.scheduler.shutdown()
        await self.scheduler.drain()
        await self.server.stop()
        self.hub.close()


class MasterHandle:
    """A running background master: address, client factory, stop.

    Returned by :func:`serve_in_thread`; also a context manager
    (stops the master on exit).
    """

    def __init__(self, master: TestFloorMaster,
                 address: Tuple[str, int], loop, stop_event,
                 thread: threading.Thread):
        self.master = master
        self.address = address
        self._loop = loop
        self._stop_event = stop_event
        self._thread = thread

    def client(self, timeout_s: float = 30.0) -> Client:
        """A fresh sync :class:`~.rpc.Client` for this master."""
        host, port = self.address
        return Client(host, port, timeout_s=timeout_s)

    def stop(self, timeout_s: float = 30.0) -> None:
        """Shut the master down and join its thread."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
            self._thread.join(timeout=timeout_s)

    def __enter__(self) -> "MasterHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_in_thread(timeout_s: float = 30.0,
                    **master_kwargs) -> MasterHandle:
    """Run a :class:`TestFloorMaster` on a background loop thread.

    Blocks until the server is bound; raises :class:`ReproError`
    if it fails to come up within *timeout_s*. Keyword arguments
    go to the :class:`TestFloorMaster` constructor.
    """
    started = threading.Event()
    holder: dict = {}

    def main() -> None:
        async def body() -> None:
            master = TestFloorMaster(**master_kwargs)
            try:
                address = await master.start()
            except Exception as exc:  # surface bind failures
                holder["error"] = exc
                started.set()
                return
            stop_event = asyncio.Event()
            holder.update(master=master, address=address,
                          loop=asyncio.get_running_loop(),
                          stop=stop_event)
            started.set()
            try:
                await stop_event.wait()
            finally:
                await master.stop()

        asyncio.run(body())

    thread = threading.Thread(target=main, daemon=True,
                              name="repro-service-master")
    thread.start()
    if not started.wait(timeout=timeout_s) or "error" in holder:
        error = holder.get("error")
        raise ReproError(
            f"test-floor master failed to start: {error}"
        )
    return MasterHandle(holder["master"], holder["address"],
                        holder["loop"], holder["stop"], thread)
