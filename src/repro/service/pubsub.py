"""Topic pub/sub with bounded per-subscriber queues.

The live-streaming half of the test-floor master: jobs publish
partial results (shmoo cells, BER tallies, eye snapshots) and state
changes to topics like ``job.3.partial``; RPC connections subscribe
with optional trailing-``*`` wildcards (``job.*`` matches every
job's stream).

Backpressure is per-subscriber and lossy-oldest: each subscription
owns a bounded :class:`asyncio.Queue`, and a publish that finds it
full evicts the oldest queued event to make room. A slow reader
therefore lags (observable as a gap in the per-topic ``seq``
numbers) without ever stalling the publisher or other subscribers.
Drops are counted in ``service.events_dropped`` and the worst
subscriber backlog is exported as the ``service.stream_lag`` gauge.

All hub methods must run on the event-loop thread; worker threads
hand events over with ``loop.call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, Iterable, Optional, Tuple

from repro import telemetry
from repro.errors import ConfigurationError


def topic_matches(pattern: str, topic: str) -> bool:
    """True when *topic* falls under *pattern*.

    Patterns are exact strings, except a trailing ``*`` which
    matches any suffix: ``job.*`` covers ``job.3.partial`` and
    ``job.7.state``; bare ``*`` covers everything.
    """
    if pattern.endswith("*"):
        return topic.startswith(pattern[:-1])
    return topic == pattern


class Subscription:
    """One subscriber's bounded event stream.

    Obtained from :meth:`PubSubHub.subscribe`; iterate with
    :meth:`get` until :meth:`PubSubHub.unsubscribe` (or hub close)
    delivers the ``None`` sentinel.
    """

    def __init__(self, patterns: Tuple[str, ...], maxsize: int):
        self.patterns = patterns
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=maxsize)
        #: Events evicted from this queue because it was full.
        self.dropped = 0
        self.closed = False

    def matches(self, topic: str) -> bool:
        """True when any of this subscription's patterns covers
        *topic*."""
        return any(topic_matches(p, topic) for p in self.patterns)

    async def get(self) -> Optional[dict]:
        """Next event dict, or None once the subscription closes."""
        if self.closed and self.queue.empty():
            return None
        event = await self.queue.get()
        return event

    def _offer(self, event: dict) -> bool:
        """Enqueue, evicting the oldest event when full; True when
        an eviction happened."""
        evicted = False
        while True:
            try:
                self.queue.put_nowait(event)
                return evicted
            except asyncio.QueueFull:
                try:
                    self.queue.get_nowait()
                    self.dropped += 1
                    evicted = True
                except asyncio.QueueEmpty:  # pragma: no cover
                    # Only reachable if maxsize is 0 (unbounded) —
                    # excluded at subscribe time.
                    return evicted


class PubSubHub:
    """Fan events out to matching subscriptions.

    Parameters
    ----------
    default_maxsize:
        Queue bound for subscriptions that don't pick their own.
    registry:
        Optional injected telemetry registry; defaults to the
        module-level active one.
    """

    def __init__(self, default_maxsize: int = 256, registry=None):
        if default_maxsize < 1:
            raise ConfigurationError(
                f"queue bound must be >= 1, got {default_maxsize}"
            )
        self.default_maxsize = int(default_maxsize)
        self.telemetry = registry
        self._subs: Dict[int, Subscription] = {}
        self._ids = itertools.count(1)
        self._seq: Dict[str, int] = {}

    @property
    def n_subscribers(self) -> int:
        """Currently attached subscriptions."""
        return len(self._subs)

    def subscribe(self, patterns: Iterable[str],
                  maxsize: Optional[int] = None) -> Subscription:
        """Attach a subscription covering *patterns*."""
        patterns = tuple(str(p) for p in patterns)
        if not patterns:
            raise ConfigurationError("subscribe needs >= 1 pattern")
        bound = self.default_maxsize if maxsize is None else int(maxsize)
        if bound < 1:
            raise ConfigurationError(
                f"queue bound must be >= 1, got {bound}"
            )
        sub = Subscription(patterns, bound)
        sub._sub_id = next(self._ids)
        self._subs[sub._sub_id] = sub
        tel = telemetry.resolve(self.telemetry)
        tel.gauge("service.subscribers").set(len(self._subs))
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Detach *sub* and wake its reader with the None sentinel."""
        self._subs.pop(getattr(sub, "_sub_id", None), None)
        if not sub.closed:
            sub.closed = True
            sub._offer(None)
        tel = telemetry.resolve(self.telemetry)
        tel.gauge("service.subscribers").set(len(self._subs))

    def publish(self, topic: str, data) -> int:
        """Deliver one event to every matching subscription.

        Stamps the topic's next ``seq`` (monotonic per topic, so a
        subscriber can detect its own drops) and returns it. Must
        be called on the event-loop thread.
        """
        seq = self._seq.get(topic, 0) + 1
        self._seq[topic] = seq
        event = {"event": topic, "seq": seq, "data": data}
        tel = telemetry.resolve(self.telemetry)
        delivered = 0
        dropped = 0
        worst_lag = 0
        for sub in list(self._subs.values()):
            if sub.closed or not sub.matches(topic):
                continue
            if sub._offer(event):
                dropped += 1
            delivered += 1
            worst_lag = max(worst_lag, sub.queue.qsize())
        tel.counter("service.events_published").inc()
        if dropped:
            tel.counter("service.events_dropped").inc(dropped)
        tel.gauge("service.stream_lag").set(worst_lag)
        return seq

    def close(self) -> None:
        """Detach every subscription (each reader sees the
        sentinel)."""
        for sub in list(self._subs.values()):
            self.unsubscribe(sub)
