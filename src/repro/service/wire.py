"""Newline-delimited JSON wire format for the test-floor service.

One JSON object per line, UTF-8, ``\\n``-terminated — the simplest
framing that survives every transport (asyncio streams here; a
serial console or netcat in a pinch). Requests carry ``id``,
``method``, ``params``; responses echo the ``id`` with ``ok`` and
either ``result`` or a structured ``error``; server-pushed events
carry ``event``, ``seq``, ``data`` and no ``id``.

The encoder accepts numpy scalars and arrays so results assembled
from measurement code serialize without each call site remembering
to convert — arrays become nested lists, scalars become their
Python equivalents.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.errors import ProtocolError

#: Longest accepted wire line (1 GiB would be absurd; 16 MiB covers
#: a 1024x1024 int grid with room to spare).
MAX_LINE_BYTES = 16 * 1024 * 1024


class NumpyJSONEncoder(json.JSONEncoder):
    """JSON encoder that understands numpy scalars and arrays."""

    def default(self, o: Any) -> Any:
        """Convert numpy types to plain Python; defer otherwise."""
        if isinstance(o, np.integer):
            return int(o)
        if isinstance(o, np.floating):
            return float(o)
        if isinstance(o, np.bool_):
            return bool(o)
        if isinstance(o, np.ndarray):
            return o.tolist()
        return super().default(o)


def encode_line(obj: Any) -> bytes:
    """One wire line: compact JSON, UTF-8, newline-terminated."""
    text = json.dumps(obj, cls=NumpyJSONEncoder,
                      separators=(",", ":"))
    return text.encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Any:
    """Parse one wire line back into Python.

    Raises
    ------
    ProtocolError
        On malformed JSON, a non-object payload, or a line past
        :data:`MAX_LINE_BYTES`.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"wire line of {len(line)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte limit"
        )
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed wire line: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"wire lines must be JSON objects, got "
            f"{type(obj).__name__}"
        )
    return obj


def error_payload(exc: BaseException,
                  traceback_text: str = "") -> dict:
    """The structured ``error`` field for a failed response."""
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": traceback_text,
    }
