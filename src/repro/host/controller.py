"""The PC controller: one object that owns the whole bench.

Wires the USB link to a DLC, optionally holds the JTAG programmer
for FLASH updates, and exposes the high-level operations the paper's
host software performs: reconfigure the board, set up a test, run
it, poll for completion.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError, ProtocolError
from repro.dlc.core import DigitalLogicCore, default_test_design
from repro.dlc.fpga import Bitstream
from repro.dlc.statemachine import SequencerState
from repro.flash.config_loader import ConfigLoader
from repro.jtag.chain import JTAGDevice, ScanChain
from repro.jtag.flashprog import FlashProgrammer, make_flash_bridge_device
from repro.usb.device import USBDevice
from repro.usb.host import USBHost
from repro.usb.protocol import DLCFunction, DLCProtocol


class PCController:
    """High-level control of one DLC board.

    Parameters
    ----------
    dlc:
        The board's logic core; a fresh one is built if omitted.
    """

    def __init__(self, dlc: Optional[DigitalLogicCore] = None):
        self.dlc = dlc if dlc is not None else DigitalLogicCore()
        self.usb_device = USBDevice()
        self.usb_host = USBHost(self.usb_device)
        self.function = DLCFunction(self.usb_device, self.dlc)
        self.protocol = DLCProtocol(self.usb_host)
        # JTAG side: FLASH bridge + the FPGA on one chain.
        self.chain = ScanChain([
            make_flash_bridge_device(self.dlc.flash),
            JTAGDevice("fpga", self.dlc.fpga.idcode),
        ])
        self.programmer = FlashProgrammer(self.chain, bridge_index=0)
        self.connected = False

    # -- bring-up ---------------------------------------------------------

    def connect(self) -> None:
        """Enumerate USB and check the link."""
        self.usb_host.enumerate()
        if not self.protocol.ping():
            raise ProtocolError("DLC did not answer the ping")
        self.connected = True

    def _require_connection(self) -> None:
        if not self.connected:
            raise ProtocolError("not connected; call connect() first")

    def identify(self) -> dict:
        """Read the board's ID and version registers."""
        self._require_connection()
        return {
            "id": self.protocol.read_register(0x00),
            "version": self.protocol.read_register(0x02),
        }

    # -- reconfiguration (the JTAG path) ---------------------------------

    def update_firmware(self, bitstream: Optional[Bitstream] = None
                        ) -> str:
        """Program a new design into FLASH over JTAG and power-cycle.

        This is the paper's adaptation flow: "quickly adapting the
        DLC to handle new test applications".
        """
        if bitstream is None:
            bitstream = default_test_design()
        image = bitstream.to_bytes()
        self.programmer.program_image(
            image, base=0, sector_size=self.dlc.flash.sector_size
        )
        self.dlc.fpga.unconfigure()
        loaded = ConfigLoader(self.dlc.flash).power_up(self.dlc.fpga)
        return loaded.design_name

    # -- test control -----------------------------------------------------

    def setup_test(self, pattern_length: int, lfsr_order: int = 7,
                   lfsr_seed: int = 1) -> None:
        """Program the test parameters into DLC registers."""
        self._require_connection()
        if pattern_length < 1:
            raise ConfigurationError("pattern length must be >= 1")
        self.protocol.write_register(0x08, pattern_length)
        self.protocol.write_register(0x10, lfsr_order)
        self.protocol.write_register(0x0C, lfsr_seed)
        self.dlc.reset_lfsrs()

    def start_test(self) -> None:
        """Arm and trigger via the control register."""
        self._require_connection()
        self.protocol.write_register(0x04, DigitalLogicCore.CTRL_ARM)
        self.protocol.write_register(0x04, DigitalLogicCore.CTRL_TRIGGER)

    def poll_status(self) -> SequencerState:
        """Read the sequencer state back."""
        self._require_connection()
        code = self.protocol.read_register(0x06)
        reverse = {v: k for k, v
                   in DigitalLogicCore._STATUS_CODES.items()}
        try:
            return reverse[code]
        except KeyError:
            raise ProtocolError(f"unknown status code 0x{code:x}") from None

    def run_to_completion(self, pattern_length: int,
                          max_polls: int = 100) -> SequencerState:
        """Set up, start, and clock a test until DONE."""
        self.setup_test(pattern_length)
        self.start_test()
        chunk = max(1, pattern_length // 10)
        for _ in range(max_polls):
            state = self.poll_status()
            if state is SequencerState.DONE:
                return state
            # Advancing the fabric clock stands in for wall time.
            self.dlc.sequencer.clock(chunk)
        raise ProtocolError(
            f"test did not complete within {max_polls} polls"
        )
