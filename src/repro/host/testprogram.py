"""Declarative test programs.

A test program is an ordered list of named steps, each producing a
measurement judged against limits. Running one against a test
system fills a :class:`~repro.host.results.Datalog` — the shape of
every production test flow, applied here to the paper's bench
measurements (eye opening, jitter, rise time, BER).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from repro import telemetry
from repro.errors import ConfigurationError
from repro.host.results import Datalog, TestRecord


@dataclasses.dataclass(frozen=True)
class Limit:
    """Pass limits for one measurement.

    Attributes
    ----------
    lo, hi:
        Bounds (None = unbounded).
    units:
        Units string for the datalog.
    """

    lo: Optional[float] = None
    hi: Optional[float] = None
    units: str = ""

    def __post_init__(self):
        if self.lo is not None and self.hi is not None \
                and self.lo > self.hi:
            raise ConfigurationError(
                f"limit lo {self.lo} exceeds hi {self.hi}"
            )


@dataclasses.dataclass(frozen=True)
class TestStep:
    """One step: a measurement callable plus its limits.

    (Not a pytest class, despite the name.)

    Attributes
    ----------
    name:
        Step (and datalog record) name.
    measure:
        Callable taking the system under test, returning a float.
    limit:
        Pass window.
    """

    __test__ = False  # not a pytest collection target

    name: str
    measure: Callable[[object], float]
    limit: Limit = Limit()


class TestProgram:
    """An ordered list of steps with stop-on-fail semantics.

    Parameters
    ----------
    name:
        Program name.
    steps:
        The steps, run in order.
    stop_on_fail:
        Abort the flow at the first failing step (production
        default); False datalogs everything.
    registry:
        Optional injected telemetry registry; defaults to the
        module-level active one.
    cache:
        Optional :class:`repro.cache.ArtifactCache` activated for
        the duration of each :meth:`run` — steps that measure the
        same stimulus (e.g. eye opening and jitter from one
        pattern) then share rendered waveforms instead of
        re-synthesizing them per step.
    """

    __test__ = False  # not a pytest collection target

    def __init__(self, name: str, steps: List[TestStep] = None,
                 stop_on_fail: bool = True, registry=None, cache=None):
        if not name:
            raise ConfigurationError("program name must be non-empty")
        self.name = name
        self.steps: List[TestStep] = list(steps or [])
        self.stop_on_fail = bool(stop_on_fail)
        self.telemetry = registry
        self.cache = cache

    def add_step(self, name: str,
                 measure: Callable[[object], float],
                 lo: Optional[float] = None, hi: Optional[float] = None,
                 units: str = "") -> "TestProgram":
        """Append a step; returns self for chaining."""
        self.steps.append(TestStep(name, measure, Limit(lo, hi, units)))
        return self

    def run(self, system) -> Datalog:
        """Execute against *system*; returns the filled datalog.

        Each run is traced as a ``testprogram.<name>`` span with one
        nested span per step, plus pass/fail step counters. When the
        program holds a cache it is active across the whole flow, so
        steps sharing a stimulus reuse each other's artifacts.
        """
        if not self.steps:
            raise ConfigurationError(
                f"program {self.name!r} has no steps"
            )
        if self.cache is not None:
            from repro import cache as artifact_cache

            with artifact_cache.use_cache(self.cache):
                return self._run_impl(system)
        return self._run_impl(system)

    def _run_impl(self, system) -> Datalog:
        tel = telemetry.resolve(self.telemetry)
        datalog = Datalog()
        with tel.span(f"testprogram.{self.name}"):
            tel.counter("testprogram.runs").inc()
            for step in self.steps:
                with tel.span(f"step.{step.name}"):
                    value = float(step.measure(system))
                record = TestRecord.judged(
                    step.name, value, step.limit.lo, step.limit.hi,
                    step.limit.units,
                )
                datalog.add(record)
                tel.counter("testprogram.steps").inc()
                tel.counter(
                    f"testprogram.steps_{record.verdict.value}"
                ).inc()
                if self.stop_on_fail and record.verdict.value == "fail":
                    break
        return datalog


def standard_eye_program(rate_gbps: float,
                         min_opening_ui: float = 0.6,
                         max_jitter_pp: float = 80.0,
                         n_bits: int = 3000) -> TestProgram:
    """The bench's standard output-qualification program.

    Measures eye opening and crossover jitter at *rate_gbps* on any
    :class:`~repro.core.system.TestSystem`.
    """
    program = TestProgram(f"eye_qual_{rate_gbps:g}G")
    program.add_step(
        "eye_opening",
        lambda sys_: sys_.measure_eye(
            n_bits=n_bits, rate_gbps=rate_gbps).eye_opening_ui,
        lo=min_opening_ui, units="UI",
    )
    program.add_step(
        "jitter_pp",
        lambda sys_: sys_.measure_eye(
            n_bits=n_bits, rate_gbps=rate_gbps).jitter_pp,
        hi=max_jitter_pp, units="ps",
    )
    return program
