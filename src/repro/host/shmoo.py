"""2-D shmoo plots: pass/fail over a parameter plane.

The characterization workhorse: sweep two knobs (rate x swing, rate
x strobe position, ...) and plot the pass region. The paper's
Figures 10/11 margining plus the mini-tester's strobe scan are 1-D
cuts of exactly this.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Sequence

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class ShmooResult:
    """One completed shmoo.

    Attributes
    ----------
    x_values, y_values:
        The swept axes.
    passes:
        Boolean grid, shape (len(y_values), len(x_values)); row 0
        is the first y value.
    x_name, y_name:
        Axis labels.
    """

    x_values: Sequence[float]
    y_values: Sequence[float]
    passes: np.ndarray
    x_name: str = "x"
    y_name: str = "y"

    @property
    def pass_fraction(self) -> float:
        """Fraction of the plane that passes."""
        return float(np.mean(self.passes))

    def pass_region_contiguous_rows(self) -> bool:
        """True when every row's pass region is one contiguous run
        (the signature of a clean eye/margin boundary)."""
        for row in self.passes:
            idx = np.flatnonzero(row)
            if len(idx) and not np.array_equal(
                    idx, np.arange(idx[0], idx[-1] + 1)):
                return False
        return True

    def render(self, pass_char: str = "P",
               fail_char: str = ".") -> str:
        """ASCII plot, first y value at the bottom row."""
        lines = [f"shmoo: {self.y_name} (rows) vs {self.x_name} "
                 f"(cols)"]
        for yi in range(len(self.y_values) - 1, -1, -1):
            row = "".join(pass_char if p else fail_char
                          for p in self.passes[yi])
            lines.append(f"{self.y_values[yi]:>8.3g} |{row}|")
        lines.append(" " * 9 + "^" + f" {self.x_values[0]:g} .. "
                     f"{self.x_values[-1]:g} {self.x_name}")
        return "\n".join(lines)


class ShmooRunner:
    """Runs a pass/fail callable over a 2-D grid.

    Parameters
    ----------
    test:
        Callable ``f(x, y) -> bool``.
    x_name, y_name:
        Axis labels for rendering.
    registry:
        Optional injected telemetry registry; defaults to the
        module-level active one.
    """

    def __init__(self, test: Callable[[float, float], bool],
                 x_name: str = "x", y_name: str = "y",
                 registry=None):
        self.test = test
        self.x_name = x_name
        self.y_name = y_name
        self.telemetry = registry

    def run(self, x_values: Sequence[float],
            y_values: Sequence[float]) -> ShmooResult:
        """Evaluate the full grid."""
        x_values = list(x_values)
        y_values = list(y_values)
        if not x_values or not y_values:
            raise ConfigurationError("both axes need values")
        tel = telemetry.resolve(self.telemetry)
        passes = np.zeros((len(y_values), len(x_values)), dtype=bool)
        with tel.span("shmoo.run"):
            for yi, y in enumerate(y_values):
                for xi, x in enumerate(x_values):
                    passes[yi, xi] = bool(self.test(x, y))
        tel.counter("shmoo.runs").inc()
        tel.counter("shmoo.cells").inc(int(passes.size))
        tel.counter("shmoo.cells_passed").inc(int(passes.sum()))
        tel.counter("shmoo.cells_failed").inc(
            int(passes.size - passes.sum())
        )
        return ShmooResult(
            x_values=tuple(x_values),
            y_values=tuple(y_values),
            passes=passes,
            x_name=self.x_name,
            y_name=self.y_name,
        )


def minitester_strobe_rate_shmoo(minitester, rates: Sequence[float],
                                 strobe_fracs: Sequence[float],
                                 n_bits: int = 300,
                                 seed: int = 1,
                                 registry=None) -> ShmooResult:
    """The mini-tester's natural shmoo: strobe position vs rate.

    Parameters
    ----------
    strobe_fracs:
        Strobe positions as fractions of the unit interval.
    registry:
        Optional injected telemetry registry for the runner.
    """
    def test(rate: float, frac: float) -> bool:
        ui = 1_000.0 / rate
        step = minitester.receiver.sampler.resolution
        code = int(round(frac * ui / step))
        code = min(code, minitester.receiver.sampler
                   .delay_line.n_codes - 1)
        result = minitester.run_loopback(
            n_bits=n_bits, seed=seed, rate_gbps=rate,
            strobe_code=code,
        )
        return result.passed

    runner = ShmooRunner(test, x_name="rate (Gbps)",
                         y_name="strobe (UI)", registry=registry)
    return runner.run(rates, strobe_fracs)
