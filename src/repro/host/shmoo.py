"""2-D shmoo plots: pass/fail over a parameter plane.

The characterization workhorse: sweep two knobs (rate x swing, rate
x strobe position, ...) and plot the pass region. The paper's
Figures 10/11 margining plus the mini-tester's strobe scan are 1-D
cuts of exactly this.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError
from repro.parallel import Executor, ShardPlan


def _evaluate_shard(test: Callable[[float, float], bool],
                    shard, seed) -> List[bool]:
    """One shard's cells through the pass/fail callable.

    Module-level (not a method) so the process backend can pickle
    it via :func:`functools.partial`.
    """
    return [bool(test(x, y)) for (_yi, _xi, x, y) in shard.items]


@dataclasses.dataclass(frozen=True)
class ShmooResult:
    """One completed shmoo.

    Attributes
    ----------
    x_values, y_values:
        The swept axes.
    passes:
        Boolean grid, shape (len(y_values), len(x_values)); row 0
        is the first y value.
    x_name, y_name:
        Axis labels.
    evaluated:
        Boolean grid of cells actually tested; None means all (a
        sweep that ran to completion). Unevaluated cells read as
        fails in :attr:`passes`.
    """

    x_values: Sequence[float]
    y_values: Sequence[float]
    passes: np.ndarray
    x_name: str = "x"
    y_name: str = "y"
    evaluated: Optional[np.ndarray] = None

    @property
    def aborted(self) -> bool:
        """True when the sweep stopped before covering the grid."""
        return self.evaluated is not None \
            and not bool(self.evaluated.all())

    @property
    def evaluated_mask(self) -> np.ndarray:
        """Boolean grid of evaluated cells (all True when complete)."""
        if self.evaluated is None:
            return np.ones_like(self.passes, dtype=bool)
        return self.evaluated

    @property
    def pass_fraction(self) -> float:
        """Fraction of the plane that passes."""
        return float(np.mean(self.passes))

    def pass_region_contiguous_rows(self) -> bool:
        """True when every row's pass region is one contiguous run
        (the signature of a clean eye/margin boundary)."""
        for row in self.passes:
            idx = np.flatnonzero(row)
            if len(idx) and not np.array_equal(
                    idx, np.arange(idx[0], idx[-1] + 1)):
                return False
        return True

    def render(self, pass_char: str = "P",
               fail_char: str = ".") -> str:
        """ASCII plot, first y value at the bottom row."""
        lines = [f"shmoo: {self.y_name} (rows) vs {self.x_name} "
                 f"(cols)"]
        for yi in range(len(self.y_values) - 1, -1, -1):
            row = "".join(pass_char if p else fail_char
                          for p in self.passes[yi])
            lines.append(f"{self.y_values[yi]:>8.3g} |{row}|")
        lines.append(" " * 9 + "^" + f" {self.x_values[0]:g} .. "
                     f"{self.x_values[-1]:g} {self.x_name}")
        return "\n".join(lines)


class ShmooRunner:
    """Runs a pass/fail callable over a 2-D grid.

    Parameters
    ----------
    test:
        Callable ``f(x, y) -> bool``.
    x_name, y_name:
        Axis labels for rendering.
    registry:
        Optional injected telemetry registry; defaults to the
        module-level active one.
    """

    def __init__(self, test: Callable[[float, float], bool],
                 x_name: str = "x", y_name: str = "y",
                 registry=None):
        self.test = test
        self.x_name = x_name
        self.y_name = y_name
        self.telemetry = registry

    def run(self, x_values: Sequence[float],
            y_values: Sequence[float], *,
            progress: Optional[Callable[[int, int], None]] = None,
            should_abort: Optional[Callable[[], bool]] = None,
            executor: Optional[Executor] = None,
            n_shards: Optional[int] = None) -> ShmooResult:
        """Evaluate the grid, serially or sharded over an executor.

        Parameters
        ----------
        progress:
            ``progress(cells_done, cells_total)`` fired as cells
            complete (per cell serially; per finished shard when an
            executor runs the sweep).
        should_abort:
            Polled between cells (serial) or shards (parallel);
            returning True stops the sweep early — unevaluated
            cells are marked in :attr:`ShmooResult.evaluated`.
        executor:
            A :class:`repro.parallel.Executor`; when given, the grid
            is partitioned by :class:`~repro.parallel.ShardPlan` and
            the shards run on its backend. The process backend
            needs a picklable ``test`` callable. Serial behavior,
            grids, and telemetry totals are identical across
            backends.
        n_shards:
            Shards for the parallel path (default: 4 per worker).
        """
        x_values = list(x_values)
        y_values = list(y_values)
        if not x_values or not y_values:
            raise ConfigurationError("both axes need values")
        tel = telemetry.resolve(self.telemetry)
        shape = (len(y_values), len(x_values))
        passes = np.zeros(shape, dtype=bool)
        evaluated = np.zeros(shape, dtype=bool)
        with tel.span("shmoo.run"):
            if executor is None:
                aborted = self._run_serial(
                    x_values, y_values, passes, evaluated,
                    progress, should_abort,
                )
            else:
                aborted = self._run_sharded(
                    x_values, y_values, passes, evaluated,
                    progress, should_abort, executor, n_shards,
                )
        n_eval = int(evaluated.sum())
        n_pass = int(passes[evaluated].sum())
        tel.counter("shmoo.runs").inc()
        tel.counter("shmoo.cells").inc(n_eval)
        tel.counter("shmoo.cells_passed").inc(n_pass)
        tel.counter("shmoo.cells_failed").inc(n_eval - n_pass)
        return ShmooResult(
            x_values=tuple(x_values),
            y_values=tuple(y_values),
            passes=passes,
            x_name=self.x_name,
            y_name=self.y_name,
            evaluated=evaluated if aborted else None,
        )

    def _run_serial(self, x_values, y_values, passes, evaluated,
                    progress, should_abort) -> bool:
        total = passes.size
        done = 0
        for yi, y in enumerate(y_values):
            for xi, x in enumerate(x_values):
                if should_abort is not None and should_abort():
                    return True
                passes[yi, xi] = bool(self.test(x, y))
                evaluated[yi, xi] = True
                done += 1
                if progress is not None:
                    progress(done, total)
        return False

    def _run_sharded(self, x_values, y_values, passes, evaluated,
                     progress, should_abort, executor,
                     n_shards) -> bool:
        if n_shards is None:
            n_shards = executor.max_workers * 4
        plan = ShardPlan.for_grid(x_values, y_values, n_shards)
        fn = functools.partial(_evaluate_shard, self.test)

        def on_chunk(done, total, indices) -> None:
            if progress is not None:
                cells = sum(len(plan.shards[i]) for i in indices)
                on_chunk.cells_done += cells
                progress(on_chunk.cells_done, plan.total)
        on_chunk.cells_done = 0

        outcome = executor.run(fn, plan.shards,
                               progress=on_chunk,
                               should_abort=should_abort)
        for shard, results in zip(plan.shards, outcome.results):
            if results is None:
                continue
            for (yi, xi, _x, _y), ok in zip(shard.items, results):
                passes[yi, xi] = ok
                evaluated[yi, xi] = True
        return outcome.aborted


def minitester_strobe_rate_shmoo(minitester, rates: Sequence[float],
                                 strobe_fracs: Sequence[float],
                                 n_bits: int = 300,
                                 seed: int = 1,
                                 registry=None) -> ShmooResult:
    """The mini-tester's natural shmoo: strobe position vs rate.

    Parameters
    ----------
    strobe_fracs:
        Strobe positions as fractions of the unit interval.
    registry:
        Optional injected telemetry registry for the runner.
    """
    def test(rate: float, frac: float) -> bool:
        ui = 1_000.0 / rate
        step = minitester.receiver.sampler.resolution
        code = int(round(frac * ui / step))
        code = min(code, minitester.receiver.sampler
                   .delay_line.n_codes - 1)
        result = minitester.run_loopback(
            n_bits=n_bits, seed=seed, rate_gbps=rate,
            strobe_code=code,
        )
        return result.passed

    runner = ShmooRunner(test, x_name="rate (Gbps)",
                         y_name="strobe (UI)", registry=registry)
    return runner.run(rates, strobe_fracs)
