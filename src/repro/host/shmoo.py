"""2-D shmoo plots: pass/fail over a parameter plane.

The characterization workhorse: sweep two knobs (rate x swing, rate
x strobe position, ...) and plot the pass region. The paper's
Figures 10/11 margining plus the mini-tester's strobe scan are 1-D
cuts of exactly this.
"""

from __future__ import annotations

import contextlib
import dataclasses
import functools
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError
from repro.parallel import CallbackGuard, Executor, ShardPlan


def _evaluate_shard(test: Callable[[float, float], bool],
                    shard, seed, cache=None) -> List[bool]:
    """One shard's cells through the pass/fail callable.

    Module-level (not a method) so the process backend can pickle
    it via :func:`functools.partial`. A *cache* rides along the same
    way: process workers receive the pickled clone (pointing at the
    shared ``disk_path`` when one is set) and activate it for the
    shard's cells.
    """
    if cache is not None:
        from repro import cache as artifact_cache

        with artifact_cache.use_cache(cache):
            return [bool(test(x, y))
                    for (_yi, _xi, x, y) in shard.items]
    return [bool(test(x, y)) for (_yi, _xi, x, y) in shard.items]


def _evaluate_cell(test: Callable[[float, float], bool],
                   item: Tuple[int, int, float, float],
                   seed, cache=None) -> bool:
    """One adaptive-refinement cell; module-level for pickling."""
    _yi, _xi, x, y = item
    if cache is not None:
        from repro import cache as artifact_cache

        with artifact_cache.use_cache(cache):
            return bool(test(x, y))
    return bool(test(x, y))


@dataclasses.dataclass(frozen=True)
class ShmooResult:
    """One completed shmoo.

    Attributes
    ----------
    x_values, y_values:
        The swept axes.
    passes:
        Boolean grid, shape (len(y_values), len(x_values)); row 0
        is the first y value.
    x_name, y_name:
        Axis labels.
    evaluated:
        Boolean grid of cells actually tested — always a mask, never
        None (constructing with None normalizes to all-True for
        callers that predate adaptive sweeps). An exhaustive sweep
        evaluates everything; an adaptive one leaves inferred cells
        False here while still filling :attr:`passes`.
    complete:
        True when the sweep covered the whole grid (every cell
        evaluated or inferred); False only for aborted runs, where
        uncovered cells read as fails in :attr:`passes`.
    """

    x_values: Sequence[float]
    y_values: Sequence[float]
    passes: np.ndarray
    x_name: str = "x"
    y_name: str = "y"
    evaluated: Optional[np.ndarray] = None
    complete: bool = True

    def __post_init__(self):
        if self.evaluated is None:
            object.__setattr__(
                self, "evaluated",
                np.ones(np.shape(self.passes), dtype=bool),
            )

    @property
    def aborted(self) -> bool:
        """True when the sweep stopped before covering the grid."""
        return not self.complete

    @property
    def evaluated_mask(self) -> np.ndarray:
        """Boolean grid of evaluated cells (synonym for
        :attr:`evaluated`, kept for existing consumers)."""
        return self.evaluated

    @property
    def pass_fraction(self) -> float:
        """Fraction of the plane that passes."""
        return float(np.mean(self.passes))

    def pass_region_contiguous_rows(self) -> bool:
        """True when every row's pass region is one contiguous run
        (the signature of a clean eye/margin boundary)."""
        for row in self.passes:
            idx = np.flatnonzero(row)
            if len(idx) and not np.array_equal(
                    idx, np.arange(idx[0], idx[-1] + 1)):
                return False
        return True

    def to_dict(self) -> dict:
        """Wire-ready plain-dict form: arrays become nested lists.

        Round-trips exactly through :meth:`from_dict` (grids are
        boolean, so list conversion is lossless) — the form the RPC
        service streams and returns.
        """
        return {
            "x_values": [float(x) for x in self.x_values],
            "y_values": [float(y) for y in self.y_values],
            "passes": np.asarray(self.passes, dtype=bool).tolist(),
            "x_name": self.x_name,
            "y_name": self.y_name,
            "evaluated": np.asarray(self.evaluated,
                                    dtype=bool).tolist(),
            "complete": bool(self.complete),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShmooResult":
        """Rebuild a result from its :meth:`to_dict` form."""
        return cls(
            x_values=tuple(float(x) for x in data["x_values"]),
            y_values=tuple(float(y) for y in data["y_values"]),
            passes=np.array(data["passes"], dtype=bool),
            x_name=data.get("x_name", "x"),
            y_name=data.get("y_name", "y"),
            evaluated=np.array(data["evaluated"], dtype=bool),
            complete=bool(data.get("complete", True)),
        )

    def render(self, pass_char: str = "P",
               fail_char: str = ".") -> str:
        """ASCII plot, first y value at the bottom row."""
        lines = [f"shmoo: {self.y_name} (rows) vs {self.x_name} "
                 f"(cols)"]
        for yi in range(len(self.y_values) - 1, -1, -1):
            row = "".join(pass_char if p else fail_char
                          for p in self.passes[yi])
            lines.append(f"{self.y_values[yi]:>8.3g} |{row}|")
        lines.append(" " * 9 + "^" + f" {self.x_values[0]:g} .. "
                     f"{self.x_values[-1]:g} {self.x_name}")
        return "\n".join(lines)


class ShmooRunner:
    """Runs a pass/fail callable over a 2-D grid.

    Parameters
    ----------
    test:
        Callable ``f(x, y) -> bool``.
    x_name, y_name:
        Axis labels for rendering.
    registry:
        Optional injected telemetry registry; defaults to the
        module-level active one.
    cache:
        Optional :class:`repro.cache.ArtifactCache` active for the
        duration of each sweep, so cells sharing stimulus stages
        (same PRBS stream, same rendered pattern at a given rate)
        reuse them. Serial and thread backends share the object;
        process shards receive its pickled clone — give the cache a
        ``disk_path`` so they also share entries.
    """

    def __init__(self, test: Callable[[float, float], bool],
                 x_name: str = "x", y_name: str = "y",
                 registry=None, cache=None):
        self.test = test
        self.x_name = x_name
        self.y_name = y_name
        self.telemetry = registry
        self.cache = cache

    def _cache_scope(self):
        """Context activating this runner's cache (no-op when unset)."""
        if self.cache is None:
            return contextlib.nullcontext()
        from repro import cache as artifact_cache

        return artifact_cache.use_cache(self.cache)

    def run(self, x_values: Sequence[float],
            y_values: Sequence[float], *,
            progress: Optional[Callable[[int, int], None]] = None,
            should_abort: Optional[Callable[[], bool]] = None,
            executor: Optional[Executor] = None,
            n_shards: Optional[int] = None) -> ShmooResult:
        """Evaluate the grid, serially or sharded over an executor.

        Parameters
        ----------
        progress:
            ``progress(cells_done, cells_total)`` fired as cells
            complete (per cell serially; per finished shard when an
            executor runs the sweep).
        should_abort:
            Polled between cells (serial) or shards (parallel);
            returning True stops the sweep early — unevaluated
            cells are marked in :attr:`ShmooResult.evaluated`.
        executor:
            A :class:`repro.parallel.Executor`; when given, the grid
            is partitioned by :class:`~repro.parallel.ShardPlan` and
            the shards run on its backend. The process backend
            needs a picklable ``test`` callable. Serial behavior,
            grids, and telemetry totals are identical across
            backends.
        n_shards:
            Shards for the parallel path (default: 4 per worker).
        """
        x_values = list(x_values)
        y_values = list(y_values)
        if not x_values or not y_values:
            raise ConfigurationError("both axes need values")
        tel = telemetry.resolve(self.telemetry)
        guard = CallbackGuard(progress, should_abort, registry=tel)
        if guard.active:
            # A raising hook aborts the sweep cleanly (partial grid,
            # complete=False) instead of propagating mid-sweep.
            progress = guard.progress if progress is not None else None
            should_abort = guard.should_abort
        shape = (len(y_values), len(x_values))
        passes = np.zeros(shape, dtype=bool)
        evaluated = np.zeros(shape, dtype=bool)
        with self._cache_scope(), tel.span("shmoo.run"):
            if executor is None:
                aborted = self._run_serial(
                    x_values, y_values, passes, evaluated,
                    progress, should_abort,
                )
            else:
                aborted = self._run_sharded(
                    x_values, y_values, passes, evaluated,
                    progress, should_abort, executor, n_shards,
                )
        n_eval = int(evaluated.sum())
        n_pass = int(passes[evaluated].sum())
        tel.counter("shmoo.runs").inc()
        tel.counter("shmoo.cells").inc(n_eval)
        tel.counter("shmoo.cells_passed").inc(n_pass)
        tel.counter("shmoo.cells_failed").inc(n_eval - n_pass)
        return ShmooResult(
            x_values=tuple(x_values),
            y_values=tuple(y_values),
            passes=passes,
            x_name=self.x_name,
            y_name=self.y_name,
            evaluated=evaluated,
            complete=not aborted,
        )

    def _run_serial(self, x_values, y_values, passes, evaluated,
                    progress, should_abort) -> bool:
        total = passes.size
        done = 0
        for yi, y in enumerate(y_values):
            for xi, x in enumerate(x_values):
                if should_abort is not None and should_abort():
                    return True
                passes[yi, xi] = bool(self.test(x, y))
                evaluated[yi, xi] = True
                done += 1
                if progress is not None:
                    progress(done, total)
        return False

    def _run_sharded(self, x_values, y_values, passes, evaluated,
                     progress, should_abort, executor,
                     n_shards) -> bool:
        if n_shards is None:
            n_shards = executor.max_workers * 4
        plan = ShardPlan.for_grid(x_values, y_values, n_shards)
        fn = functools.partial(_evaluate_shard, self.test,
                               cache=self.cache)

        def on_chunk(done, total, indices) -> None:
            if progress is not None:
                cells = sum(len(plan.shards[i]) for i in indices)
                on_chunk.cells_done += cells
                progress(on_chunk.cells_done, plan.total)
        on_chunk.cells_done = 0

        outcome = executor.run(fn, plan.shards,
                               progress=on_chunk,
                               should_abort=should_abort)
        for shard, results in zip(plan.shards, outcome.results):
            if results is None:
                continue
            for (yi, xi, _x, _y), ok in zip(shard.items, results):
                passes[yi, xi] = ok
                evaluated[yi, xi] = True
        return outcome.aborted

    # -- adaptive boundary refinement ---------------------------------------

    def run_adaptive(self, x_values: Sequence[float],
                     y_values: Sequence[float], *,
                     coarse_step: int = 8,
                     progress: Optional[Callable[[int, int], None]] = None,
                     should_abort: Optional[Callable[[], bool]] = None,
                     executor: Optional[Executor] = None) -> ShmooResult:
        """Shmoo the grid evaluating only near the pass/fail boundary.

        A coarse lattice (every *coarse_step*-th row/column, plus the
        last of each) is evaluated first. Each coarse block whose
        four corners agree is filled with the corners' verdict
        without evaluating its interior; blocks whose corners
        disagree straddle the boundary and are subdivided at their
        midpoints, recursively, down to single cells. Refinement
        proceeds in waves — every wave's new lattice points are
        evaluated as one batch, serially or through *executor* — so
        the parallel backends stay saturated.

        The returned :attr:`ShmooResult.passes` equals the
        exhaustive sweep's exactly whenever every agreeing coarse
        block is uniform — guaranteed for pass regions that are
        monotone (or per-row/column contiguous) at the coarse scale,
        the shape of every margin boundary in the paper's Figures
        10/11. Pass features smaller than the coarse lattice can be
        missed; shrink *coarse_step* to bound the feature size.
        :attr:`ShmooResult.evaluated` marks the cells actually
        tested — typically 10-25% of the grid — and inferred cells
        show ``evaluated=False`` with ``complete=True``.

        Parameters
        ----------
        coarse_step:
            Initial lattice stride; a power of two >= 2.
        progress:
            ``progress(cells_evaluated, cells_total)`` fired after
            every refinement wave (total is the full grid size).
        should_abort:
            Polled between cells (serial) or batch items (executor);
            aborting returns ``complete=False`` with the cells
            covered so far.
        executor:
            Optional :class:`repro.parallel.Executor` used to
            evaluate each wave's batch.
        """
        x_values = list(x_values)
        y_values = list(y_values)
        if not x_values or not y_values:
            raise ConfigurationError("both axes need values")
        if coarse_step < 2 or (coarse_step & (coarse_step - 1)) != 0:
            raise ConfigurationError(
                f"coarse_step must be a power of two >= 2, "
                f"got {coarse_step}"
            )
        nx, ny = len(x_values), len(y_values)
        if nx < 2 or ny < 2:
            # Nothing to infer on a degenerate grid.
            return self.run(x_values, y_values, progress=progress,
                            should_abort=should_abort,
                            executor=executor)
        tel = telemetry.resolve(self.telemetry)
        guard = CallbackGuard(progress, should_abort, registry=tel)
        if guard.active:
            progress = guard.progress if progress is not None else None
            should_abort = guard.should_abort
        shape = (ny, nx)
        passes = np.zeros(shape, dtype=bool)
        evaluated = np.zeros(shape, dtype=bool)
        known = np.zeros(shape, dtype=bool)
        total = nx * ny

        with self._cache_scope(), tel.span("shmoo.run_adaptive"):
            xs = sorted(set(range(0, nx, coarse_step)) | {nx - 1})
            ys = sorted(set(range(0, ny, coarse_step)) | {ny - 1})
            seed_cells = [(yi, xi) for yi in ys for xi in xs]
            aborted = self._evaluate_cells(
                seed_cells, x_values, y_values, passes, evaluated,
                should_abort, executor,
            )
            known |= evaluated
            if progress is not None:
                progress(int(evaluated.sum()), total)
            blocks = [(xa, xb, ya, yb)
                      for ya, yb in zip(ys, ys[1:])
                      for xa, xb in zip(xs, xs[1:])]
            while blocks and not aborted:
                next_blocks = []
                batch = set()
                for x0, x1, y0, y1 in blocks:
                    corner = passes[y0, x0]
                    if (passes[y0, x1] == corner
                            and passes[y1, x0] == corner
                            and passes[y1, x1] == corner):
                        region = (slice(y0, y1 + 1), slice(x0, x1 + 1))
                        fill = ~known[region]
                        passes[region][fill] = corner
                        known[region] = True
                        continue
                    if x1 - x0 <= 1 and y1 - y0 <= 1:
                        # A 2x2 block is all corners: fully evaluated.
                        known[y0:y1 + 1, x0:x1 + 1] = True
                        continue
                    xs_sub = sorted({x0, (x0 + x1) // 2, x1})
                    ys_sub = sorted({y0, (y0 + y1) // 2, y1})
                    for yi in ys_sub:
                        for xi in xs_sub:
                            if not evaluated[yi, xi]:
                                batch.add((yi, xi))
                    next_blocks.extend(
                        (xa, xb, ya, yb)
                        for ya, yb in zip(ys_sub, ys_sub[1:])
                        for xa, xb in zip(xs_sub, xs_sub[1:])
                    )
                if batch and not aborted:
                    aborted = self._evaluate_cells(
                        sorted(batch), x_values, y_values, passes,
                        evaluated, should_abort, executor,
                    )
                    known |= evaluated
                    if progress is not None:
                        progress(int(evaluated.sum()), total)
                blocks = next_blocks
            if not aborted and not known.all():
                # Safety net; the recursion covers every cell, but an
                # explicit sweep of stragglers keeps the completeness
                # invariant independent of the block bookkeeping.
                leftovers = [(int(yi), int(xi))
                             for yi, xi in np.argwhere(~known)]
                aborted = self._evaluate_cells(
                    leftovers, x_values, y_values, passes, evaluated,
                    should_abort, executor,
                )
                known |= evaluated

        n_eval = int(evaluated.sum())
        n_pass = int(passes[evaluated].sum())
        # A filled cell may later be evaluated as a finer lattice
        # point (evaluation is ground truth and wins), so the filled
        # count is the covered-but-never-evaluated residue.
        n_filled = int(known.sum()) - n_eval
        tel.counter("shmoo.runs").inc()
        tel.counter("shmoo.cells").inc(n_eval)
        tel.counter("shmoo.cells_passed").inc(n_pass)
        tel.counter("shmoo.cells_failed").inc(n_eval - n_pass)
        tel.counter("shmoo.cells_filled").inc(n_filled)
        return ShmooResult(
            x_values=tuple(x_values),
            y_values=tuple(y_values),
            passes=passes,
            x_name=self.x_name,
            y_name=self.y_name,
            evaluated=evaluated,
            complete=not aborted,
        )

    def _evaluate_cells(self, cells, x_values, y_values, passes,
                        evaluated, should_abort, executor) -> bool:
        """Evaluate index pairs into the grids; True when aborted."""
        items = [(yi, xi, x_values[xi], y_values[yi])
                 for yi, xi in cells]
        if executor is None:
            for yi, xi, x, y in items:
                if should_abort is not None and should_abort():
                    return True
                passes[yi, xi] = bool(self.test(x, y))
                evaluated[yi, xi] = True
            return False
        fn = functools.partial(_evaluate_cell, self.test,
                               cache=self.cache)
        outcome = executor.run(fn, items, should_abort=should_abort)
        for (yi, xi, _x, _y), ok in zip(items, outcome.results):
            if ok is None:
                continue
            passes[yi, xi] = bool(ok)
            evaluated[yi, xi] = True
        return outcome.aborted


def strobe_rate_test(minitester, n_bits: int = 300,
                     seed: int = 1) -> Callable[[float, float], bool]:
    """The mini-tester's canonical shmoo cell as a callable.

    Returns ``test(rate_gbps, strobe_frac) -> bool``: one loopback
    at *rate_gbps* with the sampler strobed at *strobe_frac* of the
    unit interval. Shared by :func:`minitester_strobe_rate_shmoo`
    and the service layer's builtin ``shmoo`` job, so both paths
    evaluate bit-identical cells.
    """
    def test(rate: float, frac: float) -> bool:
        ui = 1_000.0 / rate
        step = minitester.receiver.sampler.resolution
        code = int(round(frac * ui / step))
        code = min(code, minitester.receiver.sampler
                   .delay_line.n_codes - 1)
        result = minitester.run_loopback(
            n_bits=n_bits, seed=seed, rate_gbps=rate,
            strobe_code=code,
        )
        return result.passed

    return test


def minitester_strobe_rate_shmoo(minitester, rates: Sequence[float],
                                 strobe_fracs: Sequence[float],
                                 n_bits: int = 300,
                                 seed: int = 1,
                                 registry=None) -> ShmooResult:
    """The mini-tester's natural shmoo: strobe position vs rate.

    Parameters
    ----------
    strobe_fracs:
        Strobe positions as fractions of the unit interval.
    registry:
        Optional injected telemetry registry for the runner.
    """
    runner = ShmooRunner(strobe_rate_test(minitester, n_bits=n_bits,
                                          seed=seed),
                         x_name="rate (Gbps)",
                         y_name="strobe (UI)", registry=registry)
    return runner.run(rates, strobe_fracs)
