"""PC-side control stack.

The "PC Controller" of Figure 1: connects to the DLC over USB,
programs the configuration FLASH over JTAG, and runs declarative
test programs whose results land in a datalog.
"""

from repro.host.controller import PCController
from repro.host.testprogram import TestProgram, TestStep, Limit
from repro.host.results import TestRecord, Datalog, Verdict
from repro.host.shmoo import (
    ShmooResult, ShmooRunner, minitester_strobe_rate_shmoo,
    strobe_rate_test,
)
from repro.host.session import SessionReport, TestSession

__all__ = [
    "PCController",
    "TestProgram",
    "TestStep",
    "Limit",
    "TestRecord",
    "Datalog",
    "Verdict",
    "ShmooRunner",
    "ShmooResult",
    "minitester_strobe_rate_shmoo",
    "strobe_rate_test",
    "TestSession",
    "SessionReport",
]
