"""Test results and the datalog.

Every measurement a test program makes becomes a record with its
limits and verdict; the datalog aggregates records into the
pass/fail summary and an exportable table.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional

from repro.errors import ConfigurationError


class Verdict(enum.Enum):
    """Outcome of one measurement against its limits."""

    PASS = "pass"
    FAIL = "fail"
    INFO = "info"
    """Logged without limits."""


@dataclasses.dataclass(frozen=True)
class TestRecord:
    """One datalogged measurement.

    Attributes
    ----------
    name:
        Measurement identifier.
    value:
        Measured value.
    units:
        Units string for reports.
    lo, hi:
        Limits (None = unbounded on that side).
    verdict:
        PASS/FAIL/INFO.
    """

    __test__ = False  # not a pytest collection target

    name: str
    value: float
    units: str = ""
    lo: Optional[float] = None
    hi: Optional[float] = None
    verdict: Verdict = Verdict.INFO

    @classmethod
    def judged(cls, name: str, value: float, lo: Optional[float],
               hi: Optional[float], units: str = "") -> "TestRecord":
        """Build a record and judge it against its limits."""
        ok = True
        if lo is not None and value < lo:
            ok = False
        if hi is not None and value > hi:
            ok = False
        if lo is None and hi is None:
            verdict = Verdict.INFO
        else:
            verdict = Verdict.PASS if ok else Verdict.FAIL
        return cls(name, float(value), units, lo, hi, verdict)

    def __str__(self) -> str:
        limits = ""
        if self.lo is not None or self.hi is not None:
            limits = f" [{self.lo}, {self.hi}]"
        return (f"{self.name}: {self.value:g} {self.units}{limits} "
                f"-> {self.verdict.value.upper()}")


class Datalog:
    """Accumulates records across a test program run."""

    def __init__(self):
        self._records: List[TestRecord] = []

    def add(self, record: TestRecord) -> None:
        """Append one record."""
        self._records.append(record)

    def log(self, name: str, value: float, lo: Optional[float] = None,
            hi: Optional[float] = None, units: str = "") -> TestRecord:
        """Judge and append in one call."""
        record = TestRecord.judged(name, value, lo, hi, units)
        self.add(record)
        return record

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    @property
    def records(self) -> List[TestRecord]:
        """All records in order."""
        return list(self._records)

    def failures(self) -> List[TestRecord]:
        """Records that failed their limits."""
        return [r for r in self._records if r.verdict is Verdict.FAIL]

    @property
    def passed(self) -> bool:
        """True when nothing failed."""
        return not self.failures()

    def by_name(self, name: str) -> List[TestRecord]:
        """All records with a given measurement name."""
        return [r for r in self._records if r.name == name]

    def summary(self) -> Dict[str, int]:
        """Record counts per verdict."""
        out = {v.value: 0 for v in Verdict}
        for r in self._records:
            out[r.verdict.value] += 1
        return out

    def to_csv(self) -> str:
        """Export as CSV text (header + one line per record)."""
        lines = ["name,value,units,lo,hi,verdict"]
        for r in self._records:
            lo = "" if r.lo is None else f"{r.lo:g}"
            hi = "" if r.hi is None else f"{r.hi:g}"
            lines.append(
                f"{r.name},{r.value:g},{r.units},{lo},{hi},"
                f"{r.verdict.value}"
            )
        return "\n".join(lines)
