"""The production test session: the whole flow in one object.

Bring-up order on a real bench: connect to the board, run the
power-on self-test, calibrate timing, qualify the signal path, then
sort the wafer and export its map. :class:`TestSession` sequences
exactly that, leaving a datalog trail at every step.
"""

from __future__ import annotations

import dataclasses
import functools
import math
from typing import Optional, Tuple

import numpy as np

from repro import telemetry
from repro._rng import spawn_seeds
from repro.errors import ConfigurationError, ReproError
from repro.core.minitester import MiniTester
from repro.parallel import Executor, ShardPlan, ber_shard_worker
from repro.dlc.selftest import SelfTestReport, run_self_test
from repro.host.results import Datalog
from repro.host.testprogram import TestProgram, standard_eye_program
from repro.pecl.vernier import TimingVernier
from repro.wafer.inkmap import export_map_file, summarize
from repro.wafer.map import WaferMap
from repro.wafer.probe import ProbeCard
from repro.wafer.scheduler import MultiSiteScheduler


@dataclasses.dataclass
class SessionReport:
    """Everything a finished session produced.

    Attributes
    ----------
    self_test:
        The board's power-on self-test report.
    calibration_error_ps:
        Worst edge-placement error after calibration.
    qualification:
        The signal-path qualification datalog.
    wafers_sorted:
        Wafers completed.
    map_files:
        Exported map-file texts, one per wafer.
    """

    self_test: Optional[SelfTestReport] = None
    calibration_error_ps: Optional[float] = None
    qualification: Optional[Datalog] = None
    wafers_sorted: int = 0
    map_files: list = dataclasses.field(default_factory=list)

    @property
    def ready_for_production(self) -> bool:
        """Self-test passed, calibrated within claim, path qualified."""
        return (self.self_test is not None and self.self_test.passed
                and self.calibration_error_ps is not None
                and self.calibration_error_ps <= 25.0
                and self.qualification is not None
                and self.qualification.passed)


@dataclasses.dataclass(frozen=True)
class BERCharacterization:
    """An aggregated (possibly sharded) bit-error-rate measurement.

    Attributes
    ----------
    total_bits, total_errors:
        Pooled totals over every shard.
    shard_errors:
        Per-shard error counts in canonical shard order.
    rate_gbps:
        Data rate characterized.
    """

    total_bits: int
    total_errors: int
    shard_errors: Tuple[int, ...]
    rate_gbps: float

    @property
    def n_shards(self) -> int:
        """Shards the measurement was split into."""
        return len(self.shard_errors)

    @property
    def ber(self) -> float:
        """Pooled bit-error ratio."""
        if self.total_bits == 0:
            return 0.0
        return self.total_errors / self.total_bits

    @property
    def ber_upper_95(self) -> float:
        """95% upper confidence bound on the true BER.

        The standard "rule of 3" for zero errors; a normal
        approximation to the Poisson bound otherwise.
        """
        if self.total_bits == 0:
            return 1.0
        if self.total_errors == 0:
            return 3.0 / self.total_bits
        return (self.total_errors
                + 1.645 * math.sqrt(self.total_errors)) / self.total_bits

    def to_dict(self) -> dict:
        """Wire-ready plain-dict form (for the RPC service layer)."""
        return {
            "total_bits": int(self.total_bits),
            "total_errors": int(self.total_errors),
            "shard_errors": [int(e) for e in self.shard_errors],
            "rate_gbps": float(self.rate_gbps),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BERCharacterization":
        """Rebuild a characterization from its :meth:`to_dict` form."""
        return cls(
            total_bits=int(data["total_bits"]),
            total_errors=int(data["total_errors"]),
            shard_errors=tuple(int(e) for e in data["shard_errors"]),
            rate_gbps=float(data["rate_gbps"]),
        )

    def __str__(self) -> str:
        return (f"{self.total_errors}/{self.total_bits} errors "
                f"(BER {self.ber:.2e}, 95% <= {self.ber_upper_95:.2e}, "
                f"{self.n_shards} shards)")


class TestSession:
    """Sequences bring-up and production on one mini-tester.

    Parameters
    ----------
    tester:
        The system under session control; a fresh 5 Gbps
        mini-tester by default.
    registry:
        Optional injected telemetry registry; defaults to the
        module-level active one.
    """

    __test__ = False  # not a pytest collection target

    def __init__(self, tester: Optional[MiniTester] = None,
                 registry=None):
        self.telemetry = registry
        self.tester = tester if tester is not None \
            else MiniTester(registry=registry)
        self.report = SessionReport()
        self._stage = "created"

    @property
    def stage(self) -> str:
        """The last completed stage name."""
        return self._stage

    # -- bring-up steps, in order ---------------------------------------

    def power_on(self) -> SelfTestReport:
        """Step 1: the board checks itself."""
        tel = telemetry.resolve(self.telemetry)
        with tel.span("session.power_on"):
            self.report.self_test = run_self_test(self.tester.dlc)
        self._stage = "self-test"
        if not self.report.self_test.passed:
            tel.counter("session.failures").inc()
            raise ReproError(
                "power-on self-test failed; board needs repair"
            )
        return self.report.self_test

    def calibrate(self, rng: Optional[np.random.Generator] = None
                  ) -> float:
        """Step 2: calibrate the edge-placement vernier."""
        self._require_stage("self-test")
        if rng is None:
            rng = np.random.default_rng(31)
        tel = telemetry.resolve(self.telemetry)
        with tel.span("session.calibrate"):
            line = self.tester.transmitter.delay_line
            saved_code = line.code
            vernier = TimingVernier(line, measurement_noise_rms=1.0)
            vernier.calibrate(rng=rng)
            worst = vernier.worst_case_error(n_targets=100, margin=30.0)
            # The sweep leaves the line at its last target; restore
            # the operating point so calibration does not shift the
            # output.
            line.set_code(saved_code)
        self.report.calibration_error_ps = worst
        self._stage = "calibrated"
        return worst

    def qualify(self, program: Optional[TestProgram] = None) -> Datalog:
        """Step 3: qualify the signal path against limits."""
        self._require_stage("calibrated")
        if program is None:
            program = standard_eye_program(
                self.tester.rate_gbps, min_opening_ui=0.65,
                n_bits=2000,
            )
        tel = telemetry.resolve(self.telemetry)
        with tel.span("session.qualify"):
            datalog = program.run(self.tester)
        self.report.qualification = datalog
        self._stage = "qualified"
        if not datalog.passed:
            tel.counter("session.failures").inc()
            raise ReproError(
                "signal-path qualification failed: "
                + "; ".join(str(r) for r in datalog.failures())
            )
        return datalog

    def characterize_ber(self, total_bits: int = 20_000,
                         n_shards: int = 4,
                         seed: int = 1,
                         rate_gbps: Optional[float] = None,
                         executor: Optional[Executor] = None
                         ) -> BERCharacterization:
        """Deep BER characterization, optionally sharded over workers.

        The *total_bits* budget is partitioned by
        :meth:`ShardPlan.for_range`; each shard loops back its bit
        count with a seed spawned deterministically from *seed*, so
        the serial path and every executor backend measure the same
        shard set and pool to identical totals. Executor workers
        rebuild the tester from :meth:`TestSystem.clone_spec` and
        cache it for their lifetime (the replicated-array model);
        testers customized beyond their clone spec characterize the
        clone, not the customization.
        """
        self._require_stage("qualified")
        if total_bits < 1:
            raise ConfigurationError("need a positive bit budget")
        rate = self.tester.rate_gbps if rate_gbps is None else rate_gbps
        plan = ShardPlan.for_range(total_bits, n_shards)
        ranges = [shard.items[0] for shard in plan.shards]
        tel = telemetry.resolve(self.telemetry)
        with tel.span("session.characterize_ber"):
            if executor is None:
                seeds = spawn_seeds(len(ranges), root=seed)
                counts = [
                    self.tester.run_loopback(n_bits=int(count),
                                             seed=int(s),
                                             rate_gbps=rate).ber
                    for (_, count), s in zip(ranges, seeds)
                ]
                pairs = [(b.n_bits, b.n_errors) for b in counts]
            else:
                fn = functools.partial(ber_shard_worker,
                                       self.tester.clone_spec(), rate)
                outcome = executor.run(fn, ranges, seed_root=seed)
                pairs = outcome.results
        result = BERCharacterization(
            total_bits=sum(b for b, _ in pairs),
            total_errors=sum(e for _, e in pairs),
            shard_errors=tuple(e for _, e in pairs),
            rate_gbps=rate,
        )
        tel.counter("session.ber_characterizations").inc()
        tel.counter("session.ber_bits").inc(result.total_bits)
        tel.counter("session.ber_errors").inc(result.total_errors)
        return result

    # -- production -------------------------------------------------------

    def sort_wafer(self, wafer: WaferMap,
                   card: Optional[ProbeCard] = None,
                   lot_id: str = "LOT01",
                   seed: int = 0, **scheduler_kwargs) -> str:
        """Step 4 (repeatable): sort one wafer; returns its map file."""
        self._require_stage("qualified")
        card = card if card is not None else ProbeCard(n_sites=4)
        scheduler = MultiSiteScheduler(card, **scheduler_kwargs)
        tel = telemetry.resolve(self.telemetry)
        with tel.span("session.sort_wafer"):
            scheduler.sort_wafer(wafer, seed=seed)
            scheduler.retest_skipped(wafer, seed=seed + 1)
        tel.counter("session.wafers_sorted").inc()
        self.report.wafers_sorted += 1
        wafer_id = f"W{self.report.wafers_sorted:02d}"
        map_file = export_map_file(wafer, lot_id=lot_id,
                                   wafer_id=wafer_id)
        self.report.map_files.append(map_file)
        return map_file

    def _require_stage(self, needed: str) -> None:
        order = ["created", "self-test", "calibrated", "qualified"]
        if order.index(self._stage) < order.index(needed):
            raise ConfigurationError(
                f"session is at stage {self._stage!r}; run the "
                f"{needed!r} step first"
            )

    def run_bring_up(self) -> SessionReport:
        """Steps 1-3 in order; returns the session report."""
        tel = telemetry.resolve(self.telemetry)
        with tel.span("session.bring_up"):
            self.power_on()
            self.calibrate()
            self.qualify()
        tel.counter("session.bring_ups").inc()
        return self.report
