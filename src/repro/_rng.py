"""Deterministic RNG stream spawning for sharded execution.

Every parallel path in the stack derives its per-shard randomness
from one root through :class:`numpy.random.SeedSequence`, so a run
split over 16 workers consumes exactly the same seeds as the same
run executed serially — shard k sees seed k no matter which worker
picks it up or in what order shards complete.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError

#: Entropy accepted as a spawn root: a single int or a sequence of
#: ints (e.g. ``[seed, touchdown_index]`` to key a sub-stream).
RootEntropy = Union[int, Sequence[int], None]


def spawn_seed_sequences(n: int, root: RootEntropy = None
                         ) -> List[np.random.SeedSequence]:
    """*n* independent child :class:`~numpy.random.SeedSequence`\\ s.

    Parameters
    ----------
    n:
        Number of children (>= 0).
    root:
        Root entropy — an int, a sequence of ints, or None for
        OS entropy (non-reproducible; parallel callers always pass
        a root).
    """
    if n < 0:
        raise ConfigurationError(f"need n >= 0, got {n}")
    return list(np.random.SeedSequence(root).spawn(n))


def spawn_seeds(n: int, root: RootEntropy = None) -> List[int]:
    """*n* independent 32-bit integer seeds derived from *root*.

    The integers are plain (picklable) python ints in
    ``[1, 2**32)``, sized to fit hardware seed registers (the DLC's
    ``LFSR_SEED`` is 32 bits wide) and suitable for
    :func:`numpy.random.default_rng`. Deterministic in *root*:
    serial and sharded consumers of the same root see the same
    seed list.
    """
    seeds = []
    for child in spawn_seed_sequences(n, root):
        value = int(child.generate_state(1, np.uint32)[0])
        seeds.append(value or 1)
    return seeds


def spawn_generators(n: int, root: RootEntropy = None
                     ) -> List[np.random.Generator]:
    """*n* independent generators derived from *root* (one per shard)."""
    return [np.random.default_rng(child)
            for child in spawn_seed_sequences(n, root)]
