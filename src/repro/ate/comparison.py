"""Capability comparison: DLC+PECL systems vs conventional ATE.

The paper argues the customized approach trades generality for
performance-per-dollar: fewer features, but rates and timing
resolution "comparable to (and in some ways exceeding) more
expensive ATE". This module renders that comparison as data.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.ate.cost import (
    CostModel,
    dlc_testbed_bom,
    minitester_bom,
)


@dataclasses.dataclass(frozen=True)
class CapabilityComparison:
    """One capability axis, both systems' values.

    Attributes
    ----------
    axis:
        What is being compared.
    dlc_value, ate_value:
        Each approach's figure (strings for qualitative axes).
    dlc_wins:
        Whether the DLC approach is at least as good here.
    """

    axis: str
    dlc_value: str
    ate_value: str
    dlc_wins: bool


#: Representative mid-2000s high-end digital ATE capabilities.
_ATE_2004 = {
    "max_rate_gbps": 3.2,
    "timing_resolution_ps": 39.0,
    "edge_accuracy_ps": 50.0,
    "channels": 256,
}


def compare_systems(mini_rate_gbps: float = 5.0,
                    delay_step_ps: float = 10.0,
                    accuracy_ps: float = 25.0) -> List[CapabilityComparison]:
    """The capability table of DESIGN.md's summary experiment."""
    if mini_rate_gbps <= 0.0:
        raise ConfigurationError("rate must be positive")
    return [
        CapabilityComparison(
            "max data rate (Gbps)",
            f"{mini_rate_gbps:g}",
            f"{_ATE_2004['max_rate_gbps']:g}",
            mini_rate_gbps >= _ATE_2004["max_rate_gbps"],
        ),
        CapabilityComparison(
            "timing resolution (ps)",
            f"{delay_step_ps:g}",
            f"{_ATE_2004['timing_resolution_ps']:g}",
            delay_step_ps <= _ATE_2004["timing_resolution_ps"],
        ),
        CapabilityComparison(
            "edge placement accuracy (ps)",
            f"+/-{accuracy_ps:g}",
            f"+/-{_ATE_2004['edge_accuracy_ps']:g}",
            accuracy_ps <= _ATE_2004["edge_accuracy_ps"],
        ),
        CapabilityComparison(
            "channel count",
            "5-16 (customized)",
            f"{_ATE_2004['channels']}",
            False,
        ),
        CapabilityComparison(
            "general-purpose features",
            "application-specific",
            "full production suite",
            False,
        ),
    ]


def cost_summary() -> Dict[str, float]:
    """Per-channel costs of all three systems, USD."""
    testbed = CostModel(dlc_testbed_bom(), n_channels=10)
    mini = CostModel(minitester_bom(), n_channels=2)
    return {
        "testbed_per_channel": testbed.per_channel(),
        "minitester_per_channel": mini.per_channel(),
        "ate_per_channel": testbed.ate_per_channel(),
        "testbed_savings_factor": testbed.savings_factor(),
        "minitester_savings_factor": mini.savings_factor(),
    }
