"""Conventional-ATE baseline: cost and capability comparison.

The paper's headline: "the use of low-cost commercial off-the-shelf
components results in test systems that are significantly lower in
cost than conventional ATE." This package quantifies the claim with
a per-channel cost model of both approaches.
"""

from repro.ate.cost import (
    CostModel,
    BillOfMaterials,
    LineItem,
    dlc_testbed_bom,
    minitester_bom,
    conventional_ate_cost,
)
from repro.ate.comparison import CapabilityComparison, compare_systems

__all__ = [
    "CostModel",
    "BillOfMaterials",
    "LineItem",
    "dlc_testbed_bom",
    "minitester_bom",
    "conventional_ate_cost",
    "CapabilityComparison",
    "compare_systems",
]
