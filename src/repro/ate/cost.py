"""Cost models: DLC-based testers vs conventional ATE.

Prices are circa-2004 catalog/list figures (the paper's era): FPGAs
and PECL parts in the tens-to-hundreds of dollars, multi-GHz ATE in
the thousands of dollars *per channel* plus a seven-figure base
system. Absolute numbers are indicative; the *ratio* is the claim
under test.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class LineItem:
    """One bill-of-materials entry.

    Attributes
    ----------
    part:
        Part description.
    unit_cost:
        USD each.
    quantity:
        Count used.
    """

    part: str
    unit_cost: float
    quantity: int = 1

    def __post_init__(self):
        if self.unit_cost < 0.0:
            raise ConfigurationError("unit cost must be >= 0")
        if self.quantity < 1:
            raise ConfigurationError("quantity must be >= 1")

    @property
    def extended(self) -> float:
        """unit_cost * quantity."""
        return self.unit_cost * self.quantity


class BillOfMaterials:
    """A named parts list with totals."""

    def __init__(self, name: str, items: List[LineItem] = None):
        if not name:
            raise ConfigurationError("BOM name must be non-empty")
        self.name = name
        self.items: List[LineItem] = list(items or [])

    def add(self, part: str, unit_cost: float,
            quantity: int = 1) -> "BillOfMaterials":
        """Append an item; returns self for chaining."""
        self.items.append(LineItem(part, unit_cost, quantity))
        return self

    @property
    def total(self) -> float:
        """Total BOM cost, USD."""
        return sum(item.extended for item in self.items)

    def per_channel(self, n_channels: int) -> float:
        """Cost per high-speed channel."""
        if n_channels < 1:
            raise ConfigurationError("need >= 1 channel")
        return self.total / n_channels


def dlc_testbed_bom() -> BillOfMaterials:
    """The Optical Test Bed electronics (5 TX + 5 RX channels)."""
    bom = BillOfMaterials("optical_testbed")
    bom.add("XC2V1000 FPGA", 350.0)
    bom.add("USB microcontroller", 12.0)
    bom.add("FLASH memory", 8.0)
    bom.add("12 MHz crystal", 2.0)
    bom.add("PECL serializer (8:1)", 45.0, 10)
    bom.add("PECL delay line", 60.0, 10)
    bom.add("PECL clock fanout", 25.0, 2)
    bom.add("SiGe output buffer", 30.0, 10)
    bom.add("voltage tuning DACs", 15.0, 10)
    bom.add("PCB (multi-layer, controlled impedance)", 900.0)
    bom.add("SMA connectors", 9.0, 24)
    bom.add("passives/regulators", 150.0)
    return bom


def minitester_bom() -> BillOfMaterials:
    """One mini-tester module (1 TX at 5 Gbps + sampler)."""
    bom = BillOfMaterials("minitester")
    bom.add("XC2V1000 FPGA", 350.0)
    bom.add("USB microcontroller", 12.0)
    bom.add("FLASH memory", 8.0)
    bom.add("PECL serializer (8:1)", 45.0, 2)
    bom.add("PECL 2:1 output mux", 35.0)
    bom.add("PECL delay line", 60.0, 3)
    bom.add("PECL sampler/comparator", 55.0)
    bom.add("PECL clock fanout + XOR", 40.0)
    bom.add("differential I/O buffers", 30.0, 2)
    bom.add("voltage tuning DACs", 15.0, 2)
    bom.add("PCB (probe-card topside module)", 600.0)
    bom.add("passives/regulators", 100.0)
    return bom


def conventional_ate_cost(n_channels: int,
                          base_system: float = 1_500_000.0,
                          per_channel: float = 15_000.0,
                          amortized_channels: int = 256) -> float:
    """Effective cost of *n_channels* of multi-GHz conventional ATE.

    The base system amortizes over its full channel count; each
    multi-gigahertz channel card adds its own cost.
    """
    if n_channels < 1:
        raise ConfigurationError("need >= 1 channel")
    if amortized_channels < 1:
        raise ConfigurationError("amortization base must be >= 1")
    share = base_system * (n_channels / amortized_channels)
    return share + per_channel * n_channels


class CostModel:
    """Puts the two approaches side by side.

    Parameters
    ----------
    bom:
        The DLC-based system's parts list.
    n_channels:
        Multi-gigahertz channels the system provides.
    nre:
        One-time engineering cost allocated to this system (board
        design, FPGA design). The paper's approach concentrates cost
        here instead of in hardware.
    """

    def __init__(self, bom: BillOfMaterials, n_channels: int,
                 nre: float = 25_000.0):
        if n_channels < 1:
            raise ConfigurationError("need >= 1 channel")
        if nre < 0.0:
            raise ConfigurationError("NRE must be >= 0")
        self.bom = bom
        self.n_channels = int(n_channels)
        self.nre = float(nre)

    @property
    def system_cost(self) -> float:
        """BOM + NRE for one system."""
        return self.bom.total + self.nre

    def per_channel(self) -> float:
        """Cost per multi-GHz channel, NRE included."""
        return self.system_cost / self.n_channels

    def ate_per_channel(self, **kwargs) -> float:
        """Conventional ATE cost per channel, same channel count."""
        return conventional_ate_cost(self.n_channels, **kwargs) \
            / self.n_channels

    def savings_factor(self, **kwargs) -> float:
        """How many times cheaper the DLC approach is per channel."""
        return self.ate_per_channel(**kwargs) / self.per_channel()

    def replication_cost(self, n_copies: int) -> float:
        """Cost of *n_copies* (NRE paid once) — the array of Fig. 13."""
        if n_copies < 1:
            raise ConfigurationError("need >= 1 copy")
        return self.nre + n_copies * self.bom.total
