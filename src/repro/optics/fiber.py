"""Optical fiber span.

Short intra-cluster spans (the Data Vortex targets "low-latency
transfer of small data packets within clusters of supercomputers"),
so attenuation is small and chromatic dispersion only matters as a
mild bandwidth limit at these lengths.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.signal.waveform import Waveform
from repro.signal.edges import sigma_for_erf_edge

#: Light travels ~4.9 ns per meter of standard single-mode fiber.
FIBER_DELAY_PS_PER_M = 4_900.0


class FiberSpan:
    """A single-mode fiber span.

    Parameters
    ----------
    length_m:
        Span length in meters.
    attenuation_db_per_km:
        Fiber loss density (0.2 dB/km typical at 1550 nm).
    dispersion_ps_nm_km:
        Chromatic dispersion parameter D.
    source_linewidth_nm:
        Effective spectral width of the modulated source (sets how
        much pulse spreading D produces).
    """

    def __init__(self, length_m: float = 50.0,
                 attenuation_db_per_km: float = 0.2,
                 dispersion_ps_nm_km: float = 17.0,
                 source_linewidth_nm: float = 0.1):
        if length_m <= 0.0:
            raise ConfigurationError("length must be positive")
        if attenuation_db_per_km < 0.0:
            raise ConfigurationError("attenuation must be >= 0")
        if source_linewidth_nm <= 0.0:
            raise ConfigurationError("linewidth must be positive")
        self.length_m = float(length_m)
        self.attenuation_db_per_km = float(attenuation_db_per_km)
        self.dispersion_ps_nm_km = float(dispersion_ps_nm_km)
        self.source_linewidth_nm = float(source_linewidth_nm)

    @property
    def loss_db(self) -> float:
        """Total span loss, dB."""
        return self.attenuation_db_per_km * self.length_m / 1000.0

    @property
    def delay_ps(self) -> float:
        """Propagation delay, ps."""
        return FIBER_DELAY_PS_PER_M * self.length_m

    @property
    def pulse_spread_ps(self) -> float:
        """RMS pulse spreading from dispersion, ps."""
        return abs(self.dispersion_ps_nm_km) * self.source_linewidth_nm \
            * self.length_m / 1000.0

    def propagate(self, power: Waveform) -> Waveform:
        """Carry an optical power waveform through the span."""
        gain = 10.0 ** (-self.loss_db / 10.0)
        values = power.values * gain
        spread = self.pulse_spread_ps
        if spread > 0.05 * power.dt:
            from scipy.ndimage import gaussian_filter1d

            values = gaussian_filter1d(values, spread / power.dt,
                                       mode="nearest")
        return Waveform(values, dt=power.dt, t0=power.t0 + self.delay_ps)
