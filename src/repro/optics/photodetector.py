"""Photodetector + transimpedance amplifier receiver.

Back to the electrical domain at the receiving end: responsivity
converts optical power to photocurrent, the TIA converts current to
voltage with finite bandwidth, and shot + thermal noise set the
receiver's sensitivity floor.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.signal.waveform import Waveform

#: Electron charge, coulombs (for shot noise).
_Q_ELECTRON = 1.602e-19


class Photodetector:
    """PIN photodiode + TIA.

    Parameters
    ----------
    responsivity_a_w:
        Photodiode responsivity, A/W (~0.9 typical InGaAs at 1550 nm).
    tia_gain_ohm:
        Transimpedance, volts out per amp in.
    bandwidth_ghz:
        Receiver bandwidth.
    thermal_noise_pa_rthz:
        Input-referred current noise density, pA/sqrt(Hz).
    """

    def __init__(self, responsivity_a_w: float = 0.9,
                 tia_gain_ohm: float = 500.0,
                 bandwidth_ghz: float = 7.0,
                 thermal_noise_pa_rthz: float = 15.0):
        if responsivity_a_w <= 0.0:
            raise ConfigurationError("responsivity must be positive")
        if tia_gain_ohm <= 0.0:
            raise ConfigurationError("TIA gain must be positive")
        if bandwidth_ghz <= 0.0:
            raise ConfigurationError("bandwidth must be positive")
        if thermal_noise_pa_rthz < 0.0:
            raise ConfigurationError("noise density must be >= 0")
        self.responsivity_a_w = float(responsivity_a_w)
        self.tia_gain_ohm = float(tia_gain_ohm)
        self.bandwidth_ghz = float(bandwidth_ghz)
        self.thermal_noise_pa_rthz = float(thermal_noise_pa_rthz)

    def detect(self, optical_mw: Waveform,
               rng: Optional[np.random.Generator] = None) -> Waveform:
        """Optical power (mW) in, electrical voltage out."""
        power_w = optical_mw.values * 1e-3
        current = self.responsivity_a_w * power_w
        noise_bw_hz = min(self.bandwidth_ghz * 1e9,
                          0.5 / (optical_mw.dt * 1e-12))
        if rng is not None:
            # Shot noise: sigma_i = sqrt(2 q I B), per sample.
            shot_sigma = np.sqrt(
                2.0 * _Q_ELECTRON * np.maximum(current, 0.0) * noise_bw_hz
            )
            thermal_sigma = (self.thermal_noise_pa_rthz * 1e-12
                             * math.sqrt(noise_bw_hz))
            current = current + rng.normal(0.0, 1.0, len(current)) \
                * np.hypot(shot_sigma, thermal_sigma)
        voltage = current * self.tia_gain_ohm
        # TIA bandwidth as a Gaussian response.
        t_r_ps = 339.0 / self.bandwidth_ghz
        sigma_samples = (t_r_ps / 2.563) / optical_mw.dt
        if sigma_samples > 0.05:
            from scipy.ndimage import gaussian_filter1d

            voltage = gaussian_filter1d(voltage, sigma_samples,
                                        mode="nearest")
        return Waveform(voltage, dt=optical_mw.dt, t0=optical_mw.t0)

    def sensitivity_dbm(self, target_snr: float = 14.0) -> float:
        """Receiver sensitivity: optical power for a given SNR, dBm.

        SNR 14 (Q=7) corresponds to BER 1e-12 for NRZ.
        """
        if target_snr <= 0.0:
            raise ConfigurationError("target SNR must be positive")
        noise_bw_hz = self.bandwidth_ghz * 1e9
        i_noise = (self.thermal_noise_pa_rthz * 1e-12
                   * math.sqrt(noise_bw_hz))
        p_w = target_snr * i_noise / self.responsivity_a_w
        return 10.0 * math.log10(p_w / 1e-3)
