"""Electro-optic and opto-electronic conversion path.

In the test bed the PECL signals "control laser drivers which
converted the signals to light pulses of differing wavelengths. The
optical signals are combined at the transmitting end, and optically
split at the receiving end." This package models that path: laser
driver/modulator, WDM combine/split, fiber spans, and the
photodetector+TIA receiver.
"""

from repro.optics.laser import LaserDriver, LaserSpec, WavelengthChannel
from repro.optics.wdm import (
    WDMMux,
    WDMDemux,
    wavelength_grid,
    stack_channels,
    unstack_channels,
)
from repro.optics.fiber import FiberSpan
from repro.optics.photodetector import Photodetector
from repro.optics.link import OpticalLink, LinkBudget

__all__ = [
    "LaserDriver",
    "LaserSpec",
    "WavelengthChannel",
    "WDMMux",
    "WDMDemux",
    "wavelength_grid",
    "stack_channels",
    "unstack_channels",
    "FiberSpan",
    "Photodetector",
    "OpticalLink",
    "LinkBudget",
]
