"""Laser driver and directly-modulated laser model.

Each test-bed channel drives a laser at its own wavelength. The
model converts an electrical waveform into optical power: bias +
modulation with a finite extinction ratio, the laser's own bandwidth
limit, and relative-intensity noise.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.signal.waveform import Waveform
from repro.signal.edges import sigma_for_erf_edge


@dataclasses.dataclass(frozen=True)
class WavelengthChannel:
    """One WDM wavelength slot.

    Attributes
    ----------
    wavelength_nm:
        Center wavelength.
    index:
        Grid index (0-based).
    """

    wavelength_nm: float
    index: int

    def __post_init__(self):
        if self.wavelength_nm <= 0.0:
            raise ConfigurationError("wavelength must be positive")


@dataclasses.dataclass(frozen=True)
class LaserSpec:
    """Directly-modulated laser parameters.

    Attributes
    ----------
    p_high_mw:
        Optical power for a logic high, mW.
    extinction_ratio_db:
        High/low power ratio, dB (finite: the low level is not dark).
    bandwidth_ghz:
        Modulation bandwidth.
    rin_db_hz:
        Relative intensity noise, dB/Hz.
    """

    p_high_mw: float = 1.0
    extinction_ratio_db: float = 9.0
    bandwidth_ghz: float = 8.0
    rin_db_hz: float = -140.0

    def __post_init__(self):
        if self.p_high_mw <= 0.0:
            raise ConfigurationError("high power must be positive")
        if self.extinction_ratio_db <= 0.0:
            raise ConfigurationError("extinction ratio must be positive dB")
        if self.bandwidth_ghz <= 0.0:
            raise ConfigurationError("bandwidth must be positive")

    @property
    def p_low_mw(self) -> float:
        """Optical power for a logic low."""
        return self.p_high_mw / (10.0 ** (self.extinction_ratio_db / 10.0))


class LaserDriver:
    """Electrical waveform -> optical power waveform.

    Parameters
    ----------
    spec:
        Laser parameters.
    channel:
        The wavelength this laser occupies.
    """

    def __init__(self, spec: LaserSpec = LaserSpec(),
                 channel: WavelengthChannel = WavelengthChannel(1550.0, 0)):
        self.spec = spec
        self.channel = channel

    def modulate(self, electrical: Waveform,
                 rng: Optional[np.random.Generator] = None) -> Waveform:
        """Convert an electrical drive into optical power (mW).

        The electrical swing maps linearly onto [p_low, p_high]; the
        laser's bandwidth rounds the edges further; RIN adds
        multiplicative noise.
        """
        lo, hi = electrical.min(), electrical.max()
        if hi <= lo:
            raise ConfigurationError(
                "drive waveform has no swing; laser needs modulation"
            )
        norm = (electrical.values - lo) / (hi - lo)
        power = (self.spec.p_low_mw
                 + norm * (self.spec.p_high_mw - self.spec.p_low_mw))
        # Laser bandwidth: Gaussian smoothing equivalent to the
        # modulation response.
        t20_80 = 339.0 / self.spec.bandwidth_ghz * (0.8 / 0.339) * 0.25
        sigma_samples = sigma_for_erf_edge(max(t20_80, 1e-6)) / electrical.dt
        if sigma_samples > 0.05:
            from scipy.ndimage import gaussian_filter1d

            power = gaussian_filter1d(power, sigma_samples, mode="nearest")
        if rng is not None:
            # RIN over the simulation bandwidth (per-sample noise).
            bw_hz = 0.5 / (electrical.dt * 1e-12)
            rin_lin = 10.0 ** (self.spec.rin_db_hz / 10.0)
            sigma_rel = np.sqrt(rin_lin * bw_hz)
            power = power * (1.0 + rng.normal(0.0, sigma_rel,
                                              size=len(power)))
        return Waveform(np.maximum(power, 0.0), dt=electrical.dt,
                        t0=electrical.t0)

    def static_power(self, logic_high: bool) -> float:
        """Settled optical power for a static drive level, mW."""
        return self.spec.p_high_mw if logic_high else self.spec.p_low_mw
