"""End-to-end optical link: E/O -> WDM -> fiber -> WDM -> O/E.

Ties the optics together into the path one test-bed channel's signal
takes on its way through the Data Vortex, with a link power budget
check (transmit power vs. losses vs. receiver sensitivity).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.optics.fiber import FiberSpan
from repro.optics.laser import LaserDriver, LaserSpec, WavelengthChannel
from repro.optics.photodetector import Photodetector
from repro.optics.wdm import WDMDemux, WDMMux, wavelength_grid
from repro.signal.waveform import Waveform


@dataclasses.dataclass(frozen=True)
class LinkBudget:
    """Power accounting of the optical path, all in dB(m).

    Attributes
    ----------
    tx_power_dbm:
        Launch power.
    total_loss_db:
        Mux + fiber + demux losses.
    rx_power_dbm:
        Power at the detector.
    sensitivity_dbm:
        Receiver requirement for the target BER.
    """

    tx_power_dbm: float
    total_loss_db: float
    rx_power_dbm: float
    sensitivity_dbm: float

    @property
    def margin_db(self) -> float:
        """Headroom above the sensitivity floor."""
        return self.rx_power_dbm - self.sensitivity_dbm

    @property
    def closes(self) -> bool:
        """True when the link has positive margin."""
        return self.margin_db > 0.0


class OpticalLink:
    """A parallel WDM link (one laser per test-bed channel).

    Parameters
    ----------
    n_channels:
        Parallel wavelength count.
    fiber:
        The shared span.
    laser_spec:
        Laser grade used on every channel.
    """

    def __init__(self, n_channels: int = 5,
                 fiber: FiberSpan = None,
                 laser_spec: LaserSpec = LaserSpec()):
        if n_channels < 1:
            raise ConfigurationError("need >= 1 channel")
        self.grid = wavelength_grid(n_channels)
        self.lasers = [
            LaserDriver(laser_spec, ch) for ch in self.grid
        ]
        self.mux = WDMMux()
        self.demux = WDMDemux()
        self.fiber = fiber if fiber is not None else FiberSpan()
        self.detector = Photodetector()

    @property
    def n_channels(self) -> int:
        """Parallel wavelength count."""
        return len(self.grid)

    def transmit(self, electrical: Dict[int, Waveform],
                 rng: Optional[np.random.Generator] = None
                 ) -> Dict[int, Waveform]:
        """Carry per-channel electrical waveforms across the link.

        Parameters
        ----------
        electrical:
            Waveforms keyed by channel index.

        Returns
        -------
        dict
            Received electrical waveforms, keyed the same way.
        """
        unknown = set(electrical) - {ch.index for ch in self.grid}
        if unknown:
            raise ConfigurationError(
                f"no wavelengths for channel indices {sorted(unknown)}"
            )
        optical = {}
        for ch, laser in zip(self.grid, self.lasers):
            if ch.index in electrical:
                optical[ch] = laser.modulate(electrical[ch.index], rng=rng)
        on_fiber = self.mux.combine(optical)
        after_fiber = {
            ch: self.fiber.propagate(wf) for ch, wf in on_fiber.items()
        }
        split = self.demux.split(after_fiber)
        return {
            ch.index: self.detector.detect(wf, rng=rng)
            for ch, wf in split.items()
        }

    def budget(self, target_snr: float = 14.0) -> LinkBudget:
        """The static link power budget for one channel."""
        import math

        p_tx_dbm = 10.0 * math.log10(self.lasers[0].spec.p_high_mw)
        loss = (self.mux.insertion_loss_db + self.fiber.loss_db
                + self.demux.insertion_loss_db)
        return LinkBudget(
            tx_power_dbm=p_tx_dbm,
            total_loss_db=loss,
            rx_power_dbm=p_tx_dbm - loss,
            sensitivity_dbm=self.detector.sensitivity_dbm(target_snr),
        )
