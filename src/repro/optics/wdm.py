"""Wavelength-division multiplexing: combine and split.

"The optical signals are combined at the transmitting end, and
optically split at the receiving end (to recover the parallel data
words)." The mux sums channel powers (with insertion loss); the
demux separates them again with finite channel isolation
(crosstalk).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.optics.laser import WavelengthChannel
from repro.signal.waveform import Waveform, WaveformBatch

#: Documented equivalence tolerances of the batched demux (one
#: leakage-matrix product) versus the sequential per-port dict path;
#: the matrix product reorders the neighbour additions, so the two
#: agree to float rounding, not bitwise.
WDM_EQUIVALENCE_RTOL = 1e-12
WDM_EQUIVALENCE_ATOL = 1e-15


def stack_channels(channels: Dict[WavelengthChannel, Waveform]
                   ) -> Tuple[WaveformBatch, List[WavelengthChannel]]:
    """``(batch, channel_order)`` from a per-wavelength dict.

    Rows are sorted by wavelength index so batched mux/demux
    matrices line up with spectral adjacency; all waveforms must
    share one time grid.
    """
    if not channels:
        raise ConfigurationError("nothing to stack")
    order = sorted(channels, key=lambda ch: ch.index)
    batch = WaveformBatch.from_waveforms([channels[ch] for ch in order])
    return batch, order


def unstack_channels(batch: WaveformBatch,
                     order: Sequence[WavelengthChannel]
                     ) -> Dict[WavelengthChannel, Waveform]:
    """Inverse of :func:`stack_channels`: rows back into a dict."""
    if batch.n_channels != len(order):
        raise ConfigurationError(
            f"batch has {batch.n_channels} rows for "
            f"{len(order)} channels"
        )
    return {ch: batch.row(i) for i, ch in enumerate(order)}


def wavelength_grid(n_channels: int, start_nm: float = 1546.0,
                    spacing_nm: float = 0.8) -> List[WavelengthChannel]:
    """A DWDM-style grid of *n_channels* (default 100 GHz spacing)."""
    if n_channels < 1:
        raise ConfigurationError("need >= 1 channel")
    if spacing_nm <= 0.0:
        raise ConfigurationError("spacing must be positive")
    return [
        WavelengthChannel(start_nm + k * spacing_nm, k)
        for k in range(n_channels)
    ]


class WDMMux:
    """Combines per-wavelength power waveforms onto one fiber.

    Parameters
    ----------
    insertion_loss_db:
        Loss through the combiner per channel.
    """

    def __init__(self, insertion_loss_db: float = 1.5):
        if insertion_loss_db < 0.0:
            raise ConfigurationError("insertion loss must be >= 0 dB")
        self.insertion_loss_db = float(insertion_loss_db)

    @property
    def gain(self) -> float:
        """Linear power transmission per channel."""
        return 10.0 ** (-self.insertion_loss_db / 10.0)

    def combine(self, channels: Dict[WavelengthChannel, Waveform]
                ) -> Dict[WavelengthChannel, Waveform]:
        """Apply the mux: each wavelength keeps its identity on the
        shared fiber (the model tracks per-wavelength power), scaled
        by the insertion loss."""
        if not channels:
            raise ConfigurationError("nothing to combine")
        seen = set()
        for ch in channels:
            if ch.index in seen:
                raise ConfigurationError(
                    f"two signals on wavelength index {ch.index}"
                )
            seen.add(ch.index)
        return {ch: wf.scaled(self.gain) for ch, wf in channels.items()}

    def combine_batch(self, batch: WaveformBatch) -> WaveformBatch:
        """Batched :meth:`combine`: every row scaled in one pass.

        Rows are per-wavelength power waveforms (one wavelength per
        row, as produced by :func:`stack_channels`, which enforces
        index uniqueness). Bit-identical per row to :meth:`combine`.
        """
        if not batch.n_channels:
            raise ConfigurationError("nothing to combine")
        return batch.scaled(self.gain)

    def total_power(self, channels: Dict[WavelengthChannel, Waveform]
                    ) -> Waveform:
        """Aggregate power on the fiber (what a power meter reads)."""
        combined = self.combine(channels)
        waveforms = list(combined.values())
        total = waveforms[0]
        for wf in waveforms[1:]:
            total = total + wf
        return total


class WDMDemux:
    """Splits wavelengths back out with finite isolation.

    Parameters
    ----------
    insertion_loss_db:
        Loss through the splitter per channel.
    isolation_db:
        Suppression of each *adjacent* channel's power leaking into
        a port (crosstalk).
    """

    def __init__(self, insertion_loss_db: float = 2.0,
                 isolation_db: float = 30.0):
        if insertion_loss_db < 0.0:
            raise ConfigurationError("insertion loss must be >= 0 dB")
        if isolation_db <= 0.0:
            raise ConfigurationError("isolation must be positive dB")
        self.insertion_loss_db = float(insertion_loss_db)
        self.isolation_db = float(isolation_db)

    @property
    def gain(self) -> float:
        """Linear through-channel power transmission."""
        return 10.0 ** (-self.insertion_loss_db / 10.0)

    @property
    def crosstalk(self) -> float:
        """Linear adjacent-channel leakage."""
        return 10.0 ** (-self.isolation_db / 10.0)

    def split(self, channels: Dict[WavelengthChannel, Waveform]
              ) -> Dict[WavelengthChannel, Waveform]:
        """Separate the wavelengths; each output port carries its own
        channel plus attenuated leakage from spectral neighbours."""
        if not channels:
            raise ConfigurationError("nothing to split")
        by_index = {ch.index: (ch, wf) for ch, wf in channels.items()}
        out: Dict[WavelengthChannel, Waveform] = {}
        for index, (ch, wf) in by_index.items():
            port = wf.scaled(self.gain)
            for neighbour in (index - 1, index + 1):
                if neighbour in by_index:
                    _, n_wf = by_index[neighbour]
                    port = port + n_wf.scaled(self.gain * self.crosstalk)
            out[ch] = port
        return out

    def leakage_matrix(self, indices: Sequence[int]) -> np.ndarray:
        """Port mixing matrix for rows at wavelength *indices*.

        ``M[i, i]`` is the through gain; ``M[i, j]`` is the leakage
        gain for spectrally adjacent rows (``|index_i - index_j| ==
        1``); all other entries are zero.
        """
        indices = list(indices)
        if len(set(indices)) != len(indices):
            raise ConfigurationError("wavelength indices must be unique")
        m = np.zeros((len(indices), len(indices)))
        for a, i in enumerate(indices):
            for b, j in enumerate(indices):
                if a == b:
                    m[a, b] = self.gain
                elif abs(i - j) == 1:
                    m[a, b] = self.gain * self.crosstalk
        return m

    def split_batch(self, batch: WaveformBatch,
                    indices: Sequence[int]) -> WaveformBatch:
        """Batched :meth:`split`: one leakage-matrix product.

        *indices* gives each row's wavelength index (the adjacency
        the isolation applies to). Matches the dict path within
        ``WDM_EQUIVALENCE_RTOL``/``ATOL`` — the matrix product
        reorders the neighbour additions.
        """
        if not batch.n_channels:
            raise ConfigurationError("nothing to split")
        if batch.n_channels != len(indices):
            raise ConfigurationError(
                f"batch has {batch.n_channels} rows for "
                f"{len(indices)} indices"
            )
        mixed = self.leakage_matrix(indices) @ batch.values
        return WaveformBatch(mixed, dt=batch.dt, t0=batch.t0)
