"""One Data Vortex routing node.

A 2x2 all-optical switch point: one packet in residence at most,
two exits (crossing link / ingression link), and a deflection-
control input from the inner cylinder that can veto descent.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from repro.errors import FabricError
from repro.vortex.packet import VortexPacket
from repro.vortex.topology import NodeAddress


class RoutingDecision(enum.Enum):
    """What a node does with its resident packet this cycle."""

    EJECT = "eject"
    DESCEND = "descend"
    CIRCLE = "circle"
    DEFLECT = "deflect"
    """Wanted to descend but was blocked — circles instead."""


@dataclasses.dataclass
class RoutingNode:
    """A node with at-most-one resident packet.

    Attributes
    ----------
    address:
        The node's fixed position.
    packet:
        The resident packet, if any.
    """

    address: NodeAddress
    packet: Optional[VortexPacket] = None

    @property
    def occupied(self) -> bool:
        """True when a packet is in residence."""
        return self.packet is not None

    def accept(self, packet: VortexPacket) -> None:
        """Take a packet in; a second simultaneous resident is a
        fabric contention bug."""
        if self.packet is not None:
            raise FabricError(
                f"node {self.address} already holds packet "
                f"{self.packet.packet_id}; cannot accept "
                f"{packet.packet_id}"
            )
        self.packet = packet

    def release(self) -> VortexPacket:
        """Hand the resident packet over (node becomes free)."""
        if self.packet is None:
            raise FabricError(f"node {self.address} is empty")
        packet, self.packet = self.packet, None
        return packet
