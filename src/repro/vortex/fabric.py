"""Cycle-accurate Data Vortex fabric simulator.

Synchronous slot-time simulation: every cycle each resident packet
takes exactly one hop (crossing, ingression, or ejection). Inner-
cylinder traffic has priority — a packet may only descend into a
node that is free after the inner cylinders have moved — which is
the deflection-routing discipline that replaces buffering.

State is struct-of-arrays (see :mod:`repro.vortex._soa`): occupancy,
destination-header, and journey counters live in flat arrays indexed
by node id, with the resident packet objects alongside. Stepping is
adaptive: above :attr:`DataVortexFabric.vector_threshold` resident
packets the routing decisions for a whole cylinder are made with
vectorized array math; below it a scalar pass over only the occupied
slots wins (numpy per-element overhead would dominate). Both paths
produce identical decisions, statistics, and packet journeys.

The ``nodes`` mapping of earlier versions survives as a live view:
each entry proxies one SoA slot, so inspection and fault-injection
code (``fab.nodes[addr].accept(...)``) behaves as before.
"""

from __future__ import annotations

import dataclasses
from bisect import bisect_left
from collections import deque
from typing import Deque, Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError, FabricError
from repro.vortex._soa import TopologyArrays, topology_arrays
from repro.vortex.node import RoutingDecision
from repro.vortex.packet import VortexPacket
from repro.vortex.stats import FabricStats
from repro.vortex.topology import NodeAddress, VortexTopology

#: Resident-packet count at or above which a step routes through the
#: vectorized path. Calibrated on the simulation-speed bench: numpy
#: small-array overhead beats the scalar pass only once a few dozen
#: packets are in flight.
DEFAULT_VECTOR_THRESHOLD = 48

_DECISION_BY_CODE = (RoutingDecision.EJECT, RoutingDecision.DESCEND,
                     RoutingDecision.CIRCLE, RoutingDecision.DEFLECT)
_EJECT, _DESCEND, _CIRCLE, _DEFLECT = range(4)


@dataclasses.dataclass(frozen=True)
class FabricConfig:
    """Simulation parameters.

    Attributes
    ----------
    n_angles, n_heights:
        Topology size (cylinder count follows from the heights).
    slot_time_ps:
        One hop's duration — the test bed's packet slot time
        (25.6 ns at the nominal format).
    """

    n_angles: int = 3
    n_heights: int = 4
    slot_time_ps: float = 25_600.0

    def __post_init__(self):
        if self.slot_time_ps <= 0.0:
            raise ConfigurationError("slot time must be positive")


class _NodeView:
    """Live view of one SoA slot, API-compatible with ``RoutingNode``."""

    __slots__ = ("_fabric", "_idx", "address")

    def __init__(self, fabric: "DataVortexFabric", idx: int,
                 address: NodeAddress):
        self._fabric = fabric
        self._idx = idx
        self.address = address

    @property
    def occupied(self) -> bool:
        """True when a packet is in residence."""
        return self._fabric._pkts[self._idx] is not None

    @property
    def packet(self) -> Optional[VortexPacket]:
        """The resident packet (journey counters synced), if any."""
        pkt = self._fabric._pkts[self._idx]
        if pkt is not None:
            self._fabric._sync_packet(self._idx, pkt)
        return pkt

    def accept(self, packet: VortexPacket) -> None:
        """Take a packet in; a second simultaneous resident is a
        fabric contention bug."""
        fab = self._fabric
        resident = fab._pkts[self._idx]
        if resident is not None:
            raise FabricError(
                f"node {self.address} already holds packet "
                f"{resident.packet_id}; cannot accept "
                f"{packet.packet_id}"
            )
        fab._place(self._idx, packet)

    def release(self) -> VortexPacket:
        """Hand the resident packet over (node becomes free)."""
        fab = self._fabric
        pkt = fab._pkts[self._idx]
        if pkt is None:
            raise FabricError(f"node {self.address} is empty")
        fab._sync_packet(self._idx, pkt)
        fab._occ[self._idx] = False
        fab._pkts[self._idx] = None
        return pkt

    def __repr__(self) -> str:
        return f"_NodeView({self.address}, occupied={self.occupied})"


class DataVortexFabric:
    """The running fabric: nodes, injection queues, output queues.

    Parameters
    ----------
    config:
        Simulation parameters.
    registry:
        Optional injected telemetry registry; defaults to the
        module-level active one.
    """

    def __init__(self, config: FabricConfig = FabricConfig(),
                 registry=None):
        self.config = config
        self.telemetry = registry
        self.topology = VortexTopology(config.n_angles, config.n_heights)
        self.arrays: TopologyArrays = topology_arrays(self.topology)
        n = self.arrays.n_nodes
        # Struct-of-arrays node state, indexed by flat node id.
        self._occ = np.zeros(n, dtype=bool)
        self._dest = np.zeros(n, dtype=np.int64)
        self._pid = np.zeros(n, dtype=np.int64)
        self._hops = np.zeros(n, dtype=np.int64)
        self._defl = np.zeros(n, dtype=np.int64)
        self._pkts = np.full(n, None, dtype=object)
        self._nodes: Optional[Dict[NodeAddress, _NodeView]] = None
        self.vector_threshold = DEFAULT_VECTOR_THRESHOLD
        self.cycle = 0
        self.injection_queue: Deque[VortexPacket] = deque()
        self.output_queues: Dict[int, List[VortexPacket]] = {
            h: [] for h in range(config.n_heights)
        }
        self.stats = FabricStats()
        self._next_packet_id = 0
        self._inject_angle = 0

    # -- SoA plumbing ------------------------------------------------------

    @property
    def nodes(self) -> Dict[NodeAddress, _NodeView]:
        """Address-keyed live views of every node slot."""
        if self._nodes is None:
            self._nodes = {
                addr: _NodeView(self, i, addr)
                for i, addr in enumerate(self.arrays.addresses())
            }
        return self._nodes

    def _place(self, idx: int, packet: VortexPacket) -> None:
        """Seat *packet* at slot *idx*, mirroring its header/counters."""
        self._occ[idx] = True
        self._dest[idx] = packet.destination_height
        self._pid[idx] = packet.packet_id
        self._hops[idx] = packet.hops
        self._defl[idx] = packet.deflections
        self._pkts[idx] = packet

    def _sync_packet(self, idx: int, packet: VortexPacket) -> None:
        """Copy slot journey counters back onto the packet object."""
        packet.hops = int(self._hops[idx])
        packet.deflections = int(self._defl[idx])

    # -- packet entry ------------------------------------------------------

    def submit(self, destination_height: int,
               payload=None) -> VortexPacket:
        """Queue a packet for injection; returns the packet object."""
        if not 0 <= destination_height < self.topology.n_heights:
            raise ConfigurationError(
                f"destination {destination_height} outside the fabric's "
                f"{self.topology.n_heights} heights"
            )
        packet = VortexPacket(
            packet_id=self._next_packet_id,
            destination_height=destination_height,
            payload=payload,
            injected_cycle=self.cycle,
        )
        self._next_packet_id += 1
        self.injection_queue.append(packet)
        self.stats.submitted += 1
        return packet

    def submit_slot(self, slot) -> VortexPacket:
        """Queue a test-bed :class:`PacketSlot` as an optical packet."""
        packet = VortexPacket.from_slot(slot, self._next_packet_id,
                                        self.cycle)
        if packet.destination_height >= self.topology.n_heights:
            raise ConfigurationError(
                f"slot address {packet.destination_height} outside the "
                f"fabric's {self.topology.n_heights} heights"
            )
        self._next_packet_id += 1
        self.injection_queue.append(packet)
        self.stats.submitted += 1
        return packet

    # -- the clock ---------------------------------------------------------

    def step(self) -> Dict[int, RoutingDecision]:
        """Advance one slot time. Returns each moved packet's decision."""
        occ_idx = np.flatnonzero(self._occ)
        vectorized = len(occ_idx) >= self.vector_threshold
        if vectorized:
            decisions = self._route_vectorized(occ_idx)
        elif len(occ_idx):
            decisions = self._route_scalar(occ_idx)
        else:
            decisions = {}

        injected_before = self.stats.injected
        self._inject()
        self.cycle += 1
        self.stats.cycles = self.cycle

        tel = telemetry.resolve(self.telemetry)
        if tel.enabled:
            n_ejected = sum(1 for d in decisions.values()
                            if d is RoutingDecision.EJECT)
            n_deflected = sum(1 for d in decisions.values()
                              if d is RoutingDecision.DEFLECT)
            tel.counter("vortex.steps").inc()
            if vectorized:
                tel.counter("vortex.vectorized_steps").inc()
            tel.counter("vortex.hops").inc(len(decisions))
            tel.counter("vortex.delivered").inc(n_ejected)
            tel.counter("vortex.deflections").inc(n_deflected)
            tel.counter("vortex.injected").inc(
                self.stats.injected - injected_before
            )
            tel.gauge("vortex.in_flight").set(
                int(np.count_nonzero(self._occ)))
        return decisions

    def _route_scalar(self, occ_idx: np.ndarray
                      ) -> Dict[int, RoutingDecision]:
        """Per-packet routing pass over the occupied slots only.

        Inner cylinders first (their moves free the slots outer
        packets descend into); within a cylinder, flat-id order —
        the same total order the node-scan implementation used.
        """
        ar = self.arrays
        heights = ar.heights_list
        cross = ar.cross_list
        desc = ar.desc_list
        bitmask = ar.bitmask_list
        inner_start = ar.inner_start
        pkts = self._pkts
        hops_a = self._hops
        defl_a = self._defl
        occ_list = occ_idx.tolist()  # ascending == cylinder-major
        starts = ar.cyl_starts_list
        bounds = [bisect_left(occ_list, s) for s in starts]
        claim = bytearray(ar.n_nodes)
        decisions: Dict[int, RoutingDecision] = {}
        moves = []  # (target, packet, hops, deflections)
        ejected = []

        # Innermost cylinders first; within a cylinder ascending flat
        # id (the node-scan implementation's dict order).
        for i in (occ_list[j]
                  for c in range(ar.n_cylinders - 1, -1, -1)
                  for j in range(bounds[c], bounds[c + 1])):
            pkt = pkts[i]
            dest = pkt.destination_height
            hops = int(hops_a[i]) + 1
            defl = int(defl_a[i])
            if i >= inner_start:  # innermost: eject or circle
                if heights[i] == dest:
                    decisions[pkt.packet_id] = RoutingDecision.EJECT
                    ejected.append((i, pkt, hops, defl))
                    continue
                target = cross[i]
                decisions[pkt.packet_id] = RoutingDecision.CIRCLE
            else:
                bm = bitmask[i]
                if bm == 0 or not (heights[i] ^ dest) & bm:
                    target = desc[i]
                    if not claim[target]:
                        decisions[pkt.packet_id] = RoutingDecision.DESCEND
                        claim[target] = 1
                        moves.append((target, pkt, hops, defl))
                        continue
                    defl += 1
                    self.stats.deflections += 1
                    decisions[pkt.packet_id] = RoutingDecision.DEFLECT
                else:
                    decisions[pkt.packet_id] = RoutingDecision.CIRCLE
                target = cross[i]
            if claim[target]:
                raise FabricError(
                    f"crossing-link contention at flat node {target}: "
                    "the crossing pattern must be a permutation"
                )
            claim[target] = 1
            moves.append((target, pkt, hops, defl))

        self._commit(occ_idx, moves, ejected)
        return decisions

    def _route_vectorized(self, occ_idx: np.ndarray
                          ) -> Dict[int, RoutingDecision]:
        """Array-math routing pass: one vectorized decision per
        cylinder, resolved innermost first."""
        ar = self.arrays
        dest = self._dest[occ_idx]
        pid = self._pid[occ_idx]
        hops = self._hops[occ_idx] + 1
        defl = self._defl[occ_idx]
        h = ar.heights[occ_idx]
        cross = ar.cross_next[occ_idx]
        desc = ar.desc_next[occ_idx]
        bm = ar.bitmask[occ_idx]
        m = len(occ_idx)
        n_cyl = ar.n_cylinders
        # occ_idx is sorted, so cylinder groups are contiguous runs.
        bounds = np.searchsorted(occ_idx, ar.cyl_starts)

        eject = np.zeros(m, dtype=bool)
        inner = slice(int(bounds[n_cyl - 1]), m)
        eject[inner] = h[inner] == dest[inner]
        wants = (bm == 0) | (((h ^ dest) & bm) == 0)
        wants[inner] = False  # innermost circles until ejection

        claim = np.zeros(ar.n_nodes, dtype=bool)
        desc_ok = np.zeros(m, dtype=bool)
        target = cross.copy()
        circ_inner = ~eject[inner]
        claim[cross[inner][circ_inner]] = True
        for c in range(n_cyl - 2, -1, -1):
            sl = slice(int(bounds[c]), int(bounds[c + 1]))
            if sl.start == sl.stop:
                continue
            ok = wants[sl] & ~claim[desc[sl]]
            desc_ok[sl] = ok
            tgt = np.where(ok, desc[sl], cross[sl])
            target[sl] = tgt
            claim[tgt] = True

        deflected = wants & ~desc_ok
        defl = defl + deflected
        moved = ~eject
        if int(np.count_nonzero(claim)) != int(np.count_nonzero(moved)):
            raise FabricError(
                "crossing-link contention: the crossing pattern "
                "must be a permutation"
            )
        self.stats.deflections += int(np.count_nonzero(deflected))

        codes = np.where(
            eject, _EJECT,
            np.where(desc_ok, _DESCEND,
                     np.where(deflected, _DEFLECT, _CIRCLE)),
        )
        decisions = {
            p: _DECISION_BY_CODE[code]
            for p, code in zip(pid.tolist(), codes.tolist())
        }

        pkts_moving = self._pkts[occ_idx]
        self._occ[occ_idx] = False
        self._pkts[occ_idx] = None
        mt = target[moved]
        self._occ[mt] = True
        self._dest[mt] = dest[moved]
        self._pid[mt] = pid[moved]
        self._hops[mt] = hops[moved]
        self._defl[mt] = defl[moved]
        self._pkts[mt] = pkts_moving[moved]

        for j in np.flatnonzero(eject).tolist():
            pkt = pkts_moving[j]
            pkt.hops = int(hops[j])
            pkt.deflections = int(defl[j])
            self.output_queues[int(h[j])].append(pkt)
            self.stats.record_delivery(pkt, self.cycle + 1)
        return decisions

    def _commit(self, occ_idx: np.ndarray, moves, ejected) -> None:
        """Drain the released slots and seat the moved packets."""
        self._occ[occ_idx] = False
        self._pkts[occ_idx] = None
        occ = self._occ
        dest_a = self._dest
        pid_a = self._pid
        hops_a = self._hops
        defl_a = self._defl
        pkts = self._pkts
        for target, pkt, hops, defl in moves:
            occ[target] = True
            dest_a[target] = pkt.destination_height
            pid_a[target] = pkt.packet_id
            hops_a[target] = hops
            defl_a[target] = defl
            pkts[target] = pkt
        for i, pkt, hops, defl in ejected:
            pkt.hops = hops
            pkt.deflections = defl
            self.output_queues[self.arrays.heights_list[i]].append(pkt)
            self.stats.record_delivery(pkt, self.cycle + 1)

    def _inject(self) -> None:
        """Inject into free outermost nodes, round-robin by angle."""
        if not self.injection_queue:
            return
        ar = self.arrays
        occ = self._occ
        a0 = self._inject_angle
        queue = self.injection_queue
        for k in range(ar.n_angles):
            if not queue:
                break
            angle = (a0 + k) % ar.n_angles
            base = angle * ar.n_heights
            for i in range(base, base + ar.n_heights):
                if not queue:
                    break
                if occ[i]:
                    continue
                packet = queue.popleft()
                packet.injected_cycle = self.cycle
                self._place(i, packet)
                self.stats.injected += 1
        # Backpressure is measured in packet-cycles spent waiting:
        # every packet still queued after the scan was blocked this
        # cycle. (Counting per occupied *node* scanned both inflated
        # the figure when a packet injected anyway and missed stalls
        # entirely once the angle scan was exhausted.)
        self.stats.injection_blocks += len(queue)
        self._inject_angle = (a0 + 1) % ar.n_angles

    def run(self, n_cycles: int) -> FabricStats:
        """Step the fabric *n_cycles* times."""
        if n_cycles < 0:
            raise ConfigurationError("cycle count must be >= 0")
        for _ in range(n_cycles):
            self.step()
        return self.stats

    def drain(self, max_cycles: int = 10_000) -> FabricStats:
        """Run until every submitted packet is delivered."""
        for _ in range(max_cycles):
            if self.packets_in_flight == 0 and not self.injection_queue:
                return self.stats
            self.step()
        raise FabricError(
            f"fabric did not drain within {max_cycles} cycles "
            f"({self.packets_in_flight} packets still in flight)"
        )

    # -- inspection --------------------------------------------------------

    @property
    def packets_in_flight(self) -> int:
        """Packets currently resident in fabric nodes."""
        return int(np.count_nonzero(self._occ))

    def occupancy_by_cylinder(self) -> Dict[int, int]:
        """Resident packet count per cylinder."""
        ar = self.arrays
        per_cyl = self._occ.reshape(ar.n_cylinders, -1).sum(axis=1)
        return {c: int(n) for c, n in enumerate(per_cyl)}

    def delivered(self, height: Optional[int] = None) -> List[VortexPacket]:
        """Packets delivered (optionally at one output height)."""
        if height is not None:
            return list(self.output_queues[height])
        out: List[VortexPacket] = []
        for q in self.output_queues.values():
            out.extend(q)
        return out
