"""Cycle-accurate Data Vortex fabric simulator.

Synchronous slot-time simulation: every cycle each resident packet
takes exactly one hop (crossing, ingression, or ejection). Inner-
cylinder traffic has priority — a packet may only descend into a
node that is free after the inner cylinders have moved — which is
the deflection-routing discipline that replaces buffering.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro import telemetry
from repro.errors import ConfigurationError, FabricError
from repro.vortex.node import RoutingDecision, RoutingNode
from repro.vortex.packet import VortexPacket
from repro.vortex.routing import at_destination, wants_descent
from repro.vortex.stats import FabricStats
from repro.vortex.topology import NodeAddress, VortexTopology


@dataclasses.dataclass(frozen=True)
class FabricConfig:
    """Simulation parameters.

    Attributes
    ----------
    n_angles, n_heights:
        Topology size (cylinder count follows from the heights).
    slot_time_ps:
        One hop's duration — the test bed's packet slot time
        (25.6 ns at the nominal format).
    """

    n_angles: int = 3
    n_heights: int = 4
    slot_time_ps: float = 25_600.0

    def __post_init__(self):
        if self.slot_time_ps <= 0.0:
            raise ConfigurationError("slot time must be positive")


class DataVortexFabric:
    """The running fabric: nodes, injection queues, output queues.

    Parameters
    ----------
    config:
        Simulation parameters.
    registry:
        Optional injected telemetry registry; defaults to the
        module-level active one.
    """

    def __init__(self, config: FabricConfig = FabricConfig(),
                 registry=None):
        self.config = config
        self.telemetry = registry
        self.topology = VortexTopology(config.n_angles, config.n_heights)
        self.nodes: Dict[NodeAddress, RoutingNode] = {
            addr: RoutingNode(addr) for addr in self.topology.nodes()
        }
        self.cycle = 0
        self.injection_queue: Deque[VortexPacket] = deque()
        self.output_queues: Dict[int, List[VortexPacket]] = {
            h: [] for h in range(config.n_heights)
        }
        self.stats = FabricStats()
        self._next_packet_id = 0
        self._inject_angle = 0

    # -- packet entry ------------------------------------------------------

    def submit(self, destination_height: int,
               payload=None) -> VortexPacket:
        """Queue a packet for injection; returns the packet object."""
        if not 0 <= destination_height < self.topology.n_heights:
            raise ConfigurationError(
                f"destination {destination_height} outside the fabric's "
                f"{self.topology.n_heights} heights"
            )
        packet = VortexPacket(
            packet_id=self._next_packet_id,
            destination_height=destination_height,
            payload=payload,
            injected_cycle=self.cycle,
        )
        self._next_packet_id += 1
        self.injection_queue.append(packet)
        self.stats.submitted += 1
        return packet

    def submit_slot(self, slot) -> VortexPacket:
        """Queue a test-bed :class:`PacketSlot` as an optical packet."""
        packet = VortexPacket.from_slot(slot, self._next_packet_id,
                                        self.cycle)
        if packet.destination_height >= self.topology.n_heights:
            raise ConfigurationError(
                f"slot address {packet.destination_height} outside the "
                f"fabric's {self.topology.n_heights} heights"
            )
        self._next_packet_id += 1
        self.injection_queue.append(packet)
        self.stats.submitted += 1
        return packet

    # -- the clock ---------------------------------------------------------

    def step(self) -> Dict[int, RoutingDecision]:
        """Advance one slot time. Returns each moved packet's decision."""
        topo = self.topology
        decisions: Dict[int, RoutingDecision] = {}
        new_occupancy: Dict[NodeAddress, VortexPacket] = {}

        # Inner cylinders first: their moves free (or keep) the nodes
        # outer packets want to descend into.
        for c in range(topo.n_cylinders - 1, -1, -1):
            for addr, node in self.nodes.items():
                if addr.cylinder != c or not node.occupied:
                    continue
                packet = node.release()
                packet.hops += 1
                if at_destination(topo, addr, packet.destination_height):
                    self.output_queues[addr.height].append(packet)
                    self.stats.record_delivery(packet, self.cycle + 1)
                    decisions[packet.packet_id] = RoutingDecision.EJECT
                    continue
                if wants_descent(topo, addr, packet.destination_height):
                    target = topo.descend_next(addr)
                    if (target not in new_occupancy
                            and not self.nodes[target].occupied):
                        new_occupancy[target] = packet
                        decisions[packet.packet_id] = \
                            RoutingDecision.DESCEND
                        continue
                    packet.deflections += 1
                    self.stats.deflections += 1
                    decisions[packet.packet_id] = RoutingDecision.DEFLECT
                else:
                    decisions[packet.packet_id] = RoutingDecision.CIRCLE
                target = topo.same_cylinder_next(addr)
                if target in new_occupancy:
                    raise FabricError(
                        f"crossing-link contention at {target}: the "
                        "crossing pattern must be a permutation"
                    )
                new_occupancy[target] = packet

        # Injection into free outermost nodes, round-robin by angle.
        injected_before = self.stats.injected
        self._inject(new_occupancy)

        # Commit.
        for node in self.nodes.values():
            if node.occupied:
                raise FabricError(
                    f"node {node.address} not drained during step"
                )
        for addr, packet in new_occupancy.items():
            self.nodes[addr].accept(packet)
        self.cycle += 1
        self.stats.cycles = self.cycle

        tel = telemetry.resolve(self.telemetry)
        if tel.enabled:
            n_ejected = sum(1 for d in decisions.values()
                            if d is RoutingDecision.EJECT)
            n_deflected = sum(1 for d in decisions.values()
                              if d is RoutingDecision.DEFLECT)
            tel.counter("vortex.steps").inc()
            tel.counter("vortex.hops").inc(len(decisions))
            tel.counter("vortex.delivered").inc(n_ejected)
            tel.counter("vortex.deflections").inc(n_deflected)
            tel.counter("vortex.injected").inc(
                self.stats.injected - injected_before
            )
            tel.gauge("vortex.in_flight").set(len(new_occupancy))
        return decisions

    def _inject(self, new_occupancy: Dict[NodeAddress, VortexPacket]
                ) -> None:
        if not self.injection_queue:
            return
        a0 = self._inject_angle
        for k in range(self.topology.n_angles):
            if not self.injection_queue:
                break
            angle = (a0 + k) % self.topology.n_angles
            for height in range(self.topology.n_heights):
                if not self.injection_queue:
                    break
                addr = NodeAddress(0, angle, height)
                if addr in new_occupancy or self.nodes[addr].occupied:
                    continue
                packet = self.injection_queue.popleft()
                packet.injected_cycle = self.cycle
                new_occupancy[addr] = packet
                self.stats.injected += 1
        # Backpressure is measured in packet-cycles spent waiting:
        # every packet still queued after the scan was blocked this
        # cycle. (Counting per occupied *node* scanned both inflated
        # the figure when a packet injected anyway and missed stalls
        # entirely once the angle scan was exhausted.)
        self.stats.injection_blocks += len(self.injection_queue)
        self._inject_angle = (a0 + 1) % self.topology.n_angles

    def run(self, n_cycles: int) -> FabricStats:
        """Step the fabric *n_cycles* times."""
        if n_cycles < 0:
            raise ConfigurationError("cycle count must be >= 0")
        for _ in range(n_cycles):
            self.step()
        return self.stats

    def drain(self, max_cycles: int = 10_000) -> FabricStats:
        """Run until every submitted packet is delivered."""
        for _ in range(max_cycles):
            if self.packets_in_flight == 0 and not self.injection_queue:
                return self.stats
            self.step()
        raise FabricError(
            f"fabric did not drain within {max_cycles} cycles "
            f"({self.packets_in_flight} packets still in flight)"
        )

    # -- inspection --------------------------------------------------------

    @property
    def packets_in_flight(self) -> int:
        """Packets currently resident in fabric nodes."""
        return sum(1 for n in self.nodes.values() if n.occupied)

    def occupancy_by_cylinder(self) -> Dict[int, int]:
        """Resident packet count per cylinder."""
        out = {c: 0 for c in range(self.topology.n_cylinders)}
        for node in self.nodes.values():
            if node.occupied:
                out[node.address.cylinder] += 1
        return out

    def delivered(self, height: Optional[int] = None) -> List[VortexPacket]:
        """Packets delivered (optionally at one output height)."""
        if height is not None:
            return list(self.output_queues[height])
        out: List[VortexPacket] = []
        for q in self.output_queues.values():
            out.extend(q)
        return out
