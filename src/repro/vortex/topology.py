"""Data Vortex topology: C cylinders of A angles x H heights.

The multi-level minimum-logic network of Reed's patent [5]: packets
enter at the outermost cylinder, progress one angle per hop, and
work inward one cylinder at a time. Cylinder c resolves bit c (MSB
first) of the destination height: the same-cylinder "crossing" link
flips that bit, the ingression link preserves height. The innermost
cylinder circles packets to their output.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Tuple

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True, order=True)
class NodeAddress:
    """Position of one routing node.

    Attributes
    ----------
    cylinder:
        0 = outermost (injection), C-1 = innermost (ejection).
    angle:
        Position around the cylinder, [0, A).
    height:
        Position along the cylinder axis, [0, H).
    """

    cylinder: int
    angle: int
    height: int


class VortexTopology:
    """The (A, C, H) Data Vortex graph.

    Parameters
    ----------
    n_angles:
        Angles per cylinder (A).
    n_heights:
        Heights per cylinder (H); must be a power of two.

    The cylinder count is fixed by the routing scheme:
    ``C = log2(H) + 1`` — one cylinder per height bit plus the
    innermost collection cylinder.
    """

    def __init__(self, n_angles: int, n_heights: int):
        if n_angles < 1:
            raise ConfigurationError(f"need >= 1 angle, got {n_angles}")
        if n_heights < 1 or (n_heights & (n_heights - 1)) != 0:
            raise ConfigurationError(
                f"heights must be a power of two, got {n_heights}"
            )
        self.n_angles = int(n_angles)
        self.n_heights = int(n_heights)
        self.height_bits = self.n_heights.bit_length() - 1
        self.n_cylinders = self.height_bits + 1

    @property
    def n_nodes(self) -> int:
        """Total routing nodes in the fabric."""
        return self.n_cylinders * self.n_angles * self.n_heights

    def nodes(self) -> Iterator[NodeAddress]:
        """Every node address, outermost cylinder first."""
        for c in range(self.n_cylinders):
            for a in range(self.n_angles):
                for h in range(self.n_heights):
                    yield NodeAddress(c, a, h)

    def validate(self, addr: NodeAddress) -> None:
        """Raise if *addr* is outside the fabric."""
        if not (0 <= addr.cylinder < self.n_cylinders
                and 0 <= addr.angle < self.n_angles
                and 0 <= addr.height < self.n_heights):
            raise ConfigurationError(f"address {addr} outside fabric")

    # -- link structure ------------------------------------------------

    def routing_bit(self, cylinder: int) -> int:
        """Which height bit cylinder *cylinder* resolves (MSB first).

        The innermost cylinder resolves nothing (all bits done).
        """
        if not 0 <= cylinder < self.n_cylinders:
            raise ConfigurationError(f"cylinder {cylinder} out of range")
        return cylinder

    def _bit_mask(self, cylinder: int) -> int:
        # Bit c counted from the MSB of a height_bits-wide field.
        return 1 << (self.height_bits - 1 - cylinder)

    def crossing_height(self, cylinder: int, height: int) -> int:
        """Height after a same-cylinder hop (the crossing pattern).

        In cylinder c the pattern flips routing bit c; the innermost
        cylinder preserves height (pure circulation).
        """
        if cylinder >= self.height_bits:
            return height
        return height ^ self._bit_mask(cylinder)

    def same_cylinder_next(self, addr: NodeAddress) -> NodeAddress:
        """The same-cylinder (deflection/search) link target."""
        self.validate(addr)
        return NodeAddress(
            addr.cylinder,
            (addr.angle + 1) % self.n_angles,
            self.crossing_height(addr.cylinder, addr.height),
        )

    def descend_next(self, addr: NodeAddress) -> NodeAddress:
        """The ingression link target (one cylinder inward)."""
        self.validate(addr)
        if addr.cylinder >= self.n_cylinders - 1:
            raise ConfigurationError(
                "innermost cylinder has no ingression link"
            )
        return NodeAddress(
            addr.cylinder + 1,
            (addr.angle + 1) % self.n_angles,
            addr.height,
        )

    def height_bit(self, height: int, cylinder: int) -> int:
        """Bit *cylinder* (MSB first) of a height value."""
        if cylinder >= self.height_bits:
            raise ConfigurationError(
                f"height has only {self.height_bits} bits"
            )
        return (height >> (self.height_bits - 1 - cylinder)) & 1

    def __repr__(self) -> str:
        return (f"VortexTopology(A={self.n_angles}, "
                f"C={self.n_cylinders}, H={self.n_heights}, "
                f"{self.n_nodes} nodes)")
