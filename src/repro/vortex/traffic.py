"""Traffic generators and load-sweep utilities for the Data Vortex.

The test bed's purpose is characterizing the fabric under "various
signaling protocols"; these generators provide the standard network-
evaluation workloads (uniform random, hotspot, permutation, bursty)
and a sweep harness producing latency/throughput curves.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.vortex.fabric import DataVortexFabric, FabricConfig
from repro.vortex.stats import FabricStats


class TrafficPattern:
    """Base: pick a destination for each generated packet."""

    def destination(self, rng: np.random.Generator,
                    n_heights: int) -> int:
        raise NotImplementedError


class UniformTraffic(TrafficPattern):
    """Destinations uniform over all outputs."""

    def destination(self, rng, n_heights):
        return int(rng.integers(0, n_heights))


class HotspotTraffic(TrafficPattern):
    """A fraction of traffic aims at one hot output.

    Parameters
    ----------
    hot_output:
        The contended port.
    hot_fraction:
        Probability a packet targets it (the rest is uniform).
    """

    def __init__(self, hot_output: int = 0, hot_fraction: float = 0.5):
        if not 0.0 <= hot_fraction <= 1.0:
            raise ConfigurationError(
                f"hot fraction must be in [0, 1], got {hot_fraction}"
            )
        self.hot_output = int(hot_output)
        self.hot_fraction = float(hot_fraction)

    def destination(self, rng, n_heights):
        if rng.random() < self.hot_fraction:
            return self.hot_output % n_heights
        return int(rng.integers(0, n_heights))


class PermutationTraffic(TrafficPattern):
    """Each source angle always sends to one fixed output (a static
    permutation, the classic worst reasonable case)."""

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._mapping: Optional[np.ndarray] = None
        self._cursor = 0

    def destination(self, rng, n_heights):
        if self._mapping is None or len(self._mapping) != n_heights:
            perm_rng = np.random.default_rng(self._seed)
            self._mapping = perm_rng.permutation(n_heights)
        dest = int(self._mapping[self._cursor % n_heights])
        self._cursor += 1
        return dest


class BurstyTraffic(TrafficPattern):
    """Runs of packets to the same destination (packet trains)."""

    def __init__(self, burst_length: int = 8):
        if burst_length < 1:
            raise ConfigurationError("burst length must be >= 1")
        self.burst_length = int(burst_length)
        self._remaining = 0
        self._current = 0

    def destination(self, rng, n_heights):
        if self._remaining == 0:
            self._current = int(rng.integers(0, n_heights))
            self._remaining = self.burst_length
        self._remaining -= 1
        return self._current


@dataclasses.dataclass(frozen=True)
class LoadPoint:
    """One point of a load sweep.

    Attributes
    ----------
    offered_load:
        Injection attempts per input per cycle (0-1).
    stats:
        The fabric's counters after the run.
    """

    offered_load: float
    stats: FabricStats

    @property
    def mean_latency(self) -> float:
        """Mean delivery latency, cycles."""
        return self.stats.mean_latency()

    @property
    def throughput(self) -> float:
        """Delivered packets per cycle."""
        return self.stats.throughput()

    @property
    def deflection_rate(self) -> float:
        """Deflections per delivered packet."""
        return self.stats.deflection_rate()


def run_load_point(pattern: TrafficPattern, offered_load: float,
                   n_cycles: int = 300,
                   config: FabricConfig = FabricConfig(),
                   seed: int = 0,
                   drain: bool = True,
                   registry=None) -> LoadPoint:
    """Drive the fabric at one offered load.

    Each cycle, every injection angle attempts a packet with
    probability *offered_load*. An injected *registry* is handed to
    the fabric, so a whole load point can be profiled in isolation.
    """
    if not 0.0 <= offered_load <= 1.0:
        raise ConfigurationError(
            f"offered load must be in [0, 1], got {offered_load}"
        )
    if n_cycles < 1:
        raise ConfigurationError("need >= 1 cycle")
    fab = DataVortexFabric(config, registry=registry)
    rng = np.random.default_rng(seed)
    for _ in range(n_cycles):
        for _ in range(config.n_angles):
            if rng.random() < offered_load:
                fab.submit(pattern.destination(rng,
                                               config.n_heights))
        fab.step()
    if drain:
        fab.drain(max_cycles=100_000)
    return LoadPoint(offered_load=offered_load, stats=fab.stats)


def load_sweep(pattern: TrafficPattern,
               loads=(0.1, 0.3, 0.5, 0.7, 0.9),
               **kwargs) -> List[LoadPoint]:
    """Latency/throughput curve over several offered loads."""
    return [run_load_point(pattern, load, **kwargs) for load in loads]


def compare_patterns(loads=(0.2, 0.6),
                     config: FabricConfig = FabricConfig(),
                     seed: int = 0) -> Dict[str, List[LoadPoint]]:
    """All four standard patterns over the same loads."""
    patterns = {
        "uniform": UniformTraffic(),
        "hotspot": HotspotTraffic(hot_fraction=0.5),
        "permutation": PermutationTraffic(seed=seed),
        "bursty": BurstyTraffic(burst_length=8),
    }
    return {
        name: load_sweep(p, loads=loads, config=config, seed=seed)
        for name, p in patterns.items()
    }
