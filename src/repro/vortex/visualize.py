"""ASCII visualization of fabric state.

Renders cylinder occupancy as rings of characters — the quick-look
debugging view for deflection behaviour (hot cylinders show up as
dense rings).
"""

from __future__ import annotations

from typing import List

from repro.vortex.fabric import DataVortexFabric


def render_fabric_ascii(fabric: DataVortexFabric) -> str:
    """One line per (cylinder, height) row; '*' marks occupancy.

    Columns are angles. The outermost (injection) cylinder prints
    first.
    """
    topo = fabric.topology
    lines: List[str] = []
    for c in range(topo.n_cylinders):
        tag = "inject" if c == 0 else (
            "eject" if c == topo.n_cylinders - 1 else ""
        )
        lines.append(f"cylinder {c} {tag}".rstrip())
        for h in range(topo.n_heights):
            row = []
            for a in range(topo.n_angles):
                from repro.vortex.topology import NodeAddress

                node = fabric.nodes[NodeAddress(c, a, h)]
                row.append("*" if node.occupied else ".")
            lines.append(f"  h{h:<2} " + " ".join(row))
    lines.append(
        f"in-flight {fabric.packets_in_flight}, "
        f"queued {len(fabric.injection_queue)}, "
        f"delivered {fabric.stats.delivered}"
    )
    return "\n".join(lines)


def occupancy_sparkline(fabric: DataVortexFabric) -> str:
    """One character per cylinder: density of resident packets."""
    shades = " .:-=+*#%@"
    topo = fabric.topology
    per_cylinder = fabric.occupancy_by_cylinder()
    capacity = topo.n_angles * topo.n_heights
    out = []
    for c in range(topo.n_cylinders):
        density = per_cylinder[c] / capacity
        idx = min(len(shades) - 1, int(density * (len(shades) - 1)
                                       + 0.5))
        out.append(shades[idx])
    return "[" + "".join(out) + "]"
