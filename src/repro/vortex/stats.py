"""Fabric performance statistics.

Latency, throughput, and deflection accounting for the Data Vortex —
the figures of merit the test bed exists to measure (ref [4] reports
latency and routing behaviour of the eight-node hardware demo).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

import numpy as np

from repro.errors import MeasurementError


@dataclasses.dataclass(frozen=True)
class LatencyRecord:
    """One delivered packet's journey summary.

    Attributes
    ----------
    packet_id:
        Which packet.
    latency_cycles:
        Injection to delivery, in slot times.
    hops:
        Node-to-node hops taken.
    deflections:
        Denied descents along the way.
    destination:
        Output height reached.
    """

    packet_id: int
    latency_cycles: int
    hops: int
    deflections: int
    destination: int


class FabricStats:
    """Mutable counters filled in by the fabric as it runs."""

    def __init__(self):
        self.submitted = 0
        self.injected = 0
        self.injection_blocks = 0
        self.deflections = 0
        self.cycles = 0
        self.records: List[LatencyRecord] = []

    @property
    def delivered(self) -> int:
        """Packets that reached their output."""
        return len(self.records)

    def record_delivery(self, packet, cycle: int) -> None:
        """Log one delivery (called by the fabric)."""
        self.records.append(LatencyRecord(
            packet_id=packet.packet_id,
            latency_cycles=cycle - packet.injected_cycle,
            hops=packet.hops,
            deflections=packet.deflections,
            destination=packet.destination_height,
        ))

    # -- summaries ---------------------------------------------------------

    def latencies(self) -> np.ndarray:
        """Delivered-packet latencies in cycles."""
        return np.array([r.latency_cycles for r in self.records],
                        dtype=np.int64)

    def mean_latency(self) -> float:
        """Average delivery latency in cycles."""
        lat = self.latencies()
        if len(lat) == 0:
            raise MeasurementError("no packets delivered yet")
        return float(lat.mean())

    def max_latency(self) -> int:
        """Worst delivery latency in cycles."""
        lat = self.latencies()
        if len(lat) == 0:
            raise MeasurementError("no packets delivered yet")
        return int(lat.max())

    def mean_latency_ps(self, slot_time_ps: float) -> float:
        """Average latency in ps for a given slot time."""
        return self.mean_latency() * slot_time_ps

    def throughput(self) -> float:
        """Delivered packets per cycle."""
        if self.cycles == 0:
            raise MeasurementError("fabric has not run")
        return self.delivered / self.cycles

    def deflection_rate(self) -> float:
        """Deflections per delivered packet."""
        if self.delivered == 0:
            raise MeasurementError("no packets delivered yet")
        return self.deflections / self.delivered

    def acceptance_rate(self) -> float:
        """Injections over injection attempts (1.0 = no backpressure).

        An attempt is one queued packet in one cycle, so
        ``injection_blocks`` accumulates packet-cycles of waiting: a
        packet injected the same cycle it was submitted never counts
        as blocked.
        """
        attempts = self.injected + self.injection_blocks
        if attempts == 0:
            raise MeasurementError("no injection attempts yet")
        return self.injected / attempts

    def per_destination_counts(self) -> Dict[int, int]:
        """Delivered packets per output height."""
        out: Dict[int, int] = {}
        for r in self.records:
            out[r.destination] = out.get(r.destination, 0) + 1
        return out

    def summary(self) -> str:
        """Human-readable digest."""
        if self.delivered == 0:
            return (f"{self.cycles} cycles, {self.submitted} submitted, "
                    "0 delivered")
        return (
            f"{self.cycles} cycles: {self.delivered}/{self.submitted} "
            f"delivered, mean latency {self.mean_latency():.2f} cycles, "
            f"max {self.max_latency()}, "
            f"{self.deflection_rate():.2f} deflections/packet"
        )
