"""The Data Vortex optical packet switching fabric.

The Optical Test Bed's DUT (Section 3): "an experimental switching
fabric designed to address the issues associated with interfacing an
optical packet interconnection network to high-performance computing
systems" [4, 5]. The fabric is a multi-level minimum-logic network:
C concentric cylinders of A angles x H heights, with deflection
routing and no internal buffering ("virtual buffering" = circling a
cylinder until the way in is clear).
"""

from repro.vortex.packet import VortexPacket
from repro.vortex.topology import VortexTopology, NodeAddress
from repro.vortex.node import RoutingNode, RoutingDecision
from repro.vortex.fabric import DataVortexFabric, FabricConfig
from repro.vortex.routing import resolved_height_bits, wants_descent
from repro.vortex.stats import FabricStats, LatencyRecord
from repro.vortex.traffic import (
    BurstyTraffic,
    HotspotTraffic,
    LoadPoint,
    PermutationTraffic,
    TrafficPattern,
    UniformTraffic,
    compare_patterns,
    load_sweep,
    run_load_point,
)
from repro.vortex.visualize import occupancy_sparkline, render_fabric_ascii

__all__ = [
    "VortexPacket",
    "VortexTopology",
    "NodeAddress",
    "RoutingNode",
    "RoutingDecision",
    "DataVortexFabric",
    "FabricConfig",
    "resolved_height_bits",
    "wants_descent",
    "FabricStats",
    "LatencyRecord",
    "TrafficPattern",
    "UniformTraffic",
    "HotspotTraffic",
    "PermutationTraffic",
    "BurstyTraffic",
    "LoadPoint",
    "run_load_point",
    "load_sweep",
    "compare_patterns",
    "render_fabric_ascii",
    "occupancy_sparkline",
]
