"""Header-bit routing logic of the Data Vortex node.

The node's "minimum logic": compare one bit of the packet's header
(destination height) against the node's own height and decide —
descend toward the output, or circle the cylinder. No arithmetic, no
stored state, which is what makes an all-optical implementation
possible.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.vortex.topology import VortexTopology, NodeAddress


def resolved_height_bits(topology: VortexTopology, height: int,
                         destination: int, cylinder: int) -> bool:
    """True if height bits 0..cylinder-1 (MSB first) match the
    destination — the invariant a packet must satisfy on arrival at
    *cylinder*."""
    for c in range(min(cylinder, topology.height_bits)):
        if topology.height_bit(height, c) != \
                topology.height_bit(destination, c):
            return False
    return True


def wants_descent(topology: VortexTopology, addr: NodeAddress,
                  destination: int) -> bool:
    """Does a packet at *addr* want the ingression link?

    At cylinder c the packet descends when routing bit c of its
    current height already matches the destination; otherwise it
    takes the crossing link (which flips that bit) and tries again
    next angle.
    """
    topology.validate(addr)
    if not 0 <= destination < topology.n_heights:
        raise ConfigurationError(
            f"destination {destination} outside fabric heights"
        )
    c = addr.cylinder
    if c >= topology.n_cylinders - 1:
        return False  # innermost: circles until ejection
    if c >= topology.height_bits:
        return True
    return (topology.height_bit(addr.height, c)
            == topology.height_bit(destination, c))


def at_destination(topology: VortexTopology, addr: NodeAddress,
                   destination: int) -> bool:
    """True when the packet can eject: innermost cylinder, height
    equal to the destination."""
    return (addr.cylinder == topology.n_cylinders - 1
            and addr.height == destination)
