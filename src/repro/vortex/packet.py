"""Optical packets traversing the Data Vortex.

A packet is the optical form of one test-bed slot (see
:mod:`repro.core.packetformat`): a frame bit, header (routing
address) bits on their own wavelengths, and the payload riding along
untouched — the vortex routes on the header only.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclasses.dataclass
class VortexPacket:
    """One packet in flight.

    Attributes
    ----------
    packet_id:
        Unique identifier.
    destination_height:
        Target output height (the routing address).
    payload:
        Opaque payload bits (carried, never examined).
    injected_cycle:
        Fabric cycle at which the packet entered.
    hops:
        Total node-to-node hops taken so far.
    deflections:
        Times the packet was denied descent and circled instead.
    """

    packet_id: int
    destination_height: int
    payload: Optional[np.ndarray] = None
    injected_cycle: int = 0
    hops: int = 0
    deflections: int = 0

    def __post_init__(self):
        if self.destination_height < 0:
            raise ConfigurationError("destination height must be >= 0")

    def latency(self, current_cycle: int) -> int:
        """Cycles in flight as of *current_cycle*."""
        return current_cycle - self.injected_cycle

    @classmethod
    def from_slot(cls, slot, packet_id: int,
                  injected_cycle: int = 0) -> "VortexPacket":
        """Build a packet from a test-bed :class:`PacketSlot`.

        The slot's header bits give the destination height; the
        payload channels are flattened into the optical payload.
        """
        payload = np.concatenate(slot.payload) if slot.payload else None
        return cls(
            packet_id=packet_id,
            destination_height=slot.address(),
            payload=payload,
            injected_cycle=injected_cycle,
        )
