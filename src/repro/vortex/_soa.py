"""Struct-of-arrays link tables for the Data Vortex fabric.

The cycle-accurate fabric used to route by scanning a dict of
``RoutingNode`` objects and re-deriving every link target through
:class:`NodeAddress` construction and hashing — per node, per
cylinder, per cycle. This module flattens the topology once into
dense arrays indexed by flat node id::

    idx = (cylinder * n_angles + angle) * n_heights + height

so a step can discover occupancy with one ``flatnonzero`` and make
routing decisions with integer array math. Tables are immutable and
cached per ``(n_angles, n_heights)``; every fabric instance of the
same geometry shares them.

Both stepping paths of :class:`repro.vortex.fabric.DataVortexFabric`
read these tables: the vectorized path through the numpy arrays, the
low-occupancy scalar path through plain-list mirrors (Python-int
indexing without numpy scalar boxing).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.vortex.topology import NodeAddress, VortexTopology


class TopologyArrays:
    """Flattened link structure of one fabric geometry.

    Attributes
    ----------
    heights:
        Height of each flat node id.
    cross_next:
        Flat id of the same-cylinder (crossing) link target.
    desc_next:
        Flat id of the ingression link target; -1 on the innermost
        cylinder.
    bitmask:
        The routing bit resolved by the node's cylinder as a height
        mask (0 once all bits are resolved) — a packet at the node
        wants descent iff ``(height ^ destination) & bitmask == 0``.
    cyl_starts:
        Flat id of each cylinder's first node, plus the total node
        count as a sentinel (length ``n_cylinders + 1``).
    """

    def __init__(self, topology: VortexTopology):
        self.n_angles = topology.n_angles
        self.n_heights = topology.n_heights
        self.n_cylinders = topology.n_cylinders
        self.height_bits = topology.height_bits
        self.n_nodes = topology.n_nodes

        A, H, C = self.n_angles, self.n_heights, self.n_cylinders
        idx = np.arange(self.n_nodes, dtype=np.int64)
        cyl = idx // (A * H)
        angle = (idx // H) % A
        height = idx % H

        # Routing bit mask per cylinder (MSB first); 0 for cylinders
        # past the height bits (including the innermost).
        cyl_mask = np.where(
            cyl < self.height_bits,
            np.left_shift(1, np.maximum(self.height_bits - 1 - cyl, 0)),
            0,
        ).astype(np.int64)

        next_angle = (angle + 1) % A
        cross_height = height ^ cyl_mask  # innermost mask 0: unchanged
        self.cross_next = ((cyl * A + next_angle) * H
                           + cross_height).astype(np.int64)
        self.desc_next = np.where(
            cyl < C - 1,
            ((cyl + 1) * A + next_angle) * H + height,
            -1,
        ).astype(np.int64)
        self.heights = height.astype(np.int64)
        self.bitmask = cyl_mask
        self.cyl_starts = (np.arange(C + 1, dtype=np.int64) * A * H)

        # Plain-int mirrors for the scalar fast path.
        self.heights_list: List[int] = self.heights.tolist()
        self.cross_list: List[int] = self.cross_next.tolist()
        self.desc_list: List[int] = self.desc_next.tolist()
        self.bitmask_list: List[int] = self.bitmask.tolist()
        self.cyl_starts_list: List[int] = self.cyl_starts.tolist()
        self.inner_start: int = int(self.cyl_starts[C - 1])

        self._addresses: List[NodeAddress] = []

    def index(self, addr: NodeAddress) -> int:
        """Flat node id of *addr*."""
        return ((addr.cylinder * self.n_angles + addr.angle)
                * self.n_heights + addr.height)

    def addresses(self) -> List[NodeAddress]:
        """Flat-id-ordered node addresses (built lazily, cached)."""
        if not self._addresses:
            self._addresses = [
                NodeAddress(c, a, h)
                for c in range(self.n_cylinders)
                for a in range(self.n_angles)
                for h in range(self.n_heights)
            ]
        return self._addresses


_CACHE: Dict[Tuple[int, int], TopologyArrays] = {}


def topology_arrays(topology: VortexTopology) -> TopologyArrays:
    """The shared :class:`TopologyArrays` for *topology*'s geometry."""
    key = (topology.n_angles, topology.n_heights)
    arrays = _CACHE.get(key)
    if arrays is None:
        arrays = _CACHE[key] = TopologyArrays(topology)
    return arrays
