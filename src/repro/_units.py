"""Unit conventions and conversion helpers.

The whole library uses a single set of base units:

* **time** — picoseconds (``float``)
* **voltage** — volts (``float``)
* **frequency** — gigahertz (``float``)
* **data rate** — gigabits per second (``float``)

Keeping time in picoseconds (rather than seconds) keeps the numbers in
a comfortable float range for multi-gigahertz work: one bit period at
5 Gbps is exactly ``200.0`` ps, and a 10 ps delay step is ``10.0``.
"""

from __future__ import annotations

# -- time ------------------------------------------------------------------

PS = 1.0
"""One picosecond, the base time unit."""

NS = 1_000.0
"""One nanosecond in picoseconds."""

US = 1_000_000.0
"""One microsecond in picoseconds."""

MS = 1_000_000_000.0
"""One millisecond in picoseconds."""

S = 1_000_000_000_000.0
"""One second in picoseconds."""

# -- voltage ---------------------------------------------------------------

V = 1.0
"""One volt, the base voltage unit."""

MV = 1e-3
"""One millivolt in volts."""

# -- frequency / rate ------------------------------------------------------

GHZ = 1.0
"""One gigahertz, the base frequency unit."""

MHZ = 1e-3
"""One megahertz in gigahertz."""

KHZ = 1e-6
"""One kilohertz in gigahertz."""

GBPS = 1.0
"""One gigabit per second, the base data-rate unit."""

MBPS = 1e-3
"""One megabit per second in Gbps."""


def period_ps(frequency_ghz: float) -> float:
    """Return the period in picoseconds of a clock at *frequency_ghz*.

    >>> period_ps(2.5)
    400.0
    """
    if frequency_ghz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_ghz}")
    return 1_000.0 / frequency_ghz


def frequency_ghz(period_ps_: float) -> float:
    """Return the frequency in GHz of a clock with period *period_ps_*.

    >>> frequency_ghz(400.0)
    2.5
    """
    if period_ps_ <= 0.0:
        raise ValueError(f"period must be positive, got {period_ps_}")
    return 1_000.0 / period_ps_


def unit_interval_ps(rate_gbps: float) -> float:
    """Return the unit interval (bit period) in ps for *rate_gbps*.

    >>> unit_interval_ps(5.0)
    200.0
    """
    if rate_gbps <= 0.0:
        raise ValueError(f"data rate must be positive, got {rate_gbps}")
    return 1_000.0 / rate_gbps


def rate_gbps(unit_interval_ps_: float) -> float:
    """Return the data rate in Gbps for a bit period of *unit_interval_ps_*.

    >>> rate_gbps(200.0)
    5.0
    """
    if unit_interval_ps_ <= 0.0:
        raise ValueError(f"unit interval must be positive, got {unit_interval_ps_}")
    return 1_000.0 / unit_interval_ps_
