"""Wafer-level probing environment (Section 4's application).

A wafer map of WLP die with compliant leads, DUTs with BIST, the
probe card (contact yield, touchdowns), the multi-site parallel test
scheduler of Figure 13, and the production throughput model behind
the paper's "increasing production throughput by an order of
magnitude" claim.
"""

from repro.wafer.map import WaferMap, Die, DieState
from repro.wafer.bist import BISTEngine, MISR, BISTResult
from repro.wafer.dut import WLPDevice, DUTSpec
from repro.wafer.probe import ProbeCard, Touchdown
from repro.wafer.scheduler import MultiSiteScheduler, SiteAssignment
from repro.wafer.throughput import ThroughputModel, ThroughputReport
from repro.wafer.binning import (
    BinResult,
    DEFAULT_BINS,
    SpeedBin,
    SpeedBinner,
)
from repro.wafer.inkmap import (
    BinSummary,
    export_map_file,
    render_bin_map,
    summarize,
)

__all__ = [
    "WaferMap",
    "Die",
    "DieState",
    "BISTEngine",
    "MISR",
    "BISTResult",
    "WLPDevice",
    "DUTSpec",
    "ProbeCard",
    "Touchdown",
    "MultiSiteScheduler",
    "SiteAssignment",
    "ThroughputModel",
    "ThroughputReport",
    "SpeedBin",
    "SpeedBinner",
    "BinResult",
    "DEFAULT_BINS",
    "BinSummary",
    "summarize",
    "render_bin_map",
    "export_map_file",
]
