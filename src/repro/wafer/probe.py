"""Probe card and touchdown mechanics.

The mini-tester rides "the top side of a multi-layer printed circuit
board which serves in place of the traditional probe card". The
model covers touchdowns (stepping the wafer under the card), contact
yield per touchdown, and the per-touchdown time budget the
throughput model consumes.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, ProbeError
from repro.wafer.map import Die, DieState, WaferMap


@dataclasses.dataclass(frozen=True)
class Touchdown:
    """One placement of the probe card on the wafer.

    Attributes
    ----------
    sites:
        Die positions under tester sites this touchdown (None for a
        site hanging off the wafer).
    index_time_s:
        Stepping/alignment time consumed.
    """

    sites: Tuple[Optional[Tuple[int, int]], ...]
    index_time_s: float

    @property
    def active_sites(self) -> int:
        """Sites landing on real die."""
        return sum(1 for s in self.sites if s is not None)


class ProbeCard:
    """The probe card carrying one or more mini-tester sites.

    Parameters
    ----------
    n_sites:
        Mini-testers on the card (Figure 13's array).
    site_pitch_x:
        Die-grid columns between adjacent sites.
    contact_yield:
        Probability a touchdown makes good contact at a site.
    index_time_s:
        Wafer stepping time per touchdown.
    """

    def __init__(self, n_sites: int = 1, site_pitch_x: int = 1,
                 contact_yield: float = 0.995,
                 index_time_s: float = 0.8):
        if n_sites < 1:
            raise ConfigurationError(f"need >= 1 site, got {n_sites}")
        if site_pitch_x < 1:
            raise ConfigurationError("site pitch must be >= 1")
        if not 0.0 < contact_yield <= 1.0:
            raise ConfigurationError(
                f"contact yield must be in (0, 1], got {contact_yield}"
            )
        if index_time_s <= 0.0:
            raise ConfigurationError("index time must be positive")
        self.n_sites = int(n_sites)
        self.site_pitch_x = int(site_pitch_x)
        self.contact_yield = float(contact_yield)
        self.index_time_s = float(index_time_s)

    def plan_touchdowns(self, wafer: WaferMap) -> List[Touchdown]:
        """Cover every die with the fewest touchdowns.

        Sites sit in a row along x at the configured pitch; the plan
        rasters the wafer row by row.
        """
        dies = {d.position for d in wafer}
        if not dies:
            raise ProbeError("wafer has no dies")
        covered = set()
        touchdowns: List[Touchdown] = []
        span = self.n_sites * self.site_pitch_x
        ys = sorted({y for _, y in dies})
        for y in ys:
            xs = sorted(x for x, yy in dies if yy == y)
            x_cursor = xs[0]
            while x_cursor <= xs[-1]:
                sites = []
                landed = False
                for s in range(self.n_sites):
                    pos = (x_cursor + s * self.site_pitch_x, y)
                    if pos in dies and pos not in covered:
                        sites.append(pos)
                        covered.add(pos)
                        landed = True
                    else:
                        sites.append(None)
                if landed:
                    touchdowns.append(Touchdown(tuple(sites),
                                                self.index_time_s))
                x_cursor += span
        remaining = dies - covered
        if remaining:
            raise ProbeError(
                f"touchdown plan missed {len(remaining)} dies"
            )
        return touchdowns

    def contact_ok(self, rng: np.random.Generator) -> bool:
        """Bernoulli draw of one site's contact success."""
        return bool(rng.random() < self.contact_yield)
