"""Wafer map: the grid of die to be probed.

Dies live on an x/y grid clipped to the wafer circle; each tracks
its test state. The map feeds the multi-site scheduler and the
throughput model.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError, ProbeError


class DieState(enum.Enum):
    """Lifecycle of one die during wafer sort."""

    UNTESTED = "untested"
    TESTING = "testing"
    PASSED = "passed"
    FAILED = "failed"
    SKIPPED = "skipped"


@dataclasses.dataclass
class Die:
    """One die site.

    Attributes
    ----------
    x, y:
        Grid coordinates (0 at wafer center).
    state:
        Test lifecycle state.
    """

    x: int
    y: int
    state: DieState = DieState.UNTESTED

    @property
    def position(self) -> Tuple[int, int]:
        """Grid coordinates as a tuple."""
        return (self.x, self.y)


class WaferMap:
    """All die sites on one wafer.

    Parameters
    ----------
    diameter_mm:
        Wafer diameter (200 mm default).
    die_width_mm, die_height_mm:
        Die step sizes.
    edge_exclusion_mm:
        Ring near the edge with no full die.
    """

    def __init__(self, diameter_mm: float = 200.0,
                 die_width_mm: float = 5.0, die_height_mm: float = 5.0,
                 edge_exclusion_mm: float = 3.0):
        if diameter_mm <= 0.0 or die_width_mm <= 0.0 \
                or die_height_mm <= 0.0:
            raise ConfigurationError("wafer/die dimensions must be positive")
        if edge_exclusion_mm < 0.0:
            raise ConfigurationError("edge exclusion must be >= 0")
        self.diameter_mm = float(diameter_mm)
        self.die_width_mm = float(die_width_mm)
        self.die_height_mm = float(die_height_mm)
        self.edge_exclusion_mm = float(edge_exclusion_mm)
        self._dies = {}
        radius = diameter_mm / 2.0 - edge_exclusion_mm
        n_x = int(diameter_mm / die_width_mm) + 1
        n_y = int(diameter_mm / die_height_mm) + 1
        for ix in range(-n_x, n_x + 1):
            for iy in range(-n_y, n_y + 1):
                # A die counts if all four corners are on the wafer.
                cx = ix * die_width_mm
                cy = iy * die_height_mm
                corners = [
                    (cx + sx * die_width_mm / 2.0,
                     cy + sy * die_height_mm / 2.0)
                    for sx in (-1, 1) for sy in (-1, 1)
                ]
                if all(math.hypot(px, py) <= radius
                       for px, py in corners):
                    self._dies[(ix, iy)] = Die(ix, iy)

    def __len__(self) -> int:
        return len(self._dies)

    def __iter__(self) -> Iterator[Die]:
        return iter(sorted(self._dies.values(),
                           key=lambda d: (d.y, d.x)))

    def die_at(self, x: int, y: int) -> Die:
        """Look up one die; raises for off-wafer coordinates."""
        try:
            return self._dies[(x, y)]
        except KeyError:
            raise ProbeError(f"no die at ({x}, {y})") from None

    def has_die(self, x: int, y: int) -> bool:
        """True if a full die exists at the coordinates."""
        return (x, y) in self._dies

    def dies_in_state(self, state: DieState) -> List[Die]:
        """All dies currently in *state*."""
        return [d for d in self if d.state is state]

    def untested(self) -> List[Die]:
        """Dies still waiting for test."""
        return self.dies_in_state(DieState.UNTESTED)

    def yield_fraction(self) -> float:
        """Passed over tested (passed + failed)."""
        passed = len(self.dies_in_state(DieState.PASSED))
        failed = len(self.dies_in_state(DieState.FAILED))
        tested = passed + failed
        if tested == 0:
            raise ProbeError("no dies tested yet")
        return passed / tested

    def neighbors(self, die: Die, dx: int = 1,
                  dy: int = 0) -> Optional[Die]:
        """The die at a grid offset from *die* (None off-wafer)."""
        key = (die.x + dx, die.y + dy)
        return self._dies.get(key)
