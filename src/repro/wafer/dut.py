"""The WLP device under test.

"5 Gbps IC with BIST" (Figure 12): a wafer-level-packaged part whose
high-speed path the mini-tester exercises through the compliant
leads, with an on-chip BIST engine for the digital core. A DUT can
carry defects: a high-speed path that degrades the signal, a BIST
fault, or open leads.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, ProbeError
from repro.channel.interposer import CompliantLead
from repro.signal.waveform import Waveform
from repro.wafer.bist import BISTEngine, BISTResult


@dataclasses.dataclass(frozen=True)
class DUTSpec:
    """Device parameters.

    Attributes
    ----------
    max_rate_gbps:
        Rated speed of the high-speed loopback path.
    n_leads:
        Compliant lead count.
    loopback_loss_db:
        Through-DUT loss of the test path.
    """

    max_rate_gbps: float = 5.0
    n_leads: int = 64
    loopback_loss_db: float = 1.0

    def __post_init__(self):
        if self.max_rate_gbps <= 0.0:
            raise ConfigurationError("rated speed must be positive")
        if self.n_leads < 1:
            raise ConfigurationError("need >= 1 lead")
        if self.loopback_loss_db < 0.0:
            raise ConfigurationError("loss must be >= 0")


class WLPDevice:
    """One wafer-level-packaged DUT.

    Parameters
    ----------
    spec:
        Device parameters.
    lead:
        Compliant-lead parasitics (shared by all leads).
    bist_fault:
        Optional (vector, bitmask) BIST defect.
    open_leads:
        Lead indices with no contact (mechanical defects).
    speed_derate:
        Fraction of rated speed this die actually achieves (< 1.0
        models a slow corner die).
    """

    def __init__(self, spec: DUTSpec = DUTSpec(),
                 lead: CompliantLead = CompliantLead(),
                 bist_fault: Optional[tuple] = None,
                 open_leads: Optional[set] = None,
                 speed_derate: float = 1.0):
        if not 0.0 < speed_derate <= 1.0:
            raise ConfigurationError(
                f"speed derate must be in (0, 1], got {speed_derate}"
            )
        self.spec = spec
        self.lead = lead
        self.bist = BISTEngine(fault_mask=bist_fault)
        self.open_leads = set(open_leads or ())
        bad = {i for i in self.open_leads
               if not 0 <= i < spec.n_leads}
        if bad:
            raise ConfigurationError(
                f"open-lead indices out of range: {sorted(bad)}"
            )
        self.speed_derate = float(speed_derate)

    @property
    def effective_max_rate_gbps(self) -> float:
        """The speed this individual die sustains."""
        return self.spec.max_rate_gbps * self.speed_derate

    def lead_contact(self, lead_index: int) -> bool:
        """True when the lead makes electrical contact."""
        if not 0 <= lead_index < self.spec.n_leads:
            raise ProbeError(
                f"lead {lead_index} out of range "
                f"[0, {self.spec.n_leads})"
            )
        return lead_index not in self.open_leads

    def loopback(self, waveform: Waveform, rate_gbps: float,
                 lead_index: int = 0,
                 t_first_bit: float = 0.0) -> Waveform:
        """Pass the tester's signal through the DUT's test path.

        The on-die loopback is *digital* (a retimed repeater, the
        usual high-speed DFT structure): the input is sampled at the
        applied rate, regenerated, and re-driven through the output
        lead. A die driven beyond its rating misses its internal
        flip-flop timing — cells are held at the previous value with
        a probability that grows with the overclock ratio, producing
        hard functional bit errors rather than a gently smaller
        swing.

        Parameters
        ----------
        t_first_bit:
            Time at which bit cell 0 of the incoming stream starts.
        """
        if not self.lead_contact(lead_index):
            raise ProbeError(
                f"lead {lead_index} is open; no signal through the DUT"
            )
        from repro.signal.sampling import decide_bits
        from repro.signal.nrz import NRZEncoder
        from repro._units import unit_interval_ps

        mid = 0.5 * (waveform.min() + waveform.max())
        bits = decide_bits(waveform, rate_gbps, mid,
                           t_first_bit=t_first_bit)
        # Internal retiming failure past the rating: hold-previous
        # errors with probability growing as the overclock deepens.
        over = rate_gbps / self.effective_max_rate_gbps
        if over > 1.0:
            p_fail = min(1.0, 3.0 * (over - 1.0))
            rng = np.random.default_rng(self.spec.n_leads * 7919
                                        + lead_index)
            held = rng.random(len(bits)) < p_fail
            corrupted = bits.copy()
            for k in np.flatnonzero(held):
                corrupted[k] = corrupted[k - 1] if k else 0
            bits = corrupted
        # Re-drive: the DUT's output buffer between the incoming
        # rails, then the output lead's loss.
        gain = 10.0 ** (-self.spec.loopback_loss_db / 20.0)
        swing = waveform.max() - waveform.min()
        encoder = NRZEncoder(
            rate_gbps,
            v_low=mid - gain * swing / 2.0,
            v_high=mid + gain * swing / 2.0,
            t20_80=100.0,
            dt=waveform.dt,
        )
        out = encoder.encode(bits)
        # encode() puts bit cell 0 at t=0; restore the caller's frame.
        return out.shifted(t_first_bit)

    def run_bist(self, n_vectors: int = 256) -> BISTResult:
        """Start the on-chip BIST and return its result."""
        return self.bist.run(n_vectors)
