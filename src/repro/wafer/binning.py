"""Speed binning of WLP devices.

Production sort does more than pass/fail: parts are graded into
speed bins by the highest rate at which they still test clean. The
mini-tester's rate-programmable loopback makes this natural — sweep
the rate, find the last passing point, assign the bin.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, ProbeError
from repro.signal.sampling import decide_bits
from repro.signal.prbs import prbs_bits
from repro.signal.nrz import bits_to_waveform
from repro.wafer.dut import WLPDevice


@dataclasses.dataclass(frozen=True)
class SpeedBin:
    """One bin definition.

    Attributes
    ----------
    name:
        Bin label ("5G", "2G5", "reject").
    min_rate_gbps:
        Lowest passing rate qualifying for this bin.
    """

    name: str
    min_rate_gbps: float

    def __post_init__(self):
        if self.min_rate_gbps < 0.0:
            raise ConfigurationError("bin rate must be >= 0")


#: Default bin table for a 5 Gbps product (fastest bin first).
DEFAULT_BINS: List[SpeedBin] = [
    SpeedBin("bin1_5G", 5.0),
    SpeedBin("bin2_4G", 4.0),
    SpeedBin("bin3_2G5", 2.5),
    SpeedBin("reject", 0.0),
]


@dataclasses.dataclass(frozen=True)
class BinResult:
    """Binning outcome for one device.

    Attributes
    ----------
    bin:
        The assigned bin.
    max_passing_rate_gbps:
        Highest rate that tested clean (0 if none).
    rates_tested:
        The sweep actually run.
    """

    bin: SpeedBin
    max_passing_rate_gbps: float
    rates_tested: Sequence[float]


class SpeedBinner:
    """Grades DUTs by sweeping the loopback rate.

    Parameters
    ----------
    bins:
        Bin table, fastest first; the last entry is the reject bin.
    n_bits:
        Loopback pattern length per rate point.
    """

    def __init__(self, bins: Optional[List[SpeedBin]] = None,
                 n_bits: int = 400):
        bins = list(bins) if bins is not None else list(DEFAULT_BINS)
        if len(bins) < 2:
            raise ConfigurationError(
                "need at least one real bin plus the reject bin"
            )
        rates = [b.min_rate_gbps for b in bins]
        if rates != sorted(rates, reverse=True):
            raise ConfigurationError(
                "bins must be ordered fastest to slowest"
            )
        if bins[-1].min_rate_gbps != 0.0:
            raise ConfigurationError(
                "the last bin must be the reject bin (rate 0)"
            )
        if n_bits < 16:
            raise ConfigurationError("need >= 16 bits per point")
        self.bins = bins
        self.n_bits = int(n_bits)

    def _passes_at(self, dut: WLPDevice, rate: float,
                   seed: int) -> bool:
        """One rate point: PRBS through the DUT's loopback path."""
        bits = prbs_bits(7, self.n_bits, seed=1 + seed % 100)
        wf = bits_to_waveform(bits, rate, v_low=1.6, v_high=2.4,
                              t20_80=120.0,
                              rng=np.random.default_rng(seed))
        try:
            looped = dut.loopback(wf, rate)
        except ProbeError:
            return False
        threshold = 0.5 * (looped.min() + looped.max())
        # A collapsed signal (slow die) has no usable swing.
        if looped.peak_to_peak() < 0.15:
            return False
        got = decide_bits(looped, rate, threshold, n_bits=self.n_bits)
        return bool(np.array_equal(got, bits))

    def grade(self, dut: WLPDevice, seed: int = 0) -> BinResult:
        """Assign *dut* to a bin.

        BIST must pass at any speed; then the rate sweep runs the
        bin thresholds fastest-first and stops at the first pass.
        """
        if not dut.run_bist(128).passed:
            return BinResult(bin=self.bins[-1],
                             max_passing_rate_gbps=0.0,
                             rates_tested=())
        tested = []
        for bin_ in self.bins[:-1]:
            rate = bin_.min_rate_gbps
            tested.append(rate)
            if self._passes_at(dut, rate, seed):
                return BinResult(bin=bin_,
                                 max_passing_rate_gbps=rate,
                                 rates_tested=tuple(tested))
        return BinResult(bin=self.bins[-1],
                         max_passing_rate_gbps=0.0,
                         rates_tested=tuple(tested))

    def bin_distribution(self, duts: Sequence[WLPDevice],
                         seed: int = 0) -> dict:
        """Bin counts over a population of devices."""
        counts = {b.name: 0 for b in self.bins}
        for k, dut in enumerate(duts):
            result = self.grade(dut, seed=seed + k)
            counts[result.bin.name] += 1
        return counts
