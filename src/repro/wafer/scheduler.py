"""Multi-site parallel test execution (Figure 13).

"The miniature tester may be replicated in array form ... Functional
testing can then be done in parallel, increasing production
throughput by an order of magnitude." The scheduler walks the
touchdown plan, runs every landed site's test concurrently (each
touchdown costs the *slowest* site's test time, not the sum), and
writes results into the wafer map.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.wafer.dut import WLPDevice
from repro.wafer.map import DieState, WaferMap
from repro.wafer.probe import ProbeCard, Touchdown


@dataclasses.dataclass(frozen=True)
class SiteAssignment:
    """One site's work during one touchdown.

    Attributes
    ----------
    site:
        Site index on the card.
    die_position:
        Which die it landed on.
    passed:
        Test outcome (None when contact failed).
    test_time_s:
        Time that site's test took.
    """

    site: int
    die_position: Tuple[int, int]
    passed: Optional[bool]
    test_time_s: float


@dataclasses.dataclass
class SortRun:
    """Results of probing one wafer.

    Attributes
    ----------
    assignments:
        Every (touchdown, site) outcome.
    total_time_s:
        Wall-clock test time including stepping.
    touchdowns:
        Touchdowns executed.
    """

    assignments: List[SiteAssignment]
    total_time_s: float
    touchdowns: int

    @property
    def dies_tested(self) -> int:
        """Dies with a definite pass/fail."""
        return sum(1 for a in self.assignments if a.passed is not None)

    @property
    def dies_passed(self) -> int:
        """Dies that passed."""
        return sum(1 for a in self.assignments if a.passed)

    @property
    def retest_needed(self) -> int:
        """Sites where contact failed (die left untested)."""
        return sum(1 for a in self.assignments if a.passed is None)


class MultiSiteScheduler:
    """Runs a wafer sort with an array of mini-testers.

    Parameters
    ----------
    card:
        The probe card (site count, contact yield, stepping time).
    test_time_s:
        Nominal per-die test time.
    dut_factory:
        Builds the DUT model for a die position (lets callers seed
        defects); default: all-good dice.
    """

    def __init__(self, card: ProbeCard, test_time_s: float = 2.0,
                 dut_factory: Optional[
                     Callable[[Tuple[int, int]], WLPDevice]] = None):
        if test_time_s <= 0.0:
            raise ConfigurationError("test time must be positive")
        self.card = card
        self.test_time_s = float(test_time_s)
        self.dut_factory = dut_factory or (lambda pos: WLPDevice())

    def _test_one(self, dut: WLPDevice,
                  rng: np.random.Generator) -> Tuple[bool, float]:
        """One die's test: BIST plus outcome; returns (pass, time)."""
        result = dut.run_bist(n_vectors=128)
        # Site-to-site time variation (settling, retries): +/-10%.
        t = self.test_time_s * float(rng.uniform(0.9, 1.1))
        return result.passed, t

    def sort_wafer(self, wafer: WaferMap, seed: int = 0) -> SortRun:
        """Probe the whole wafer; updates die states in place."""
        rng = np.random.default_rng(seed)
        plan = self.card.plan_touchdowns(wafer)
        assignments: List[SiteAssignment] = []
        total_time = 0.0
        for touchdown in plan:
            total_time += touchdown.index_time_s
            slowest = 0.0
            for site, pos in enumerate(touchdown.sites):
                if pos is None:
                    continue
                die = wafer.die_at(*pos)
                die.state = DieState.TESTING
                if not self.card.contact_ok(rng):
                    die.state = DieState.SKIPPED
                    assignments.append(SiteAssignment(
                        site, pos, None, 0.0
                    ))
                    continue
                dut = self.dut_factory(pos)
                passed, t = self._test_one(dut, rng)
                slowest = max(slowest, t)
                die.state = DieState.PASSED if passed else DieState.FAILED
                assignments.append(SiteAssignment(site, pos, passed, t))
            # Parallel sites: the touchdown takes the slowest site.
            total_time += slowest
        return SortRun(assignments=assignments, total_time_s=total_time,
                       touchdowns=len(plan))

    def retest_skipped(self, wafer: WaferMap, seed: int = 1,
                       max_passes: int = 3) -> SortRun:
        """Re-probe dies skipped for contact failure.

        Production flow: after the main pass, step back to each
        skipped die (single-site touchdowns) up to *max_passes*
        times. Returns the combined retest run.
        """
        if max_passes < 1:
            raise ConfigurationError("need >= 1 retest pass")
        rng = np.random.default_rng(seed)
        assignments: List[SiteAssignment] = []
        total_time = 0.0
        touchdowns = 0
        for _ in range(max_passes):
            skipped = wafer.dies_in_state(DieState.SKIPPED)
            if not skipped:
                break
            for die in skipped:
                touchdowns += 1
                total_time += self.card.index_time_s
                if not self.card.contact_ok(rng):
                    assignments.append(SiteAssignment(
                        0, die.position, None, 0.0
                    ))
                    continue
                dut = self.dut_factory(die.position)
                passed, t = self._test_one(dut, rng)
                total_time += t
                die.state = DieState.PASSED if passed \
                    else DieState.FAILED
                assignments.append(SiteAssignment(
                    0, die.position, passed, t
                ))
        return SortRun(assignments=assignments,
                       total_time_s=total_time,
                       touchdowns=touchdowns)
