"""Multi-site parallel test execution (Figure 13).

"The miniature tester may be replicated in array form ... Functional
testing can then be done in parallel, increasing production
throughput by an order of magnitude." The scheduler walks the
touchdown plan, runs every landed site's test concurrently (each
touchdown costs the *slowest* site's test time, not the sum), and
writes results into the wafer map.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError
from repro.parallel import Executor
from repro.wafer.dut import WLPDevice
from repro.wafer.map import DieState, WaferMap
from repro.wafer.probe import ProbeCard, Touchdown


def _default_dut_factory(pos: Tuple[int, int]) -> WLPDevice:
    """All-good dice (module-level so process workers can pickle it)."""
    return WLPDevice()


def _probe_site(dut_factory: Callable[[Tuple[int, int]], WLPDevice],
                test_time_s: float, n_vectors: int,
                pos: Tuple[int, int], seed) -> Tuple[bool, float]:
    """One site's test, runnable on any executor backend.

    Returns ``(passed, test_time_s)``; the time carries the same
    +/-10% site-to-site variation the serial model applies, drawn
    from the site's spawned seed so results are deterministic per
    (wafer seed, touchdown, site) regardless of worker scheduling.
    """
    rng = np.random.default_rng(seed)
    dut = dut_factory(pos)
    result = dut.run_bist(n_vectors=n_vectors)
    return bool(result.passed), test_time_s * float(rng.uniform(0.9, 1.1))


@dataclasses.dataclass(frozen=True)
class SiteAssignment:
    """One site's work during one touchdown.

    Attributes
    ----------
    site:
        Site index on the card.
    die_position:
        Which die it landed on.
    passed:
        Test outcome (None when contact failed).
    test_time_s:
        Time that site's test took.
    """

    site: int
    die_position: Tuple[int, int]
    passed: Optional[bool]
    test_time_s: float


@dataclasses.dataclass
class SortRun:
    """Results of probing one wafer.

    Attributes
    ----------
    assignments:
        Every (touchdown, site) outcome.
    total_time_s:
        Wall-clock test time including stepping.
    touchdowns:
        Touchdowns executed.
    """

    assignments: List[SiteAssignment]
    total_time_s: float
    touchdowns: int

    @property
    def dies_tested(self) -> int:
        """Dies with a definite pass/fail."""
        return sum(1 for a in self.assignments if a.passed is not None)

    @property
    def dies_passed(self) -> int:
        """Dies that passed."""
        return sum(1 for a in self.assignments if a.passed)

    @property
    def retest_needed(self) -> int:
        """Sites where contact failed (die left untested)."""
        return sum(1 for a in self.assignments if a.passed is None)


class MultiSiteScheduler:
    """Runs a wafer sort with an array of mini-testers.

    Parameters
    ----------
    card:
        The probe card (site count, contact yield, stepping time).
    test_time_s:
        Nominal per-die test time.
    dut_factory:
        Builds the DUT model for a die position (lets callers seed
        defects); default: all-good dice. Must be picklable for the
        process executor backend.
    executor:
        Optional :class:`repro.parallel.Executor`. When given, the
        sites of each touchdown are tested *concurrently* on its
        backend — the real Figure 13 array — instead of only
        modeling concurrency as the max of site times. Per-site
        randomness is spawned deterministically from the sort seed
        and touchdown index, so outcomes are reproducible (though
        the RNG stream differs from the serial model's single
        interleaved stream). The serial path stays the default and
        bit-exact.
    registry:
        Optional injected telemetry registry; defaults to the
        module-level active one.
    """

    def __init__(self, card: ProbeCard, test_time_s: float = 2.0,
                 dut_factory: Optional[
                     Callable[[Tuple[int, int]], WLPDevice]] = None,
                 executor: Optional[Executor] = None,
                 registry=None):
        if test_time_s <= 0.0:
            raise ConfigurationError("test time must be positive")
        self.card = card
        self.test_time_s = float(test_time_s)
        self.dut_factory = dut_factory or _default_dut_factory
        self.executor = executor
        self.telemetry = registry

    def _test_one(self, dut: WLPDevice,
                  rng: np.random.Generator) -> Tuple[bool, float]:
        """One die's test: BIST plus outcome; returns (pass, time)."""
        result = dut.run_bist(n_vectors=128)
        # Site-to-site time variation (settling, retries): +/-10%.
        t = self.test_time_s * float(rng.uniform(0.9, 1.1))
        return result.passed, t

    def sort_wafer(self, wafer: WaferMap, seed: int = 0) -> SortRun:
        """Probe the whole wafer; updates die states in place.

        With an executor configured, every touchdown's landed sites
        run concurrently on its backend; otherwise the serial model
        walks sites in order (bit-exact with earlier releases).
        """
        rng = np.random.default_rng(seed)
        plan = self.card.plan_touchdowns(wafer)
        assignments: List[SiteAssignment] = []
        total_time = 0.0
        tel = telemetry.resolve(self.telemetry)
        with tel.span("wafer.sort"):
            for td_index, touchdown in enumerate(plan):
                total_time += touchdown.index_time_s
                if self.executor is None:
                    slowest = self._touchdown_serial(
                        wafer, touchdown, rng, assignments)
                else:
                    slowest = self._touchdown_concurrent(
                        wafer, touchdown, rng, assignments,
                        seed, td_index)
                # Parallel sites: the touchdown costs its slowest site.
                total_time += slowest
        tel.counter("wafer.sorts").inc()
        tel.counter("wafer.touchdowns").inc(len(plan))
        tel.counter("wafer.dies_tested").inc(
            sum(1 for a in assignments if a.passed is not None))
        tel.counter("wafer.dies_passed").inc(
            sum(1 for a in assignments if a.passed))
        tel.counter("wafer.contact_failures").inc(
            sum(1 for a in assignments if a.passed is None))
        return SortRun(assignments=assignments, total_time_s=total_time,
                       touchdowns=len(plan))

    def _touchdown_serial(self, wafer, touchdown, rng,
                          assignments) -> float:
        """One touchdown, sites in order on one RNG stream."""
        slowest = 0.0
        for site, pos in enumerate(touchdown.sites):
            if pos is None:
                continue
            die = wafer.die_at(*pos)
            die.state = DieState.TESTING
            if not self.card.contact_ok(rng):
                die.state = DieState.SKIPPED
                assignments.append(SiteAssignment(site, pos, None, 0.0))
                continue
            dut = self.dut_factory(pos)
            passed, t = self._test_one(dut, rng)
            slowest = max(slowest, t)
            die.state = DieState.PASSED if passed else DieState.FAILED
            assignments.append(SiteAssignment(site, pos, passed, t))
        return slowest

    def _touchdown_concurrent(self, wafer, touchdown, rng,
                              assignments, seed, td_index) -> float:
        """One touchdown with landed sites run on the executor.

        Contact is still drawn in the parent (it is a prober
        property, not a site computation); the site tests fan out.
        """
        landed = []
        for site, pos in enumerate(touchdown.sites):
            if pos is None:
                continue
            die = wafer.die_at(*pos)
            die.state = DieState.TESTING
            if not self.card.contact_ok(rng):
                die.state = DieState.SKIPPED
                assignments.append(SiteAssignment(site, pos, None, 0.0))
                continue
            landed.append((site, pos))
        if not landed:
            return 0.0
        fn = functools.partial(_probe_site, self.dut_factory,
                               self.test_time_s, 128)
        outcome = self.executor.run(
            fn, [pos for _, pos in landed],
            seed_root=[int(seed), int(td_index)],
        )
        slowest = 0.0
        for (site, pos), (passed, t) in zip(landed, outcome.results):
            die = wafer.die_at(*pos)
            die.state = DieState.PASSED if passed else DieState.FAILED
            slowest = max(slowest, t)
            assignments.append(SiteAssignment(site, pos, passed, t))
        return slowest

    def retest_skipped(self, wafer: WaferMap, seed: int = 1,
                       max_passes: int = 3) -> SortRun:
        """Re-probe dies skipped for contact failure.

        Production flow: after the main pass, step back to each
        skipped die (single-site touchdowns) up to *max_passes*
        times. Returns the combined retest run.
        """
        if max_passes < 1:
            raise ConfigurationError("need >= 1 retest pass")
        rng = np.random.default_rng(seed)
        assignments: List[SiteAssignment] = []
        total_time = 0.0
        touchdowns = 0
        for _ in range(max_passes):
            skipped = wafer.dies_in_state(DieState.SKIPPED)
            if not skipped:
                break
            for die in skipped:
                touchdowns += 1
                total_time += self.card.index_time_s
                if not self.card.contact_ok(rng):
                    assignments.append(SiteAssignment(
                        0, die.position, None, 0.0
                    ))
                    continue
                dut = self.dut_factory(die.position)
                passed, t = self._test_one(dut, rng)
                total_time += t
                die.state = DieState.PASSED if passed \
                    else DieState.FAILED
                assignments.append(SiteAssignment(
                    0, die.position, passed, t
                ))
        return SortRun(assignments=assignments,
                       total_time_s=total_time,
                       touchdowns=touchdowns)
