"""Built-in self-test: LFSR stimulus + MISR signature.

"The complexity of the PCB is minimized by using only a small number
of signals for each mini-tester, taking advantage of BIST features
of the DUT." The classic BIST pair: an LFSR generates on-chip
stimulus, a multiple-input signature register compresses responses;
the tester only starts the engine and reads the signature.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.dlc.lfsr import LFSR


class MISR:
    """Multiple-input signature register.

    A standard LFSR compactor: each cycle the register shifts with
    its feedback polynomial and XORs the parallel response word in.

    Parameters
    ----------
    width:
        Register width (also the response word width).
    taps:
        Feedback taps as (width, m); defaults to a primitive pair
        when one is known.
    """

    def __init__(self, width: int = 16, taps=None):
        if width < 2:
            raise ConfigurationError(f"width must be >= 2, got {width}")
        self.width = int(width)
        self._mask = (1 << width) - 1
        if taps is None:
            standard = {8: (8, 6), 16: (16, 14), 32: (32, 28)}
            taps = standard.get(width, (width, width - 1))
        self.taps = taps
        self._state = 0

    @property
    def signature(self) -> int:
        """Current register contents."""
        return self._state

    def reset(self) -> None:
        """Clear to the all-zeros seed."""
        self._state = 0

    def compact(self, word: int) -> int:
        """Absorb one response word; returns the new signature."""
        if word & ~self._mask:
            raise ConfigurationError(
                f"response word 0x{word:x} wider than {self.width} bits"
            )
        fb = ((self._state >> (self.taps[0] - 1))
              ^ (self._state >> (self.taps[1] - 1))) & 1
        self._state = (((self._state << 1) | fb) & self._mask) ^ word
        return self._state

    def compact_stream(self, words) -> int:
        """Absorb a sequence of words; returns the final signature."""
        for w in words:
            self.compact(int(w))
        return self._state


@dataclasses.dataclass(frozen=True)
class BISTResult:
    """Outcome of one BIST run.

    Attributes
    ----------
    signature:
        Signature the MISR produced.
    golden:
        The expected (fault-free) signature.
    n_vectors:
        Patterns applied.
    """

    signature: int
    golden: int
    n_vectors: int

    @property
    def passed(self) -> bool:
        """True when the signature matches the golden value."""
        return self.signature == self.golden


class BISTEngine:
    """The DUT's on-chip self-test engine.

    Parameters
    ----------
    response_width:
        Width of the response bus into the MISR.
    lfsr_order:
        Stimulus generator order.
    fault_mask:
        Optional "manufacturing defect": an XOR corruption applied
        to one response word (vector index, bit mask). None = good
        die.
    """

    def __init__(self, response_width: int = 16, lfsr_order: int = 15,
                 fault_mask: Optional[tuple] = None):
        self.response_width = int(response_width)
        self.lfsr_order = int(lfsr_order)
        self.fault_mask = fault_mask

    def _responses(self, n_vectors: int) -> np.ndarray:
        """Fault-free responses: the DUT's logic is modeled as a
        deterministic mix of the stimulus words."""
        lfsr = LFSR(self.lfsr_order, seed=1)
        words = lfsr.words(n_vectors, self.response_width)
        mask = (1 << self.response_width) - 1
        # A simple invertible "combinational logic" stand-in.
        return np.array(
            [((w * 2654435761) ^ (w >> 3)) & mask for w in words],
            dtype=np.int64,
        )

    def golden_signature(self, n_vectors: int) -> int:
        """Signature of a fault-free die."""
        misr = MISR(self.response_width)
        return misr.compact_stream(self._responses(n_vectors))

    def run(self, n_vectors: int = 256) -> BISTResult:
        """Run BIST; a configured fault corrupts one response."""
        if n_vectors < 1:
            raise ConfigurationError("need >= 1 vector")
        responses = self._responses(n_vectors)
        if self.fault_mask is not None:
            index, bits = self.fault_mask
            if 0 <= index < n_vectors:
                responses = responses.copy()
                responses[index] ^= bits
        misr = MISR(self.response_width)
        signature = misr.compact_stream(responses)
        return BISTResult(
            signature=signature,
            golden=self.golden_signature(n_vectors),
            n_vectors=n_vectors,
        )
