"""Wafer bin-map export.

After sort, the wafer's results travel downstream as a bin map (the
descendant of physically inking bad dies). This module renders the
classic ASCII map and the bin-summary block production systems
exchange.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.wafer.map import DieState, WaferMap

#: Standard single-character codes per die state.
STATE_CODES: Dict[DieState, str] = {
    DieState.PASSED: "1",
    DieState.FAILED: "X",
    DieState.SKIPPED: "?",
    DieState.UNTESTED: ".",
    DieState.TESTING: "~",
}


@dataclasses.dataclass(frozen=True)
class BinSummary:
    """Counts extracted from one wafer map.

    Attributes
    ----------
    total:
        Dies on the wafer.
    passed, failed, skipped, untested:
        Per-state counts.
    """

    total: int
    passed: int
    failed: int
    skipped: int
    untested: int

    @property
    def yield_percent(self) -> float:
        """Pass yield over tested dies, percent."""
        tested = self.passed + self.failed
        if tested == 0:
            return 0.0
        return 100.0 * self.passed / tested


def summarize(wafer: WaferMap) -> BinSummary:
    """Count die states across the wafer."""
    counts = {state: 0 for state in DieState}
    for die in wafer:
        counts[die.state] += 1
    return BinSummary(
        total=len(wafer),
        passed=counts[DieState.PASSED],
        failed=counts[DieState.FAILED],
        skipped=counts[DieState.SKIPPED],
        untested=counts[DieState.UNTESTED] + counts[DieState.TESTING],
    )


def render_bin_map(wafer: WaferMap,
                   codes: Optional[Dict[DieState, str]] = None) -> str:
    """The ASCII bin map: one character per die, row per y."""
    codes = codes if codes is not None else STATE_CODES
    for state in DieState:
        if state not in codes:
            raise ConfigurationError(f"no code for state {state}")
    xs = sorted({d.x for d in wafer})
    ys = sorted({d.y for d in wafer})
    if not xs:
        raise ConfigurationError("wafer has no dies")
    rows = []
    for y in reversed(ys):
        row = "".join(
            codes[wafer.die_at(x, y).state] if wafer.has_die(x, y)
            else " "
            for x in xs
        )
        rows.append(row)
    return "\n".join(rows)


def export_map_file(wafer: WaferMap, lot_id: str = "LOT01",
                    wafer_id: str = "W01") -> str:
    """A complete map-file text block: header + map + summary.

    The layout follows the spirit of SEMI map formats: identifying
    header, the die grid, then bin totals.
    """
    if not lot_id or not wafer_id:
        raise ConfigurationError("lot and wafer ids are required")
    summary = summarize(wafer)
    header = [
        f"LOT: {lot_id}",
        f"WAFER: {wafer_id}",
        f"DIES: {summary.total}",
        f"MAP:",
    ]
    footer = [
        "SUMMARY:",
        f"  pass:     {summary.passed}",
        f"  fail:     {summary.failed}",
        f"  skipped:  {summary.skipped}",
        f"  untested: {summary.untested}",
        f"  yield:    {summary.yield_percent:.1f}%",
    ]
    return "\n".join(header + [render_bin_map(wafer)] + footer) + "\n"
