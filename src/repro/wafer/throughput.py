"""Production throughput model for parallel wafer probing.

Quantifies the paper's claim that array-form mini-testers increase
"production throughput by an order of magnitude": wafers per hour as
a function of site count, test time, stepping time and die count.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class ThroughputReport:
    """Throughput of one configuration.

    Attributes
    ----------
    n_sites:
        Parallel mini-tester sites.
    touchdowns:
        Touchdowns per wafer.
    wafer_time_s:
        Time to sort one wafer.
    wafers_per_hour:
        The headline number.
    speedup_vs_single:
        Ratio against the same parameters at one site.
    """

    n_sites: int
    touchdowns: int
    wafer_time_s: float
    wafers_per_hour: float
    speedup_vs_single: float


class ThroughputModel:
    """Analytic wafer-sort throughput.

    Parameters
    ----------
    n_dies:
        Dies per wafer.
    test_time_s:
        Per-die test time (dominated by the 5 Gbps functional test
        plus BIST).
    index_time_s:
        Prober stepping time per touchdown.
    load_time_s:
        Wafer load/unload overhead.
    """

    def __init__(self, n_dies: int = 1000, test_time_s: float = 2.0,
                 index_time_s: float = 0.8, load_time_s: float = 60.0):
        if n_dies < 1:
            raise ConfigurationError("need >= 1 die")
        if test_time_s <= 0.0 or index_time_s <= 0.0 or load_time_s < 0.0:
            raise ConfigurationError("times must be positive")
        self.n_dies = int(n_dies)
        self.test_time_s = float(test_time_s)
        self.index_time_s = float(index_time_s)
        self.load_time_s = float(load_time_s)

    def wafer_time(self, n_sites: int) -> float:
        """Seconds to sort one wafer with *n_sites* parallel sites."""
        if n_sites < 1:
            raise ConfigurationError("need >= 1 site")
        touchdowns = math.ceil(self.n_dies / n_sites)
        return (self.load_time_s
                + touchdowns * (self.index_time_s + self.test_time_s))

    def report(self, n_sites: int) -> ThroughputReport:
        """Full throughput report for *n_sites*."""
        t = self.wafer_time(n_sites)
        t1 = self.wafer_time(1)
        return ThroughputReport(
            n_sites=n_sites,
            touchdowns=math.ceil(self.n_dies / n_sites),
            wafer_time_s=t,
            wafers_per_hour=3600.0 / t,
            speedup_vs_single=t1 / t,
        )

    def sites_for_speedup(self, target: float = 10.0,
                          max_sites: int = 1024) -> int:
        """Smallest site count achieving *target* speedup.

        The paper's "order of magnitude" needs roughly 10-16 sites
        (overheads keep the scaling sublinear).
        """
        if target < 1.0:
            raise ConfigurationError("target speedup must be >= 1")
        for n in range(1, max_sites + 1):
            if self.report(n).speedup_vs_single >= target:
                return n
        raise ConfigurationError(
            f"speedup {target}x unreachable within {max_sites} sites "
            "(fixed overheads dominate)"
        )
