"""Channel deskew calibration.

Multi-channel stimulus (Figure 4's "precisely aligned in time"
requirement) demands that every channel's edges land together. The
procedure here mirrors the lab flow: measure each channel's edge
position against the reference clock (with the sampler or scope),
then program each channel's delay line to cancel the measured skew.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import CalibrationError, ConfigurationError
from repro.pecl.transmitter import PECLTransmitter
from repro.pecl.vernier import TimingVernier


class DeskewCalibration:
    """Aligns a set of transmit channels to a common reference.

    Parameters
    ----------
    channels:
        Named transmitters to align.
    measurement_noise_rms:
        Noise of each skew measurement, ps rms.
    """

    def __init__(self, channels: Dict[str, PECLTransmitter],
                 measurement_noise_rms: float = 1.0):
        if not channels:
            raise ConfigurationError("need at least one channel")
        if measurement_noise_rms < 0.0:
            raise ConfigurationError("measurement noise must be >= 0")
        self.channels = dict(channels)
        self.measurement_noise_rms = float(measurement_noise_rms)
        self._verniers: Dict[str, TimingVernier] = {}
        self._raw_skews: Optional[Dict[str, float]] = None

    def measure_skews(self, rng: Optional[np.random.Generator] = None
                      ) -> Dict[str, float]:
        """Measure each channel's static skew, ps.

        The physical skew of a channel is its delay line's actual
        insertion delay at the current code (plus fixture paths the
        model folds into it); the measurement adds noise.
        """
        if rng is None:
            rng = np.random.default_rng(11)
        skews = {}
        for name, tx in self.channels.items():
            true_skew = tx.delay_line.actual_delay(tx.delay_line.code)
            skews[name] = true_skew + rng.normal(
                0.0, self.measurement_noise_rms
            )
        self._raw_skews = skews
        return dict(skews)

    def deskew(self, rng: Optional[np.random.Generator] = None
               ) -> Dict[str, float]:
        """Align all channels to the slowest one.

        Each channel's vernier is calibrated, then programmed so its
        total delay matches the maximum measured skew (you can only
        add delay, so everyone meets the latest channel). Returns
        the residual error per channel, ps.
        """
        if rng is None:
            rng = np.random.default_rng(13)
        skews = self.measure_skews(rng)
        target = max(skews.values())
        residuals = {}
        for name, tx in self.channels.items():
            vernier = TimingVernier(
                tx.delay_line,
                measurement_noise_rms=self.measurement_noise_rms,
            )
            vernier.calibrate(rng=rng)
            self._verniers[name] = vernier
            # Needed additional delay on this channel.
            actual = vernier.place_edge(target)
            residuals[name] = actual - target
        return residuals

    def max_residual(self, rng: Optional[np.random.Generator] = None
                     ) -> float:
        """Largest |residual| after deskew, ps."""
        residuals = self.deskew(rng)
        return max(abs(r) for r in residuals.values())

    def verify_alignment(self, tolerance_ps: float = 25.0,
                         rng: Optional[np.random.Generator] = None
                         ) -> bool:
        """True if every channel lands within ±tolerance of target."""
        return self.max_residual(rng) <= tolerance_ps
