"""System compositions: the paper's two test systems.

* :class:`~repro.core.testbed.OpticalTestBed` — project 1: the
  transmitter/receiver set that emulates a processor-memory slice
  and exercises the Data Vortex (Section 3).
* :class:`~repro.core.minitester.MiniTester` — project 2: the
  self-contained wafer-probe tester (Section 4).

Shared pieces: the Figure 4 packet slot format, the system timing-
accuracy budget behind the ±25 ps claim, and deskew calibration.
"""

from repro.core.packetformat import PacketSlotFormat, PacketSlot
from repro.core.system import TestSystem
from repro.core.testbed import OpticalTestBed
from repro.core.minitester import MiniTester
from repro.core.budget import TimingBudget, system_timing_budget
from repro.core.calibration import DeskewCalibration
from repro.core.scaling import ScalingReport, size_configuration, scaling_path
from repro.core.tsp import HostATE, TestSupportProcessor
from repro.core.multiboard import ArrayReport, BoardArray, array_for_scaling

__all__ = [
    "PacketSlotFormat",
    "PacketSlot",
    "TestSystem",
    "OpticalTestBed",
    "MiniTester",
    "TimingBudget",
    "system_timing_budget",
    "DeskewCalibration",
    "ScalingReport",
    "size_configuration",
    "scaling_path",
    "HostATE",
    "TestSupportProcessor",
    "BoardArray",
    "ArrayReport",
    "array_for_scaling",
]
