"""The Figure 4 packet slot format of the Optical Test Bed.

The stimulus emulates a parallel processor-to-memory slice sending
packets into the Data Vortex. At the nominal 2.5 Gbps (400 ps bit
periods) one packet slot is 64 bit periods = 25.6 ns:

* dead time: 8 periods (3.2 ns)
* guard time: 5 periods (2.0 ns) on each side
* maximum window for valid clock/data: 46 periods (18.4 ns), holding
  pre-clocks (receiver start-up), 32 periods (12.8 ns) of valid
  payload aligned with the source-synchronous clock, and post-clocks
  (receiver pipeline flush)
* a slower Frame bit marking data-valid, plus four Header bits
  carrying the Data Vortex routing address
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro._units import unit_interval_ps


@dataclasses.dataclass(frozen=True)
class PacketSlotFormat:
    """Timing definition of one packet slot.

    All counts are in bit periods of the high-speed channels.

    Attributes
    ----------
    rate_gbps:
        Channel data rate (2.5 Gbps nominal; 400 ps bit periods).
    payload_bits:
        Valid data periods per slot (32).
    guard_bits:
        Guard periods on *each* side of the clock/data window (5).
    dead_bits:
        Dead periods at the start of the slot (8).
    pre_clock_bits:
        Clock-only periods before valid data (receiver start-up).
    post_clock_bits:
        Clock-only periods after valid data (pipeline flush).
    n_data_channels:
        Parallel payload width (4 in the test bed).
    n_header_bits:
        Routing-address bits (4).
    """

    rate_gbps: float = 2.5
    payload_bits: int = 32
    guard_bits: int = 5
    dead_bits: int = 8
    pre_clock_bits: int = 7
    post_clock_bits: int = 7
    n_data_channels: int = 4
    n_header_bits: int = 4

    def __post_init__(self):
        if self.rate_gbps <= 0.0:
            raise ConfigurationError("rate must be positive")
        for name in ("payload_bits", "guard_bits", "dead_bits",
                     "pre_clock_bits", "post_clock_bits"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        if self.payload_bits < 1:
            raise ConfigurationError("payload must be >= 1 bit")
        if self.n_data_channels < 1 or self.n_header_bits < 0:
            raise ConfigurationError("bad channel counts")

    # -- derived counts ------------------------------------------------

    @property
    def bit_period(self) -> float:
        """One bit period, ps (400 ps at 2.5 Gbps)."""
        return unit_interval_ps(self.rate_gbps)

    @property
    def window_bits(self) -> int:
        """Maximum allowed window for valid clock/data (46 nominal)."""
        return (self.pre_clock_bits + self.payload_bits
                + self.post_clock_bits)

    @property
    def slot_bits(self) -> int:
        """Total slot length in bit periods (64 nominal)."""
        return self.dead_bits + 2 * self.guard_bits + self.window_bits

    # -- derived times ---------------------------------------------------

    @property
    def slot_time(self) -> float:
        """Packet slot time, ps (25.6 ns nominal)."""
        return self.slot_bits * self.bit_period

    @property
    def valid_data_time(self) -> float:
        """Valid payload duration, ps (12.8 ns nominal)."""
        return self.payload_bits * self.bit_period

    @property
    def guard_time(self) -> float:
        """One guard interval, ps (2.0 ns nominal)."""
        return self.guard_bits * self.bit_period

    @property
    def dead_time(self) -> float:
        """Dead time, ps (3.2 ns nominal)."""
        return self.dead_bits * self.bit_period

    @property
    def window_time(self) -> float:
        """Maximum clock/data window, ps (18.4 ns nominal)."""
        return self.window_bits * self.bit_period

    @property
    def window_start_bit(self) -> int:
        """Slot bit index where the clock/data window opens."""
        return self.dead_bits + self.guard_bits

    @property
    def data_start_bit(self) -> int:
        """Slot bit index of the first valid payload period."""
        return self.window_start_bit + self.pre_clock_bits

    @property
    def data_end_bit(self) -> int:
        """Slot bit index one past the last valid payload period."""
        return self.data_start_bit + self.payload_bits

    def slots_per_second(self) -> float:
        """Packet slot rate (1/slot_time)."""
        return 1e12 / self.slot_time

    def payload_bandwidth_gbps(self) -> float:
        """Effective per-channel payload throughput, Gbps."""
        return (self.payload_bits / self.slot_bits) * self.rate_gbps


class PacketSlot:
    """One concrete packet: payload words + routing header.

    Parameters
    ----------
    fmt:
        The slot format.
    payload:
        One bit sequence per data channel, each ``payload_bits``
        long.
    header:
        Routing-address bits (``n_header_bits`` values).
    frame:
        Whether the frame bit asserts for this slot (a populated
        slot; empty slots carry frame=0).
    """

    def __init__(self, fmt: PacketSlotFormat,
                 payload: Sequence[Sequence[int]],
                 header: Sequence[int], frame: bool = True):
        payload = [np.asarray(ch).astype(np.uint8) for ch in payload]
        if len(payload) != fmt.n_data_channels:
            raise ConfigurationError(
                f"need {fmt.n_data_channels} payload channels, got "
                f"{len(payload)}"
            )
        for i, ch in enumerate(payload):
            if len(ch) != fmt.payload_bits:
                raise ConfigurationError(
                    f"payload channel {i} has {len(ch)} bits; format "
                    f"needs {fmt.payload_bits}"
                )
            if np.any(ch > 1):
                raise ConfigurationError("payload bits must be 0 or 1")
        header = np.asarray(header).astype(np.uint8)
        if len(header) != fmt.n_header_bits:
            raise ConfigurationError(
                f"need {fmt.n_header_bits} header bits, got {len(header)}"
            )
        if np.any(header > 1):
            raise ConfigurationError("header bits must be 0 or 1")
        self.fmt = fmt
        self.payload = payload
        self.header = header
        self.frame = bool(frame)

    # -- channel bit streams at the high-speed rate -----------------------

    def clock_bits(self) -> np.ndarray:
        """The source-synchronous clock channel for one slot.

        Toggles through the whole clock/data window (pre-clocks,
        data, post-clocks); idle elsewhere.
        """
        fmt = self.fmt
        bits = np.zeros(fmt.slot_bits, dtype=np.uint8)
        start = fmt.window_start_bit
        # A 1.25 GHz clock at 2.5 Gbps bit periods: alternate 1/0.
        for k in range(fmt.window_bits):
            bits[start + k] = (k + 1) % 2
        return bits

    def data_bits(self, channel: int) -> np.ndarray:
        """One data channel's slot stream (payload in its window)."""
        fmt = self.fmt
        if not 0 <= channel < fmt.n_data_channels:
            raise ConfigurationError(
                f"channel {channel} out of range "
                f"[0, {fmt.n_data_channels})"
            )
        bits = np.zeros(fmt.slot_bits, dtype=np.uint8)
        bits[fmt.data_start_bit:fmt.data_end_bit] = self.payload[channel]
        return bits

    def frame_bits(self) -> np.ndarray:
        """Frame channel: asserted across the valid-data window."""
        fmt = self.fmt
        bits = np.zeros(fmt.slot_bits, dtype=np.uint8)
        if self.frame:
            bits[fmt.data_start_bit:fmt.data_end_bit] = 1
        return bits

    def header_bits(self, index: int) -> np.ndarray:
        """One header channel: its address bit held for the window.

        Header channels are lower-speed: the routing bit is static
        for the whole clock/data window.
        """
        fmt = self.fmt
        if not 0 <= index < fmt.n_header_bits:
            raise ConfigurationError(
                f"header index {index} out of range "
                f"[0, {fmt.n_header_bits})"
            )
        bits = np.zeros(fmt.slot_bits, dtype=np.uint8)
        if self.header[index]:
            bits[fmt.window_start_bit:
                 fmt.window_start_bit + fmt.window_bits] = 1
        return bits

    def all_channels(self) -> Dict[str, np.ndarray]:
        """Every channel's slot stream, keyed by name."""
        out: Dict[str, np.ndarray] = {"clock": self.clock_bits(),
                                      "frame": self.frame_bits()}
        for i in range(self.fmt.n_data_channels):
            out[f"data{i}"] = self.data_bits(i)
        for i in range(self.fmt.n_header_bits):
            out[f"header{i}"] = self.header_bits(i)
        return out

    def address(self) -> int:
        """Routing address encoded by the header bits (MSB first)."""
        value = 0
        for bit in self.header:
            value = (value << 1) | int(bit)
        return value

    @classmethod
    def random(cls, fmt: PacketSlotFormat, address: int,
               rng: np.random.Generator = None) -> "PacketSlot":
        """A slot with random payload and the given routing address."""
        if rng is None:
            rng = np.random.default_rng(0)
        if not 0 <= address < (1 << fmt.n_header_bits):
            raise ConfigurationError(
                f"address {address} needs more than {fmt.n_header_bits} "
                "header bits"
            )
        payload = rng.integers(0, 2, size=(fmt.n_data_channels,
                                           fmt.payload_bits))
        header = [(address >> (fmt.n_header_bits - 1 - k)) & 1
                  for k in range(fmt.n_header_bits)]
        return cls(fmt, payload, header)
