"""TestSystem base: the wiring common to both projects.

Figure 1's block diagram: a PC controls the DLC over USB, an RF
source provides the timing reference, PECL takes the DLC's wide
moderate-speed data to multi-gigabit rates, and a sampling scope (in
the lab) grades the outputs. Both concrete systems share this
skeleton and differ in the PECL arrangement.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError
from repro.dlc.core import DigitalLogicCore
from repro.dlc.clocking import ClockSignal
from repro.eye.diagram import EyeDiagram
from repro.eye.metrics import EyeMetrics
from repro.instruments.rfclock import RFClockSource
from repro.instruments.scope import SamplingScope, EdgeJitterResult
from repro.pecl.transmitter import PECLTransmitter
from repro.signal.waveform import Waveform


class TestSystem:
    """Common skeleton: DLC + RF reference + scope + one TX channel.

    (Not a pytest class, despite the name.)

    Parameters
    ----------
    rate_gbps:
        Target serial data rate.
    rf_frequency_ghz:
        RF reference frequency; defaults to the bit rate (the
        reference clocks the final serializer stage).
    io_rate_mbps:
        DLC I/O derating.
    registry:
        Optional injected telemetry registry, shared with the DLC;
        defaults to the module-level active one.
    """

    __test__ = False  # not a pytest collection target

    def __init__(self, rate_gbps: float,
                 rf_frequency_ghz: Optional[float] = None,
                 io_rate_mbps: float = 400.0,
                 registry=None):
        if rate_gbps <= 0.0:
            raise ConfigurationError("rate must be positive")
        self.rate_gbps = float(rate_gbps)
        self.telemetry = registry
        self.rf_source = RFClockSource(
            rf_frequency_ghz if rf_frequency_ghz is not None else rate_gbps
        )
        self.rf_source.enable()
        self.dlc = DigitalLogicCore(io_rate_mbps=io_rate_mbps,
                                    rf_clock=self.rf_clock,
                                    registry=registry)
        self.dlc.configure_direct()
        self.scope = SamplingScope()
        self._tx: Optional[PECLTransmitter] = None

    @property
    def rf_clock(self) -> ClockSignal:
        """The RF reference as a clock signal."""
        return self.rf_source.output()

    # -- worker-side replication ------------------------------------------

    def clone_spec(self) -> dict:
        """A picklable recipe for rebuilding an equivalent system.

        Parallel BER characterization ships this dict (class path
        plus constructor kwargs) to executor workers, which rebuild
        and cache their own tester — the software form of Figure
        13's "replicated in array form". Captures the configuration
        the base constructor owns; systems customized beyond that
        (a swapped channel model, say) should override this.
        """
        return {
            "class": f"{type(self).__module__}:{type(self).__qualname__}",
            "kwargs": {
                "rate_gbps": self.rate_gbps,
                "io_rate_mbps": self.dlc.io_rate_mbps,
            },
        }

    @staticmethod
    def from_clone_spec(spec: dict) -> "TestSystem":
        """Rebuild a system from a :meth:`clone_spec` recipe."""
        import importlib

        module_name, _, qualname = spec["class"].partition(":")
        obj = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        return obj(**spec["kwargs"])

    @property
    def transmitter(self) -> PECLTransmitter:
        """The system's transmit channel (built by the subclass)."""
        if self._tx is None:
            raise ConfigurationError(
                "no transmitter configured on this system"
            )
        return self._tx

    # -- stimulus ----------------------------------------------------------

    def serialization_factor(self) -> int:
        """Lanes consumed per serial bit stream (subclass knows)."""
        raise NotImplementedError

    def prbs_waveform(self, n_bits: int, seed: int = 1,
                      rate_gbps: Optional[float] = None,
                      dt: float = 1.0) -> Waveform:
        """A PRBS stimulus waveform out of the full TX path.

        The fabric LFSR's serial stream is struck across the DLC
        lanes in the layout the serializer topology needs, so the
        analog output carries the *true* PRBS bit order (a
        self-synchronizing checker locks onto it directly).
        """
        rate = self.rate_gbps if rate_gbps is None else rate_gbps
        tel = telemetry.resolve(self.telemetry)
        with tel.span("system.prbs_waveform"):
            factor = self.serialization_factor()
            self.dlc.host_write(0x0C, seed)  # LFSR_SEED
            self.dlc.reset_lfsrs()
            n_words = int(np.ceil(n_bits / factor))
            serial = self.dlc.lfsr().bits(n_words * factor)
            lanes = self.transmitter.serializer.lanes_for_stream(serial)
            lane_rate = \
                self.transmitter.serializer.required_lane_rate_mbps(rate)
            lanes = self.dlc.drive_lanes(lanes, lane_rate_mbps=lane_rate)
            rng = np.random.default_rng(seed)
            tel.counter("system.prbs_waveforms").inc()
            tel.counter("system.serializer_words").inc(n_words)
            tel.counter("system.serial_bits").inc(n_words * factor)
            return self.transmitter.transmit(lanes, rate, rng=rng, dt=dt)

    # -- measurements ----------------------------------------------------

    def measure_eye(self, n_bits: int = 4000, seed: int = 1,
                    rate_gbps: Optional[float] = None) -> EyeMetrics:
        """PRBS eye measurement at the output connector."""
        rate = self.rate_gbps if rate_gbps is None else rate_gbps
        tel = telemetry.resolve(self.telemetry)
        with tel.span("system.measure_eye"):
            wf = self.prbs_waveform(n_bits, seed=seed, rate_gbps=rate)
            tel.counter("system.eye_measurements").inc()
            return self.scope.measure_eye(
                wf, rate, rng=np.random.default_rng(seed + 1)
            )

    def eye_diagram(self, n_bits: int = 4000, seed: int = 1,
                    rate_gbps: Optional[float] = None) -> EyeDiagram:
        """The folded eye itself (for rendering)."""
        rate = self.rate_gbps if rate_gbps is None else rate_gbps
        wf = self.prbs_waveform(n_bits, seed=seed, rate_gbps=rate)
        return self.scope.eye_diagram(wf, rate,
                                      rng=np.random.default_rng(seed + 1))

    def measure_edge_jitter(self, n_acquisitions: int = 500,
                            seed: int = 0) -> EdgeJitterResult:
        """Figure 9's measurement: one repeated transition.

        A fixed 0->1 pattern is re-armed per acquisition so only
        random (not data-dependent) jitter is visible.
        """
        tx = self.transmitter
        rate = self.rate_gbps
        pattern = np.array([0, 0, 0, 0, 1, 1, 1, 1], dtype=np.uint8)

        def edge_source(rng: np.random.Generator) -> Waveform:
            return tx.output_buffer.drive(
                pattern, rate,
                extra_jitter=tx.path_jitter_budget(), rng=rng,
            )

        return self.scope.edge_jitter(edge_source,
                                      n_acquisitions=n_acquisitions,
                                      seed=seed)

    def measure_rise_fall(self, seed: int = 0):
        """(rise, fall) 20-80% times of the output, ps."""
        tx = self.transmitter
        pattern = np.array([0, 1, 1, 1, 1, 0, 0, 0], dtype=np.uint8)
        wf = tx.output_buffer.drive(pattern, self.rate_gbps,
                                    rng=np.random.default_rng(seed))
        rng = np.random.default_rng(seed + 1)
        return (self.scope.rise_time(wf, rng), self.scope.fall_time(wf, rng))
