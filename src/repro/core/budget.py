"""System timing-accuracy budget (the ±25 ps claim).

"We have demonstrated timing accuracy control to about +25 ps."
That figure is the sum of the bounded edge-placement terms: delay-
line quantization (half a 10 ps step after calibration), residual
calibration error, clock-fanout skew, and thermal drift allowance.
This module makes the budget explicit and checkable.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict


from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class TimingBudget:
    """Edge-placement error budget, all terms in ps.

    Bounded (deterministic) terms add linearly for a worst-case
    bound; the random term is quoted at ±3 sigma.

    Attributes
    ----------
    quantization:
        Delay-line step / 2 after calibration.
    calibration_residual:
        Leftover error of the calibration fit.
    fanout_skew:
        Clock-distribution skew between channels (half p-p,
        as a ± term).
    drift:
        Thermal/supply drift allowance between calibrations.
    random_rms:
        Random jitter sigma (enters at 3 sigma).
    """

    quantization: float = 5.0
    calibration_residual: float = 3.0
    fanout_skew: float = 5.0
    drift: float = 2.0
    random_rms: float = 3.2

    def __post_init__(self):
        for f in dataclasses.fields(self):
            if getattr(self, f.name) < 0.0:
                raise ConfigurationError(f"{f.name} must be >= 0")

    def worst_case(self) -> float:
        """Worst-case ± accuracy: linear sum + 3 sigma random."""
        return (self.quantization + self.calibration_residual
                + self.fanout_skew + self.drift + 3.0 * self.random_rms)

    def rss(self) -> float:
        """RSS combination (typical rather than worst case)."""
        return math.sqrt(
            self.quantization ** 2 + self.calibration_residual ** 2
            + self.fanout_skew ** 2 + self.drift ** 2
            + (3.0 * self.random_rms) ** 2
        )

    def terms(self) -> Dict[str, float]:
        """The individual ± terms (random quoted at 3 sigma)."""
        return {
            "quantization": self.quantization,
            "calibration_residual": self.calibration_residual,
            "fanout_skew": self.fanout_skew,
            "drift": self.drift,
            "random_3sigma": 3.0 * self.random_rms,
        }

    def meets(self, accuracy_ps: float = 25.0) -> bool:
        """True if the worst case is within ±accuracy_ps."""
        return self.worst_case() <= accuracy_ps


def system_timing_budget(delay_step: float = 10.0,
                         calibration_residual: float = 3.0,
                         fanout_skew_pp: float = 10.0,
                         drift: float = 2.0,
                         random_rms: float = 3.2) -> TimingBudget:
    """Build the budget from hardware parameters.

    >>> system_timing_budget().meets(25.0)
    True
    """
    return TimingBudget(
        quantization=delay_step / 2.0,
        calibration_residual=calibration_residual,
        fanout_skew=fanout_skew_pp / 2.0,
        drift=drift,
        random_rms=random_rms,
    )
