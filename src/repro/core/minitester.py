"""The wafer-probe Mini-Tester (Section 4).

A self-contained tester on the probe card: the DLC plus a two-stage
PECL serializer (two 8:1 groups to 2.5 Gbps, interleaved 2:1 to
5.0 Gbps), differential I/O buffers (120 ps edges), and a PECL
sampling circuit with 10 ps strobe resolution to capture the signal
returned through the interposer and the DUT's compliant leads.
Connections are only DC power, USB, and the RF clock.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError
from repro.channel.interposer import InterposerChannel
from repro.dlc.io import SILICON_MAX_MBPS
from repro.channel.lti import LTIChannel
from repro.core.system import TestSystem
from repro.instruments.bert import BitErrorRateTester
from repro.pecl.buffer import MINI_IO_BUFFER, BufferSpec
from repro.pecl.receiver import PECLReceiver, BERResult
from repro.pecl.serializer import TwoStageSerializer
from repro.pecl.transmitter import PECLTransmitter
from repro.signal.waveform import Waveform


@dataclasses.dataclass(frozen=True)
class LoopbackResult:
    """Outcome of one loopback test through the probe path.

    Attributes
    ----------
    ber:
        The bit-error comparison.
    rate_gbps:
        Data rate used.
    strobe_code:
        Sampler strobe position (delay-line code).
    """

    ber: BERResult
    rate_gbps: float
    strobe_code: int

    @property
    def passed(self) -> bool:
        """True for an error-free run."""
        return self.ber.n_errors == 0


@dataclasses.dataclass(frozen=True)
class CodedLoopbackResult:
    """Outcome of one *coded* loopback through the probe path.

    Attributes
    ----------
    ber:
        Payload-bit comparison (after decode + descramble).
    stats:
        Link-layer health: code violations, disparity errors, lock
        acquisition/loss accounting (a
        :class:`repro.coding.LinkStats`).
    rate_gbps:
        Line rate used (payload rate is 8/10 of it).
    strobe_code:
        Sampler strobe position.
    """

    ber: BERResult
    stats: object
    rate_gbps: float
    strobe_code: int

    @property
    def passed(self) -> bool:
        """Error-free payload with lock held and a clean line."""
        return (self.ber.n_errors == 0 and self.stats.locked
                and self.stats.total_errors == 0)


class MiniTester(TestSystem):
    """Project 2: the self-contained wafer-probe tester.

    Parameters
    ----------
    rate_gbps:
        Target serial rate (5.0 Gbps design target).
    buffer_spec:
        Output/input buffer grade (the 120 ps differential part).
    channel:
        The probe path (interposer + compliant leads) for loopback
        tests; defaults to the standard interposer model.
    """

    def __init__(self, rate_gbps: float = 5.0,
                 buffer_spec: BufferSpec = MINI_IO_BUFFER,
                 channel: Optional[LTIChannel] = None,
                 io_rate_mbps: float = 400.0,
                 encoding=None,
                 registry=None):
        from repro.coding.link import LinkCodec

        # The RF reference runs at half the bit rate: the 2:1 output
        # mux toggles on both clock edges (1.25 GHz input in Fig. 15
        # for 2.5 G halves / 5 G output).
        super().__init__(rate_gbps, rf_frequency_ghz=rate_gbps / 2.0,
                         io_rate_mbps=io_rate_mbps, registry=registry)
        codec = LinkCodec.from_spec(encoding, registry=registry)
        self._tx = PECLTransmitter(
            TwoStageSerializer(),
            buffer_spec=buffer_spec,
            clock=self.rf_clock,
            lane_limit_mbps=SILICON_MAX_MBPS,
            encoding=codec,
        )
        self.receiver = PECLReceiver(buffer_spec=buffer_spec,
                                     encoding=codec)
        self.channel = channel if channel is not None else \
            InterposerChannel()
        self.bert = BitErrorRateTester()

    def serialization_factor(self) -> int:
        return self.transmitter.serializer.total_lanes

    # -- stimulus/capture loop ---------------------------------------------

    def loopback_waveform(self, n_bits: int, seed: int = 1,
                          rate_gbps: Optional[float] = None,
                          through_dut: bool = True) -> Waveform:
        """The waveform arriving back at the sampler.

        With *through_dut* the signal traverses the probe channel
        twice (out through the interposer and leads, back again).
        """
        rate = self.rate_gbps if rate_gbps is None else rate_gbps
        wf = self.prbs_waveform(n_bits, seed=seed, rate_gbps=rate)
        if through_dut:
            wf = self.channel.round_trip().apply(wf) \
                if isinstance(self.channel, InterposerChannel) \
                else self.channel.apply(wf)
        return wf

    def run_loopback(self, n_bits: int = 2000, seed: int = 1,
                     rate_gbps: Optional[float] = None,
                     strobe_code: Optional[int] = None) -> LoopbackResult:
        """Full self-test: transmit PRBS, capture, count errors."""
        rate = self.rate_gbps if rate_gbps is None else rate_gbps
        tel = telemetry.resolve(self.telemetry)
        with tel.span("minitester.run_loopback"):
            wf = self.loopback_waveform(n_bits, seed=seed,
                                        rate_gbps=rate)
            # Strobe at cell center unless told otherwise.
            if strobe_code is None:
                ui = 1_000.0 / rate
                step = self.receiver.sampler.resolution
                strobe_code = int(round((ui / 2.0) / step))
            # Account for the channel's bulk delay when strobing.
            t_first = self._channel_delay()
            bits = self.receiver.receive_bits(
                wf, rate, n_bits, strobe_code=strobe_code,
                t_first_bit=t_first, rng=np.random.default_rng(seed + 7),
            )
            expected = self._expected_serial(n_bits, seed=seed,
                                             rate_gbps=rate)
            ber = self.receiver.compare(bits, expected[:len(bits)])
            tel.counter("minitester.loopbacks").inc()
            tel.counter("minitester.sampler_strobes").inc(len(bits))
            tel.counter("minitester.bit_errors").inc(ber.n_errors)
            if ber.n_errors:
                tel.counter("minitester.loopback_failures").inc()
            return LoopbackResult(ber=ber, rate_gbps=rate,
                                  strobe_code=strobe_code)

    def run_coded_loopback(self, n_bytes: int = 256, seed: int = 1,
                           rate_gbps: Optional[float] = None,
                           strobe_code: Optional[int] = None,
                           order: int = 7) -> CodedLoopbackResult:
        """Coded self-test: PRBS payload through the 8b10b link.

        The 16:1 serializer drives the framed, encoded payload at
        the line rate; the receiver strobes the raw line bits and
        runs the full coded receive stack (comma alignment, decode,
        lock tracking, descrambling). Requires ``encoding=`` at
        construction.
        """
        from repro.coding.checker import prbs_payload_bytes

        self.transmitter._require_codec()
        rate = self.rate_gbps if rate_gbps is None else rate_gbps
        tel = telemetry.resolve(self.telemetry)
        with tel.span("minitester.run_coded_loopback"):
            payload = prbs_payload_bytes(order, n_bytes, seed=seed)
            wf = self.transmitter.transmit_coded(
                payload, rate, rng=np.random.default_rng(seed))
            wf = self.channel.round_trip().apply(wf) \
                if isinstance(self.channel, InterposerChannel) \
                else self.channel.apply(wf)
            if strobe_code is None:
                ui = 1_000.0 / rate
                step = self.receiver.sampler.resolution
                strobe_code = int(round((ui / 2.0) / step))
            frame = self.receiver.receive_payload(
                wf, rate, n_bytes, strobe_code=strobe_code,
                t_first_bit=self._channel_delay(),
                rng=np.random.default_rng(seed + 7),
            )
            received = np.unpackbits(frame.payload)
            expected = np.unpackbits(payload)[:len(received)]
            ber = self.receiver.compare(received, expected)
            tel.counter("minitester.coded_loopbacks").inc()
            tel.counter("minitester.bit_errors").inc(ber.n_errors)
            if ber.n_errors or not frame.stats.locked:
                tel.counter("minitester.loopback_failures").inc()
            return CodedLoopbackResult(ber=ber, stats=frame.stats,
                                       rate_gbps=rate,
                                       strobe_code=strobe_code)

    def _channel_delay(self) -> float:
        if isinstance(self.channel, InterposerChannel):
            return self.channel.round_trip().delay_ps
        return self.channel.delay_ps

    def _expected_serial(self, n_bits: int, seed: int,
                         rate_gbps: float) -> np.ndarray:
        """Regenerate the serial stream the TX path produced.

        The stimulus carries the fabric LFSR's stream in true serial
        order (see :meth:`TestSystem.prbs_waveform`), so the expected
        data is simply the LFSR output.
        """
        factor = self.serialization_factor()
        self.dlc.host_write(0x0C, seed)
        self.dlc.reset_lfsrs()
        n_words = int(np.ceil(n_bits / factor))
        return self.dlc.lfsr().bits(n_words * factor)[:n_bits]

    def digitize_loopback(self, pattern_len: int = 8, seed: int = 1,
                          rate_gbps: Optional[float] = None,
                          n_reps: int = 24) -> "Waveform":
        """Reconstruct the looped-back waveform with the tester's
        own sampler (no external scope).

        A short repeating pattern is transmitted through the probe
        path; the PECL sampler's strobe-delay x threshold scan
        rebuilds one repetition at 10 ps resolution.
        """
        rate = self.rate_gbps if rate_gbps is None else rate_gbps
        # A repeating pattern: the LFSR stream's first pattern_len
        # bits, tiled.
        self.dlc.host_write(0x0C, seed)
        self.dlc.reset_lfsrs()
        unit = self.dlc.lfsr().bits(pattern_len)
        bits = np.tile(unit, n_reps + 2)
        wf = self.transmitter.transmit_serial(
            bits, rate, rng=np.random.default_rng(seed)
        )
        looped = self.channel.round_trip().apply(wf) \
            if isinstance(self.channel, InterposerChannel) \
            else self.channel.apply(wf)
        regen = self.receiver.regenerate(looped)
        return self.receiver.sampler.reconstruct_pattern(
            regen, rate, pattern_len, n_reps=n_reps,
            t_first_bit=self._channel_delay() + pattern_len
            * (1_000.0 / rate),
            rng=np.random.default_rng(seed + 3),
        )

    def shmoo_strobe(self, n_bits: int = 500, seed: int = 1,
                     rate_gbps: Optional[float] = None,
                     n_positions: int = 21) -> list:
        """Sweep the strobe across the bit cell; BER per position.

        The pass window's width is the operational eye opening as
        the mini-tester itself (not a scope) sees it.
        """
        rate = self.rate_gbps if rate_gbps is None else rate_gbps
        ui = 1_000.0 / rate
        step = self.receiver.sampler.resolution
        max_code = max(1, int(ui / step))
        codes = np.unique(np.linspace(0, max_code, n_positions)
                          .astype(int))
        return [
            self.run_loopback(n_bits=n_bits, seed=seed, rate_gbps=rate,
                              strobe_code=int(code))
            for code in codes
        ]
