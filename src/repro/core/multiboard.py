"""Multi-board synchronization for wide configurations.

The Terabit roadmap (``repro.core.scaling``) needs several DLC
boards driving channel groups in parallel. All boards share the one
RF reference through a clock fanout; each board contributes its own
insertion skew, and a cross-board deskew calibration pulls every
channel onto the common timebase — the same ±25 ps discipline as
within one board, now across the array.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.errors import CalibrationError, ConfigurationError
from repro.core.calibration import DeskewCalibration
from repro.dlc.clocking import ClockSignal
from repro.pecl.fanout import ClockFanout
from repro.pecl.serializer import ParallelToSerial
from repro.pecl.transmitter import PECLTransmitter


@dataclasses.dataclass(frozen=True)
class ArrayReport:
    """Summary of a synchronized board array.

    Attributes
    ----------
    n_boards:
        Boards in the array.
    n_channels:
        Total high-speed channels.
    reference_skew_pp:
        Clock-distribution skew across boards, ps p-p.
    worst_deskew_residual:
        Largest channel placement error after calibration, ps.
    meets_25ps:
        Whether the array meets the paper's accuracy claim.
    """

    n_boards: int
    n_channels: int
    reference_skew_pp: float
    worst_deskew_residual: float

    @property
    def meets_25ps(self) -> bool:
        """±25 ps across the whole array."""
        return (self.reference_skew_pp / 2.0
                + self.worst_deskew_residual) <= 25.0


class BoardArray:
    """Several DLC boards on one RF reference.

    Parameters
    ----------
    n_boards:
        Board count.
    channels_per_board:
        High-speed channels each board drives.
    rf_clock:
        The shared reference.
    fanout_skew_pp:
        Skew of the board-to-board clock distribution, ps p-p.
    """

    def __init__(self, n_boards: int, channels_per_board: int = 5,
                 rf_clock: Optional[ClockSignal] = None,
                 fanout_skew_pp: float = 12.0):
        if n_boards < 1:
            raise ConfigurationError("need >= 1 board")
        if channels_per_board < 1:
            raise ConfigurationError("need >= 1 channel per board")
        self.rf_clock = rf_clock or ClockSignal(2.5, 0.5, "rf")
        self.fanout = ClockFanout(n_outputs=n_boards,
                                  skew_pp=fanout_skew_pp,
                                  seed=11)
        board_clocks = self.fanout.distribute(self.rf_clock)
        self.boards: List[Dict[str, PECLTransmitter]] = []
        for b in range(n_boards):
            channels = {
                f"b{b}.ch{c}": PECLTransmitter(
                    ParallelToSerial(), clock=board_clocks[b],
                    lane_limit_mbps=800.0,
                )
                for c in range(channels_per_board)
            }
            self.boards.append(channels)

    @property
    def n_boards(self) -> int:
        """Board count."""
        return len(self.boards)

    @property
    def n_channels(self) -> int:
        """Total channels across the array."""
        return sum(len(b) for b in self.boards)

    def all_channels(self) -> Dict[str, PECLTransmitter]:
        """Every channel keyed by its array-wide name."""
        out: Dict[str, PECLTransmitter] = {}
        for board in self.boards:
            out.update(board)
        return out

    def board_skew(self, board: int) -> float:
        """The clock-distribution skew of one board, ps."""
        if not 0 <= board < self.n_boards:
            raise ConfigurationError(
                f"board {board} out of range [0, {self.n_boards})"
            )
        return self.fanout.skew(board)

    def deskew(self, measurement_noise_rms: float = 1.0,
               rng: Optional[np.random.Generator] = None
               ) -> Dict[str, float]:
        """Align every channel of every board to one timebase.

        The per-channel delay lines absorb both board-level clock
        skew and channel-level insertion differences. Returns the
        residual per channel (ps).
        """
        if rng is None:
            rng = np.random.default_rng(21)
        # Fold each board's clock skew into its channels' apparent
        # skew by pre-loading the delay lines' insertion delay
        # difference — the calibration measures the total anyway.
        cal = DeskewCalibration(
            self.all_channels(),
            measurement_noise_rms=measurement_noise_rms,
        )
        residuals = cal.deskew(rng)
        # Add each board's uncorrected reference skew contribution:
        # the delay line cancels what the calibration *measured*;
        # the clock skew is part of that measurement in hardware, so
        # treat residuals as channel-level and report clock skew
        # separately via report().
        return residuals

    def report(self, rng: Optional[np.random.Generator] = None
               ) -> ArrayReport:
        """Calibrate and summarize the array."""
        residuals = self.deskew(rng=rng)
        worst = max(abs(r) for r in residuals.values())
        return ArrayReport(
            n_boards=self.n_boards,
            n_channels=self.n_channels,
            reference_skew_pp=self.fanout.max_skew(),
            worst_deskew_residual=worst,
        )


def array_for_scaling(report) -> BoardArray:
    """Build the board array a scaling report calls for.

    Parameters
    ----------
    report:
        A :class:`repro.core.scaling.ScalingReport`.
    """
    channels_total = report.wavelengths
    per_board = max(1, int(np.ceil(channels_total / report.boards)))
    return BoardArray(n_boards=report.boards,
                      channels_per_board=per_board)
