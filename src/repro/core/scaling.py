"""Terabit-scale extension study (the paper's stated end goal).

"The end-application will require extending the word width to at
least 64 bits, and increasing channel data rates to 10 Gbps at each
wavelength, so that the aggregate data rate will be of the order of
a Terabit-per-second."

This module sizes that configuration against the component models:
how many DLC boards, FPGA I/O, serializer stages, and wavelengths a
W-bit x R-Gbps test bed needs, and which component ceilings a naive
scaling hits — the engineering the paper defers to future work.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List

from repro.errors import ConfigurationError
from repro.dlc.fpga import XC2V1000
from repro.dlc.io import DEFAULT_DERATED_MBPS


@dataclasses.dataclass(frozen=True)
class ScalingReport:
    """Resource sizing of one scaled configuration.

    Attributes
    ----------
    word_width:
        Parallel optical channels (payload bits).
    rate_gbps:
        Per-wavelength data rate.
    aggregate_gbps:
        Payload-channel aggregate (width x rate).
    serialization_factor:
        DLC lanes per channel at the given lane rate.
    lanes_total:
        FPGA pins consumed by payload channels (+clock).
    boards:
        DLC boards needed at the XC2V1000's I/O budget.
    wavelengths:
        WDM channels required (one per payload bit + clock).
    feasible_first_stage:
        Whether the per-channel rate fits today's (2004) first-stage
        PECL serializer ceiling without faster parts.
    notes:
        Human-readable constraint notes.
    """

    word_width: int
    rate_gbps: float
    aggregate_gbps: float
    serialization_factor: int
    lanes_total: int
    boards: int
    wavelengths: int
    feasible_first_stage: bool
    notes: List[str]

    @property
    def terabit(self) -> bool:
        """True when the aggregate reaches ~1 Tbps."""
        return self.aggregate_gbps >= 640.0  # "of the order of"


#: First-stage PECL serializer ceiling of the paper's parts, Gbps.
FIRST_STAGE_CEILING_GBPS = 4.0

#: Final 2:1 mux ceiling, Gbps.
SECOND_STAGE_CEILING_GBPS = 5.5


def size_configuration(word_width: int = 64, rate_gbps: float = 10.0,
                       lane_rate_mbps: float = DEFAULT_DERATED_MBPS,
                       io_per_board: int = None) -> ScalingReport:
    """Size a scaled test bed: W channels at R Gbps each.

    The sizing follows the paper's architecture: each channel is one
    serializer fed by ``R*1000/lane_rate`` DLC lanes, one wavelength
    per channel plus the source-synchronous clock.
    """
    if word_width < 1:
        raise ConfigurationError("word width must be >= 1")
    if rate_gbps <= 0.0:
        raise ConfigurationError("rate must be positive")
    if lane_rate_mbps <= 0.0:
        raise ConfigurationError("lane rate must be positive")
    io_budget = io_per_board if io_per_board is not None \
        else XC2V1000.io_pins
    factor = math.ceil(rate_gbps * 1000.0 / lane_rate_mbps)
    n_channels = word_width + 1  # payload + clock
    lanes_total = n_channels * factor
    boards = math.ceil(lanes_total / io_budget)
    notes: List[str] = []
    feasible_first = True
    if rate_gbps > SECOND_STAGE_CEILING_GBPS:
        feasible_first = False
        notes.append(
            f"{rate_gbps:g} Gbps/channel exceeds even the two-stage "
            f"output ceiling ({SECOND_STAGE_CEILING_GBPS:g} Gbps): "
            "needs faster (SiGe/InP) mux parts or more interleave "
            "stages"
        )
    elif rate_gbps > FIRST_STAGE_CEILING_GBPS:
        notes.append(
            f"{rate_gbps:g} Gbps/channel needs the two-stage "
            "(interleaved) serializer per channel"
        )
    if boards > 1:
        notes.append(
            f"{lanes_total} lanes exceed one XC2V1000's "
            f"{io_budget} I/O: {boards} synchronized DLC boards"
        )
    return ScalingReport(
        word_width=word_width,
        rate_gbps=rate_gbps,
        aggregate_gbps=word_width * rate_gbps,
        serialization_factor=factor,
        lanes_total=lanes_total,
        boards=boards,
        wavelengths=n_channels,
        feasible_first_stage=feasible_first,
        notes=notes,
    )


def scaling_path(target_aggregate_gbps: float = 640.0,
                 rate_options=(2.5, 5.0, 10.0)) -> List[ScalingReport]:
    """Configurations reaching a target aggregate at each rate.

    Shows the width/rate trade the paper's roadmap implies: at
    2.5 Gbps the word must be very wide; at 10 Gbps the per-channel
    electronics outrun 2004 parts.
    """
    if target_aggregate_gbps <= 0.0:
        raise ConfigurationError("target aggregate must be positive")
    reports = []
    for rate in rate_options:
        width = math.ceil(target_aggregate_gbps / rate)
        reports.append(size_configuration(word_width=width,
                                          rate_gbps=rate))
    return reports
