"""The Optical Test Bed (Section 3).

Five high-speed channels (4-bit payload + source-synchronous clock)
at a nominal 2.5 Gbps, each an 8:1 PECL serializer behind a SiGe
output buffer, plus a slower Frame bit and four Header channels
straight off DLC pins. Output levels are adjustable per Figures 10
and 11 to stress the Data Vortex under non-ideal conditions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError
from repro.core.packetformat import PacketSlot, PacketSlotFormat
from repro.core.system import TestSystem
from repro.pecl.buffer import SIGE_BUFFER, BufferSpec
from repro.pecl.levels import PECLLevels
from repro.dlc.io import SILICON_MAX_MBPS
from repro.pecl.serializer import ParallelToSerial, SerializerSpec
from repro.pecl.transmitter import PECLTransmitter
from repro.signal.nrz import NRZEncoder
from repro.signal.waveform import Waveform, WaveformBatch


class OpticalTestBed(TestSystem):
    """Project 1: the Data Vortex test bed's electronics.

    Parameters
    ----------
    rate_gbps:
        High-speed channel rate (2.5 nominal; demonstrated to 4.0).
    n_data_channels:
        Parallel payload width (4 + clock = the 5 channels built).
    buffer_spec:
        Output stage; the SiGe part by default.
    """

    def __init__(self, rate_gbps: float = 2.5, n_data_channels: int = 4,
                 buffer_spec: BufferSpec = SIGE_BUFFER,
                 io_rate_mbps: float = 400.0,
                 crosstalk=None, encoding=None, registry=None):
        from repro.coding.link import LinkCodec
        from repro.pecl.receiver import PECLReceiver

        super().__init__(rate_gbps, io_rate_mbps=io_rate_mbps,
                         registry=registry)
        if n_data_channels < 1:
            raise ConfigurationError("need >= 1 data channel")
        self.n_data_channels = int(n_data_channels)
        self.fmt = PacketSlotFormat(rate_gbps=rate_gbps,
                                    n_data_channels=n_data_channels)
        #: Optional line coding on the high-speed channels (None =
        #: raw NRZ; "8b10b", "8b10b-scrambled", or a
        #: :class:`repro.coding.LinkCodec`).
        self.codec = LinkCodec.from_spec(encoding, registry=registry)
        # One TX per high-speed channel: data channels + the clock.
        self.channels: Dict[str, PECLTransmitter] = {}
        for i in range(n_data_channels):
            self.channels[f"data{i}"] = self._make_tx()
        self.channels["clock"] = self._make_tx()
        self._tx = self.channels["data0"]
        #: Receive side for coded channels (shares the codec).
        self.receiver = PECLReceiver(buffer_spec=SIGE_BUFFER,
                                     encoding=self.codec)
        #: Optional board-level coupling between the high-speed
        #: channels (a :class:`repro.channel.crosstalk
        #: .CrosstalkMatrix` over this bed's channel names).
        self.crosstalk = crosstalk

    def _make_tx(self) -> PECLTransmitter:
        return PECLTransmitter(
            ParallelToSerial(SerializerSpec()),
            buffer_spec=SIGE_BUFFER,
            clock=self.rf_clock,
            lane_limit_mbps=SILICON_MAX_MBPS,
            encoding=self.codec,
        )

    def serialization_factor(self) -> int:
        return self.channels["data0"].serializer.factor

    # -- packet transmission ------------------------------------------------

    def transmit_slot(self, slot: PacketSlot, seed: int = 0,
                      dt: float = 1.0) -> Dict[str, Waveform]:
        """Render every channel of one packet slot as waveforms.

        High-speed channels (clock + data) go through the PECL
        serializer path; Frame and Header channels are driven at the
        bit-period granularity directly from DLC-grade outputs
        (slower edges, CMOS-grade jitter).
        """
        if slot.fmt.rate_gbps != self.rate_gbps:
            raise ConfigurationError(
                f"slot format is {slot.fmt.rate_gbps} Gbps; test bed "
                f"runs {self.rate_gbps} Gbps"
            )
        tel = telemetry.resolve(self.telemetry)
        with tel.span("testbed.transmit_slot"):
            rng = np.random.default_rng(seed)
            out: Dict[str, Waveform] = {}
            streams = slot.all_channels()
            for name in ["clock"] + [f"data{i}" for i in
                                     range(self.n_data_channels)]:
                tx = self.channels[name]
                out[name] = tx.transmit_serial(
                    streams[name], self.rate_gbps, rng=rng, dt=dt
                )
            # Frame + header: lower-speed CMOS outputs (~8x slower
            # edges).
            slow = NRZEncoder(self.rate_gbps, v_low=0.0, v_high=2.5,
                              t20_80=400.0, dt=dt)
            for name, bits in streams.items():
                if name.startswith("frame") or name.startswith("header"):
                    out[name] = slow.encode(bits, rng=rng)
            if self.crosstalk is not None:
                coupled = self.crosstalk.apply({
                    name: wf for name, wf in out.items()
                    if name in self.channels
                })
                out.update(coupled)
            tel.counter("testbed.slots_transmitted").inc()
            tel.counter("testbed.channel_waveforms").inc(len(out))
            return out

    def transmit_slot_batch(self, slot: PacketSlot, seed: int = 0,
                            dt: float = 1.0) -> Dict[str, Waveform]:
        """Batched :meth:`transmit_slot`: channels rendered as blocks.

        High-speed channels are grouped by transmit configuration
        (levels, buffer grade, jitter budget, delay code) and each
        group renders through one
        :meth:`~repro.pecl.transmitter.PECLTransmitter
        .transmit_serial_batch` call; Frame and Header channels
        render as one slow batch; board crosstalk applies as one
        coupling-matrix product. Returns the same per-channel dict
        as :meth:`transmit_slot` (rows are zero-copy batch views).
        With crosstalk disabled the slow channels are bit-identical
        to the scalar path; the jittered high-speed channels are
        statistically equivalent (one RNG draw order per group, not
        per channel).
        """
        if slot.fmt.rate_gbps != self.rate_gbps:
            raise ConfigurationError(
                f"slot format is {slot.fmt.rate_gbps} Gbps; test bed "
                f"runs {self.rate_gbps} Gbps"
            )
        tel = telemetry.resolve(self.telemetry)
        with tel.span("testbed.transmit_slot_batch"):
            rng = np.random.default_rng(seed)
            out: Dict[str, Waveform] = {}
            streams = slot.all_channels()
            groups: Dict[tuple, List[str]] = {}
            for name in ["clock"] + [f"data{i}" for i in
                                     range(self.n_data_channels)]:
                tx = self.channels[name]
                key = (tx.output_buffer.spec, tx.levels.v_low,
                       tx.levels.v_high, tx.delay_line.code,
                       tx.path_jitter_budget())
                groups.setdefault(key, []).append(name)
            for names in groups.values():
                tx = self.channels[names[0]]
                batch = tx.transmit_serial_batch(
                    np.stack([np.asarray(streams[n]) for n in names]),
                    self.rate_gbps, rng=rng, dt=dt,
                )
                for k, name in enumerate(names):
                    out[name] = batch.row(k)
            slow = NRZEncoder(self.rate_gbps, v_low=0.0, v_high=2.5,
                              t20_80=400.0, dt=dt)
            slow_names = [name for name in streams
                          if name.startswith("frame")
                          or name.startswith("header")]
            if slow_names:
                slow_batch = slow.encode_batch(
                    np.stack([np.asarray(streams[n])
                              for n in slow_names]), rng=rng)
                for k, name in enumerate(slow_names):
                    out[name] = slow_batch.row(k)
            if self.crosstalk is not None:
                present = [name for name in self.crosstalk.names
                           if name in out and name in self.channels]
                if present:
                    stacked = WaveformBatch.from_waveforms(
                        [out[name] for name in present])
                    mixed = self.crosstalk.apply_batch(stacked,
                                                       names=present)
                    for k, name in enumerate(present):
                        out[name] = mixed.row(k)
            tel.counter("testbed.slots_transmitted").inc()
            tel.counter("testbed.channel_waveforms").inc(len(out))
            return out

    def transmit_packets(self, slots: List[PacketSlot],
                         seed: int = 0) -> Dict[str, Waveform]:
        """Render a train of slots end-to-end per channel."""
        if not slots:
            raise ConfigurationError("need at least one slot")
        per_channel: Dict[str, List[Waveform]] = {}
        for k, slot in enumerate(slots):
            rendered = self.transmit_slot(slot, seed=seed + k)
            for name, wf in rendered.items():
                per_channel.setdefault(name, []).append(wf)
        return {
            name: Waveform.concatenate(parts)
            for name, parts in per_channel.items()
        }

    # -- level controls (Figures 10 and 11) -----------------------------

    def set_channel_high_level(self, channel: str,
                               voltage: float) -> PECLLevels:
        """Program one channel's VOH."""
        return self._channel(channel).set_high_level(voltage)

    def set_channel_swing(self, channel: str, swing: float) -> PECLLevels:
        """Program one channel's amplitude swing."""
        return self._channel(channel).set_swing(swing)

    def set_channel_midpoint(self, channel: str,
                             voltage: float) -> PECLLevels:
        """Program one channel's midpoint bias."""
        return self._channel(channel).set_midpoint(voltage)

    def sweep_high_level(self, channel: str, n_steps: int = 4,
                         step: float = -0.1) -> List[PECLLevels]:
        """Figure 10: VOH stepped down in 100 mV increments."""
        return self._channel(channel).level_control.sweep_high_level(
            n_steps, step
        )

    def sweep_swing(self, channel: str, n_steps: int = 4,
                    step: float = -0.2) -> List[PECLLevels]:
        """Figure 11: swing stepped in 200 mV increments."""
        return self._channel(channel).level_control.sweep_swing(
            n_steps, step
        )

    def _channel(self, name: str) -> PECLTransmitter:
        if name not in self.channels:
            raise ConfigurationError(
                f"no channel {name!r}; have {sorted(self.channels)}"
            )
        return self.channels[name]

    # -- receive side -------------------------------------------------------

    def receive_slot(self, waveforms: Dict[str, Waveform],
                     seed: int = 0) -> Dict[str, np.ndarray]:
        """Recover a transmitted slot's channels from waveforms.

        The receive half of the test bed ("5 high-speed data
        channels for both transmitting and receiving"): each channel
        is strobed at its bit-cell centers and sliced back into the
        Figure 4 fields. Returns the recovered bit streams per
        channel plus decoded fields:

        * ``payload``: (n_data_channels, payload_bits)
        * ``header_value``: the routing address as an int array of
          one element
        * ``frame_valid``: 1 if the frame bit asserted in the data
          window
        """
        from repro.signal.sampling import decide_bits

        telemetry.resolve(self.telemetry) \
            .counter("testbed.slots_received").inc()
        fmt = self.fmt
        rng = np.random.default_rng(seed)
        recovered: Dict[str, np.ndarray] = {}
        for name, wf in waveforms.items():
            threshold = 0.5 * (wf.min() + wf.max())
            if wf.peak_to_peak() < 1e-6:
                # A quiet channel (e.g. header bit 0): all zeros.
                recovered[name] = np.zeros(fmt.slot_bits,
                                           dtype=np.uint8)
                continue
            jitter = rng.normal(0.0, 1.0)
            recovered[name] = decide_bits(
                wf, self.rate_gbps, threshold,
                n_bits=fmt.slot_bits, t_first_bit=jitter,
            )
        payload = np.vstack([
            recovered[f"data{i}"][fmt.data_start_bit:fmt.data_end_bit]
            for i in range(self.n_data_channels)
        ])
        header_value = 0
        for i in range(fmt.n_header_bits):
            bit = int(recovered[f"header{i}"][fmt.data_start_bit])
            header_value = (header_value << 1) | bit
        frame_window = recovered["frame"][fmt.data_start_bit:
                                          fmt.data_end_bit]
        recovered["payload"] = payload
        recovered["header_value"] = np.array([header_value])
        recovered["frame_valid"] = np.array(
            [1 if frame_window.all() else 0], dtype=np.uint8
        )
        return recovered

    def slot_roundtrip(self, slot: PacketSlot,
                       seed: int = 0) -> bool:
        """Transmit a slot and verify its recovery bit-for-bit."""
        waveforms = self.transmit_slot(slot, seed=seed)
        recovered = self.receive_slot(waveforms, seed=seed + 1)
        payload_ok = all(
            np.array_equal(recovered["payload"][i], slot.payload[i])
            for i in range(self.n_data_channels)
        )
        header_ok = int(recovered["header_value"][0]) == slot.address()
        frame_ok = bool(recovered["frame_valid"][0]) == slot.frame
        ok = payload_ok and header_ok and frame_ok
        tel = telemetry.resolve(self.telemetry)
        tel.counter("testbed.roundtrips").inc()
        if not ok:
            tel.counter("testbed.roundtrip_failures").inc()
        return ok

    # -- multi-channel measurements --------------------------------------

    def four_channel_waveforms(self, word_bits: int = 32, seed: int = 2,
                               dt: float = 1.0) -> Dict[str, Waveform]:
        """Figure 6's view: four serialized data words side by side."""
        rng = np.random.default_rng(seed)
        out = {}
        for i in range(min(4, self.n_data_channels)):
            bits = rng.integers(0, 2, size=word_bits).astype(np.uint8)
            tx = self.channels[f"data{i}"]
            out[f"data{i}"] = tx.transmit_serial(
                bits, self.rate_gbps, rng=rng, dt=dt
            )
        return out

    # -- coded serial links -----------------------------------------------

    def _require_codec(self):
        if self.codec is None:
            raise ConfigurationError(
                "no encoding configured on this test bed; pass "
                "encoding='8b10b' (or a LinkCodec) at construction"
            )
        return self.codec

    def transmit_coded(self, payload, channel: str = "data0",
                       seed: int = 0, dt: float = 1.0) -> Waveform:
        """Frame, encode, and render *payload* bytes on one channel."""
        self._require_codec()
        tx = self._channel(channel)
        return tx.transmit_coded(payload, self.rate_gbps,
                                 rng=np.random.default_rng(seed),
                                 dt=dt)

    def transmit_coded_channels(self, payloads, seed: int = 0,
                                dt: float = 1.0) -> WaveformBatch:
        """Drive a ``(n_data_channels, n_bytes)`` coded payload block.

        One vectorized frame encode plus one batched render across
        the bed's data channels (they share a transmit
        configuration), consistent with the PR 5 batched layout —
        the encoded line bits are bit-identical per row to
        :meth:`transmit_coded`.
        """
        self._require_codec()
        payloads = np.asarray(payloads, dtype=np.uint8)
        if payloads.ndim != 2 or \
                payloads.shape[0] != self.n_data_channels:
            raise ConfigurationError(
                f"expected ({self.n_data_channels}, n_bytes), got "
                f"shape {payloads.shape}"
            )
        tel = telemetry.resolve(self.telemetry)
        with tel.span("testbed.transmit_coded_channels"):
            return self._tx.transmit_coded_batch(
                payloads, self.rate_gbps,
                rng=np.random.default_rng(seed), dt=dt)

    def coded_roundtrip(self, payload, channel: str = "data0",
                        seed: int = 0, noise_rms: float = 0.0):
        """One coded TX → RX pass; returns the decoded frame.

        Optionally adds Gaussian voltage noise before the receiver
        (the bench knob for error-burst statistics). The returned
        :class:`repro.coding.DecodedFrame` carries payload bytes and
        the violation/disparity/lock stats.
        """
        self._require_codec()
        payload = np.asarray(payload, dtype=np.uint8)
        wf = self.transmit_coded(payload, channel=channel, seed=seed)
        if noise_rms > 0.0:
            rng = np.random.default_rng(seed + 1)
            wf = Waveform(
                wf.values + rng.normal(0.0, noise_rms, len(wf)),
                dt=wf.dt, t0=wf.t0)
        return self.receiver.receive_payload(
            wf, self.rate_gbps, len(payload),
            rng=np.random.default_rng(seed + 2))

    def measure_coded_eye(self, n_bytes: int = 400, seed: int = 1,
                          channel: str = "data0"):
        """Eye metrics of the encoded line stream on one channel.

        The 8b10b symbol stream is what actually crosses the
        connector, so its eye (at the line rate) is the apples-to-
        apples counterpart of the raw-PRBS eyes in Figures 7-8.
        """
        from repro.coding.checker import prbs_payload_bytes
        from repro.eye.diagram import EyeDiagram
        from repro.eye.metrics import measure_eye

        self._require_codec()
        payload = prbs_payload_bytes(7, n_bytes, seed=seed)
        wf = self.transmit_coded(payload, channel=channel, seed=seed)
        return measure_eye(EyeDiagram.from_waveform(wf,
                                                    self.rate_gbps))
