"""Test Support Processor (TSP) mode — the concept behind the DLC.

"A general concept called 'test support processor' (TSP) was
introduced in [1]. A TSP is a customized circuit which is added to
an existing automated test system in order to enhance either the
performance or to provide additional test functionality."

This module models the TSP deployment mode: the DLC+PECL stage rides
on a conventional ATE whose channels feed it vectors at the ATE's
(modest) rate, and the TSP serializes them up to multi-gigahertz at
the DUT — versus the stand-alone "miniature tester" mode that the
paper's two projects use.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, RateLimitError
from repro.pecl.serializer import ParallelToSerial, SerializerSpec
from repro.pecl.transmitter import PECLTransmitter
from repro.signal.waveform import Waveform


@dataclasses.dataclass(frozen=True)
class HostATE:
    """The conventional ATE hosting a TSP.

    Attributes
    ----------
    channel_rate_mbps:
        Per-channel vector rate the ATE can source.
    n_channels_available:
        Channels the ATE can dedicate to the TSP.
    """

    channel_rate_mbps: float = 100.0
    n_channels_available: int = 32

    def __post_init__(self):
        if self.channel_rate_mbps <= 0.0:
            raise ConfigurationError("ATE channel rate must be positive")
        if self.n_channels_available < 1:
            raise ConfigurationError("ATE must offer >= 1 channel")


class TestSupportProcessor:
    """A TSP: ATE vectors in, multi-gigahertz stimulus out.

    Parameters
    ----------
    host:
        The hosting ATE.
    serializer_factor:
        ATE channels consumed per TSP output channel.
    """

    __test__ = False  # not a pytest collection target

    def __init__(self, host: HostATE = HostATE(),
                 serializer_factor: int = 16):
        if serializer_factor < 2:
            raise ConfigurationError("serialization factor must be >= 2")
        if serializer_factor > host.n_channels_available:
            raise ConfigurationError(
                f"TSP needs {serializer_factor} ATE channels; host "
                f"offers {host.n_channels_available}"
            )
        self.host = host
        self.factor = int(serializer_factor)
        spec = SerializerSpec(
            name=f"tsp_serializer_{serializer_factor}to1",
            factor=serializer_factor,
        )
        self.transmitter = PECLTransmitter(
            ParallelToSerial(spec),
            lane_limit_mbps=host.channel_rate_mbps,
        )

    @property
    def output_rate_gbps(self) -> float:
        """Serial rate the TSP produces from the ATE's vectors."""
        return self.factor * self.host.channel_rate_mbps / 1000.0

    @property
    def enhancement_factor(self) -> float:
        """Rate boost over one bare ATE channel."""
        return float(self.factor)

    def drive(self, ate_vectors, rng: Optional[np.random.Generator] = None
              ) -> Waveform:
        """Serialize ATE-sourced vectors into the DUT stimulus.

        Parameters
        ----------
        ate_vectors:
            (factor, n) array — one lane per ATE channel, at the
            ATE's channel rate.
        """
        lanes = np.asarray(ate_vectors).astype(np.uint8)
        if lanes.ndim != 2 or lanes.shape[0] != self.factor:
            raise ConfigurationError(
                f"TSP expects ({self.factor}, n) ATE vectors; got "
                f"{lanes.shape}"
            )
        rate = self.output_rate_gbps
        if rate > self.transmitter.serializer.spec.max_output_gbps:
            raise RateLimitError(
                f"TSP output {rate:.2f} Gbps exceeds the serializer "
                "ceiling; reduce the factor or the ATE rate"
            )
        return self.transmitter.transmit(lanes, rate, rng=rng)

    def upgrade_summary(self) -> dict:
        """What the TSP adds to the host ATE, as a report dict."""
        return {
            "ate_channel_rate_gbps": self.host.channel_rate_mbps / 1000.0,
            "tsp_output_rate_gbps": self.output_rate_gbps,
            "enhancement_factor": self.enhancement_factor,
            "ate_channels_consumed": self.factor,
        }
