"""USB control channel between the PC and the DLC.

"A personal computer communicates through a Universal Serial Bus
(USB) with the DLC, and provides high-level control of the tests."
The model is transaction-level: packets with real CRCs, a device
with control/bulk endpoints (the DLC's microcontroller), a host
controller, and the register/pattern command protocol riding on
bulk transfers.
"""

from repro.usb.packets import (
    PID,
    TokenPacket,
    DataPacket,
    HandshakePacket,
    crc5,
    crc16,
)
from repro.usb.device import USBDevice, Endpoint, EndpointType
from repro.usb.host import USBHost
from repro.usb.protocol import DLCProtocol, DLCFunction, Command

__all__ = [
    "PID",
    "TokenPacket",
    "DataPacket",
    "HandshakePacket",
    "crc5",
    "crc16",
    "USBDevice",
    "Endpoint",
    "EndpointType",
    "USBHost",
    "DLCProtocol",
    "DLCFunction",
    "Command",
]
