"""USB host controller: the PC's side of the link.

Issues transactions to one attached device with bounded NAK
retries, performs the short enumeration dance, and exposes
control/bulk transfer primitives to the protocol layer.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ProtocolError
from repro.usb.device import USBDevice
from repro.usb.packets import (
    PID,
    DataPacket,
    HandshakePacket,
    TokenPacket,
)


class USBHost:
    """Host controller with one attached device.

    Parameters
    ----------
    device:
        The DLC's USB function.
    max_retries:
        NAK retries per transaction before declaring an error.
    """

    def __init__(self, device: USBDevice, max_retries: int = 8):
        if max_retries < 1:
            raise ProtocolError("need >= 1 retry")
        self.device = device
        self.max_retries = int(max_retries)
        self._out_toggle = {}
        self.transactions = 0

    # -- low-level transactions ----------------------------------------

    def _out(self, endpoint: int, payload: bytes,
             setup: bool = False) -> None:
        pid = PID.SETUP if setup else PID.OUT
        toggle_key = (self.device.address, endpoint)
        if setup:
            self._out_toggle[toggle_key] = PID.DATA0
        toggle = self._out_toggle.get(toggle_key, PID.DATA0)
        token = TokenPacket(pid, self.device.address, endpoint)
        data = DataPacket(toggle, payload)
        for _ in range(self.max_retries):
            self.transactions += 1
            handshake = self.device.handle_token(token, data)
            if handshake is None:
                raise ProtocolError("device did not respond (address?)")
            if handshake.pid is PID.STALL:
                raise ProtocolError(f"EP{endpoint} stalled")
            if handshake.pid is PID.ACK:
                self._out_toggle[toggle_key] = (
                    PID.DATA1 if toggle is PID.DATA0 else PID.DATA0
                )
                return
        raise ProtocolError(
            f"EP{endpoint} NAKed {self.max_retries} OUT attempts"
        )

    def _in(self, endpoint: int) -> Optional[bytes]:
        token = TokenPacket(PID.IN, self.device.address, endpoint)
        for _ in range(self.max_retries):
            self.transactions += 1
            result = self.device.handle_token(token)
            if isinstance(result, HandshakePacket) \
                    and result.pid is PID.STALL:
                raise ProtocolError(f"EP{endpoint} stalled on IN")
            if isinstance(result, DataPacket):
                if not result.valid():
                    continue  # corrupted; retry
                return result.data
            # None = NAK; retry.
        return None

    # -- transfers ----------------------------------------------------------

    def control_transfer(self, request: bytes) -> bytes:
        """SETUP + IN status/data stage on endpoint 0."""
        if len(request) < 8:
            raise ProtocolError("control requests are 8+ bytes")
        self._out(0, request, setup=True)
        data = self._in(0)
        return data if data is not None else b""

    def bulk_out(self, payload: bytes, endpoint: int = 1) -> None:
        """Send host->device data on a bulk endpoint."""
        ep = self.device.endpoint(endpoint)
        for i in range(0, max(len(payload), 1), ep.max_packet):
            self._out(endpoint, payload[i:i + ep.max_packet])

    def bulk_in(self, endpoint: int = 2,
                max_packets: int = 64) -> bytes:
        """Drain device->host data from a bulk endpoint."""
        chunks = []
        for _ in range(max_packets):
            data = self._in(endpoint)
            if data is None:
                break
            chunks.append(data)
            ep = self.device.endpoint(endpoint)
            if len(data) < ep.max_packet:
                break  # short packet ends the transfer
        return b"".join(chunks)

    # -- enumeration -------------------------------------------------------

    def enumerate(self, new_address: int = 5) -> bytes:
        """Assign an address, fetch IDs, set the configuration."""
        if not 1 <= new_address <= 127:
            raise ProtocolError(f"bad address {new_address}")
        set_addr = bytes([0x00, USBDevice.SET_ADDRESS,
                          new_address & 0xFF, 0x00, 0, 0, 0, 0])
        self._out(0, set_addr, setup=True)
        self._in(0)  # status stage
        # Subsequent traffic uses the new address.
        get_desc = bytes([0x80, USBDevice.GET_DESCRIPTOR, 0, 1, 0, 0, 8, 0])
        self._out(0, get_desc, setup=True)
        descriptor = self._in(0) or b""
        set_cfg = bytes([0x00, USBDevice.SET_CONFIGURATION, 1, 0, 0, 0, 0, 0])
        self._out(0, set_cfg, setup=True)
        self._in(0)
        if not self.device.configured:
            raise ProtocolError("device refused configuration")
        return descriptor
