"""The DLC command protocol carried over USB bulk transfers.

Frames are ``[opcode][u16 address][u32 value]`` (7 bytes) host to
device; replies are ``[opcode][u32 value]``. Three commands cover
what the paper's host software needs: register write, register read,
and pattern-vector upload (streamed into the DLC's pattern memory).
"""

from __future__ import annotations

import enum
from typing import List

from repro.errors import ProtocolError
from repro.dlc.core import DigitalLogicCore
from repro.dlc.pattern import PatternMemory
from repro.usb.device import USBDevice
from repro.usb.host import USBHost


class Command(enum.Enum):
    """Protocol opcodes."""

    REG_WRITE = 0x01
    REG_READ = 0x02
    PATTERN_LOAD = 0x03
    NOP = 0x00


def encode_command(command: Command, address: int = 0,
                   value: int = 0) -> bytes:
    """Serialize one command frame."""
    if not 0 <= address <= 0xFFFF:
        raise ProtocolError(f"address 0x{address:x} exceeds 16 bits")
    if not 0 <= value <= 0xFFFFFFFF:
        raise ProtocolError(f"value 0x{value:x} exceeds 32 bits")
    return (bytes([command.value]) + address.to_bytes(2, "big")
            + value.to_bytes(4, "big"))


def decode_command(frame: bytes):
    """Parse one command frame into (command, address, value)."""
    if len(frame) != 7:
        raise ProtocolError(
            f"command frames are 7 bytes, got {len(frame)}"
        )
    try:
        command = Command(frame[0])
    except ValueError:
        raise ProtocolError(f"unknown opcode 0x{frame[0]:02x}") from None
    address = int.from_bytes(frame[1:3], "big")
    value = int.from_bytes(frame[3:7], "big")
    return command, address, value


class DLCFunction:
    """Device-side protocol handler: frames -> DLC register file.

    Installed as the USB device's bulk-OUT callback; replies go out
    the bulk-IN endpoint.
    """

    def __init__(self, device: USBDevice, dlc: DigitalLogicCore,
                 pattern_memory: PatternMemory = None):
        self.device = device
        self.dlc = dlc
        # Note: an empty PatternMemory is falsy (len 0), so the
        # presence check must be identity, not truthiness.
        self.pattern_memory = pattern_memory \
            if pattern_memory is not None else PatternMemory(32, 4096)
        self._pattern_buffer: List[int] = []
        device.on_bulk_out = self._handle_frame

    def _reply(self, command: Command, value: int) -> None:
        frame = bytes([command.value]) + value.to_bytes(4, "big")
        self.device.endpoint(2).queue_tx(frame)

    def _handle_frame(self, frame: bytes) -> None:
        # Bulk payloads may carry several frames back to back.
        if len(frame) % 7 != 0:
            raise ProtocolError(
                f"bulk payload of {len(frame)} bytes is not whole frames"
            )
        for i in range(0, len(frame), 7):
            command, address, value = decode_command(frame[i:i + 7])
            if command is Command.REG_WRITE:
                self.dlc.host_write(address, value)
                self._reply(command, value)
            elif command is Command.REG_READ:
                self._reply(command, self.dlc.host_read(address))
            elif command is Command.PATTERN_LOAD:
                # address carries the remaining-count; value the vector.
                self._pattern_buffer.append(value)
                if address == 0:
                    self.pattern_memory.load(self._pattern_buffer)
                    self._pattern_buffer = []
                self._reply(command, len(self._pattern_buffer))
            elif command is Command.NOP:
                self._reply(command, 0)


class DLCProtocol:
    """Host-side API: typed calls -> USB bulk traffic."""

    def __init__(self, host: USBHost):
        self.host = host

    def _roundtrip(self, frame: bytes) -> int:
        self.host.bulk_out(frame, endpoint=1)
        reply = self.host.bulk_in(endpoint=2)
        if len(reply) < 5:
            raise ProtocolError(
                f"short reply ({len(reply)} bytes) from the DLC"
            )
        return int.from_bytes(reply[1:5], "big")

    def write_register(self, address: int, value: int) -> None:
        """Write one DLC register."""
        echoed = self._roundtrip(
            encode_command(Command.REG_WRITE, address, value)
        )
        if echoed != value:
            raise ProtocolError(
                f"write echo mismatch: sent 0x{value:x}, got 0x{echoed:x}"
            )

    def read_register(self, address: int) -> int:
        """Read one DLC register."""
        return self._roundtrip(encode_command(Command.REG_READ, address))

    def load_pattern(self, vectors) -> None:
        """Stream vectors into the DLC's pattern memory."""
        vectors = list(vectors)
        if not vectors:
            raise ProtocolError("no vectors to load")
        for k, v in enumerate(vectors):
            remaining = len(vectors) - 1 - k
            self._roundtrip(
                encode_command(Command.PATTERN_LOAD,
                               min(remaining, 0xFFFF), int(v))
            )

    def ping(self) -> bool:
        """NOP round trip; True when the link is alive."""
        return self._roundtrip(encode_command(Command.NOP)) == 0
