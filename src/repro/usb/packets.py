"""USB packet structures and checksums.

Transaction-level USB: token packets (IN/OUT/SETUP) protected by
CRC5, data packets (DATA0/DATA1) protected by CRC16, and handshake
packets (ACK/NAK/STALL). The CRC polynomials are the real ones, so
corruption is genuinely detectable in fault-injection tests.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import ProtocolError


class PID(enum.Enum):
    """Packet identifiers (the subset the DLC link uses)."""

    OUT = 0b0001
    IN = 0b1001
    SETUP = 0b1101
    DATA0 = 0b0011
    DATA1 = 0b1011
    ACK = 0b0010
    NAK = 0b1010
    STALL = 0b1110


def crc5(value: int, n_bits: int = 11) -> int:
    """USB CRC5 (poly x^5 + x^2 + 1) over *n_bits* of *value*.

    Used on the 11-bit address+endpoint field of token packets.
    """
    poly = 0b00101
    crc = 0b11111
    for i in range(n_bits):
        bit = (value >> i) & 1
        top = (crc >> 4) & 1
        crc = ((crc << 1) & 0b11111)
        if bit ^ top:
            crc ^= poly
    return crc ^ 0b11111


def crc16(data: bytes) -> int:
    """USB CRC16 (poly x^16 + x^15 + x^2 + 1) over *data*."""
    poly = 0x8005
    crc = 0xFFFF
    for byte in data:
        for i in range(8):
            bit = (byte >> i) & 1
            top = (crc >> 15) & 1
            crc = (crc << 1) & 0xFFFF
            if bit ^ top:
                crc ^= poly
    return crc ^ 0xFFFF


@dataclasses.dataclass(frozen=True)
class TokenPacket:
    """IN/OUT/SETUP token.

    Attributes
    ----------
    pid:
        Must be a token PID.
    address:
        Device address, 0-127.
    endpoint:
        Endpoint number, 0-15.
    crc:
        CRC5 over address+endpoint; computed when omitted (None).
    """

    pid: PID
    address: int
    endpoint: int
    crc: int = None

    def __post_init__(self):
        if self.pid not in (PID.OUT, PID.IN, PID.SETUP):
            raise ProtocolError(f"{self.pid} is not a token PID")
        if not 0 <= self.address <= 127:
            raise ProtocolError(f"bad device address {self.address}")
        if not 0 <= self.endpoint <= 15:
            raise ProtocolError(f"bad endpoint {self.endpoint}")
        if self.crc is None:
            object.__setattr__(self, "crc", crc5(self._field()))

    def _field(self) -> int:
        return self.address | (self.endpoint << 7)

    def valid(self) -> bool:
        """True when the stored CRC matches the fields."""
        return self.crc == crc5(self._field())


@dataclasses.dataclass(frozen=True)
class DataPacket:
    """DATA0/DATA1 payload packet.

    Attributes
    ----------
    pid:
        DATA0 or DATA1 (the alternating toggle).
    data:
        Payload bytes.
    crc:
        CRC16; computed when omitted (None).
    """

    pid: PID
    data: bytes
    crc: int = None

    def __post_init__(self):
        if self.pid not in (PID.DATA0, PID.DATA1):
            raise ProtocolError(f"{self.pid} is not a data PID")
        object.__setattr__(self, "data", bytes(self.data))
        if self.crc is None:
            object.__setattr__(self, "crc", crc16(self.data))

    def valid(self) -> bool:
        """True when the stored CRC matches the payload."""
        return self.crc == crc16(self.data)

    def corrupted(self, byte_index: int, bit: int = 0) -> "DataPacket":
        """A copy with one bit flipped but the old CRC (for fault
        injection tests)."""
        if not 0 <= byte_index < len(self.data):
            raise ProtocolError("corruption index outside payload")
        mutated = bytearray(self.data)
        mutated[byte_index] ^= (1 << bit)
        return DataPacket(self.pid, bytes(mutated), crc=self.crc)


@dataclasses.dataclass(frozen=True)
class HandshakePacket:
    """ACK/NAK/STALL handshake."""

    pid: PID

    def __post_init__(self):
        if self.pid not in (PID.ACK, PID.NAK, PID.STALL):
            raise ProtocolError(f"{self.pid} is not a handshake PID")
