"""The DLC's USB device side (the microcontroller).

A device with a control endpoint (enumeration) and a pair of bulk
endpoints carrying the DLC command protocol. Data toggles, NAK on
empty reads, and CRC checking behave as on the wire.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, Dict, Optional

from repro.errors import ProtocolError
from repro.usb.packets import (
    PID,
    DataPacket,
    HandshakePacket,
    TokenPacket,
)


class EndpointType(enum.Enum):
    """Transfer types the model supports."""

    CONTROL = "control"
    BULK = "bulk"


class Endpoint:
    """One device endpoint with its FIFO and data toggle.

    Parameters
    ----------
    number:
        Endpoint number.
    ep_type:
        Control or bulk.
    max_packet:
        Largest payload accepted per transaction.
    """

    def __init__(self, number: int, ep_type: EndpointType,
                 max_packet: int = 64):
        if not 0 <= number <= 15:
            raise ProtocolError(f"bad endpoint number {number}")
        if max_packet < 1:
            raise ProtocolError("max packet must be >= 1")
        self.number = int(number)
        self.ep_type = ep_type
        self.max_packet = int(max_packet)
        self.rx_fifo: Deque[bytes] = deque()
        self.tx_fifo: Deque[bytes] = deque()
        self.expected_toggle = PID.DATA0
        self.next_tx_toggle = PID.DATA0
        self.stalled = False

    def _flip(self, pid: PID) -> PID:
        return PID.DATA1 if pid is PID.DATA0 else PID.DATA0

    def receive(self, packet: DataPacket) -> HandshakePacket:
        """Handle an OUT data packet; returns the handshake."""
        if self.stalled:
            return HandshakePacket(PID.STALL)
        if not packet.valid():
            # Corrupted data gets no handshake on real USB; the model
            # returns NAK so the host retries.
            return HandshakePacket(PID.NAK)
        if len(packet.data) > self.max_packet:
            raise ProtocolError(
                f"EP{self.number}: {len(packet.data)} bytes exceed "
                f"max packet {self.max_packet}"
            )
        if packet.pid is not self.expected_toggle:
            # Duplicate (host missed our ACK): ACK again, drop data.
            return HandshakePacket(PID.ACK)
        self.rx_fifo.append(packet.data)
        self.expected_toggle = self._flip(self.expected_toggle)
        return HandshakePacket(PID.ACK)

    def transmit(self) -> Optional[DataPacket]:
        """Produce the next IN data packet, or None to NAK."""
        if self.stalled or not self.tx_fifo:
            return None
        data = self.tx_fifo.popleft()
        packet = DataPacket(self.next_tx_toggle, data)
        self.next_tx_toggle = self._flip(self.next_tx_toggle)
        return packet

    def queue_tx(self, data: bytes) -> None:
        """Queue device->host data, split to max-packet chunks."""
        data = bytes(data)
        for i in range(0, len(data), self.max_packet):
            self.tx_fifo.append(data[i:i + self.max_packet])
        if not data:
            self.tx_fifo.append(b"")


class USBDevice:
    """The DLC board's USB function.

    Parameters
    ----------
    address:
        Bus address (assigned 0 until enumeration).
    """

    VENDOR_ID = 0x6A5A
    PRODUCT_ID = 0x0D1C

    def __init__(self, address: int = 0):
        self.address = int(address)
        self.configured = False
        self.endpoints: Dict[int, Endpoint] = {
            0: Endpoint(0, EndpointType.CONTROL),
            1: Endpoint(1, EndpointType.BULK),
            2: Endpoint(2, EndpointType.BULK),
        }
        #: Called with each complete bulk OUT payload, may queue a
        #: reply (the protocol layer installs this).
        self.on_bulk_out: Optional[Callable[[bytes], None]] = None

    def endpoint(self, number: int) -> Endpoint:
        """Look up one endpoint."""
        try:
            return self.endpoints[number]
        except KeyError:
            raise ProtocolError(f"no endpoint {number}") from None

    def handle_token(self, token: TokenPacket,
                     data: Optional[DataPacket] = None):
        """Process one transaction from the host.

        Returns a :class:`HandshakePacket` for OUT/SETUP, or a
        :class:`DataPacket`/None (NAK) for IN.
        """
        if not token.valid():
            raise ProtocolError("token packet failed CRC5")
        if token.address != self.address:
            return None  # not for us; bus silence
        ep = self.endpoint(token.endpoint)
        if token.pid in (PID.OUT, PID.SETUP):
            if data is None:
                raise ProtocolError("OUT/SETUP token without data")
            if token.pid is PID.SETUP:
                # SETUP always clears a halt condition (USB 2.0 8.5.3).
                ep.stalled = False
                ep.expected_toggle = PID.DATA0
                handshake = ep.receive(data)
                if handshake.pid is PID.ACK and ep.rx_fifo:
                    self._handle_setup(ep)
                return handshake
            handshake = ep.receive(data)
            if handshake.pid is PID.ACK and ep.number != 0 \
                    and self.on_bulk_out is not None and ep.rx_fifo:
                self.on_bulk_out(ep.rx_fifo.popleft())
            return handshake
        if token.pid is PID.IN:
            if ep.stalled:
                return HandshakePacket(PID.STALL)
            return ep.transmit()
        raise ProtocolError(f"device cannot handle {token.pid}")

    # -- minimal control requests -----------------------------------------

    SET_ADDRESS = 0x05
    GET_DESCRIPTOR = 0x06
    SET_CONFIGURATION = 0x09

    def _handle_setup(self, ep0: Endpoint) -> None:
        request = ep0.rx_fifo.popleft()
        if len(request) < 8:
            raise ProtocolError("setup packet shorter than 8 bytes")
        b_request = request[1]
        w_value = request[2] | (request[3] << 8)
        if b_request == self.SET_ADDRESS:
            self.address = w_value & 0x7F
            ep0.queue_tx(b"")
        elif b_request == self.GET_DESCRIPTOR:
            ep0.queue_tx(
                self.VENDOR_ID.to_bytes(2, "little")
                + self.PRODUCT_ID.to_bytes(2, "little")
            )
        elif b_request == self.SET_CONFIGURATION:
            self.configured = True
            ep0.queue_tx(b"")
        else:
            ep0.stalled = True
