"""Telemetry instruments: counters, gauges, and histogram timers.

The primitives a :class:`~repro.telemetry.registry.Registry` hands
out. Each is a tiny mutable object with ``__slots__`` so the
enabled-path cost is one attribute update; the ``Null*`` twins are
shared do-nothing singletons that make the disabled path free.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Optional

from repro.errors import ConfigurationError


class Counter:
    """A monotonically increasing named count.

    Counters only go up (Prometheus semantics); decrements raise
    :class:`~repro.errors.ConfigurationError`. Use a :class:`Gauge`
    for values that move both ways.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (>= 0) to the count."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r}: increment must be >= 0, "
                f"got {amount}"
            )
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A named value that can move in either direction."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to *value*."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the gauge up by *amount*."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the gauge down by *amount*."""
        self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Timer:
    """A duration histogram: count, total, min, max of observations.

    Filled either directly via :meth:`observe` or by a
    :class:`~repro.telemetry.registry.Span` on exit. All durations
    are in seconds.
    """

    __slots__ = ("name", "count", "total_s", "min_s", "max_s")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.min_s = math.inf
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        """Record one duration (>= 0), in seconds."""
        if seconds < 0.0:
            raise ConfigurationError(
                f"timer {self.name!r}: duration must be >= 0, "
                f"got {seconds}"
            )
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    @property
    def mean_s(self) -> float:
        """Mean observed duration in seconds (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total_s / self.count

    def time(self) -> "_TimerContext":
        """Context manager timing the enclosed block into this timer."""
        return _TimerContext(self)

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of this timer's statistics."""
        return {
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
            "mean_s": self.mean_s,
        }

    def __repr__(self) -> str:
        return (f"Timer({self.name!r}, n={self.count}, "
                f"total={self.total_s:.6f}s)")


class _TimerContext:
    """Times one ``with`` block into a :class:`Timer`."""

    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer):
        self._timer = timer
        self._start: Optional[float] = None

    def __enter__(self) -> Timer:
        self._start = time.perf_counter()
        return self._timer

    def __exit__(self, exc_type, exc, tb) -> None:
        self._timer.observe(time.perf_counter() - self._start)


class NullCounter:
    """Shared do-nothing counter for the disabled fast path."""

    __slots__ = ()

    name = ""
    value = 0

    def inc(self, amount: int = 1) -> None:
        """Discard the increment."""


class NullGauge:
    """Shared do-nothing gauge for the disabled fast path."""

    __slots__ = ()

    name = ""
    value = 0.0

    def set(self, value: float) -> None:
        """Discard the value."""

    def inc(self, amount: float = 1.0) -> None:
        """Discard the increment."""

    def dec(self, amount: float = 1.0) -> None:
        """Discard the decrement."""


class NullSpan:
    """Shared do-nothing, re-usable span context manager."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class NullTimer:
    """Shared do-nothing timer for the disabled fast path."""

    __slots__ = ()

    name = ""
    count = 0
    total_s = 0.0
    mean_s = 0.0

    def observe(self, seconds: float) -> None:
        """Discard the observation."""

    def time(self) -> NullSpan:
        """A no-op context manager."""
        return NULL_SPAN


#: Module-level singletons: every disabled-path lookup returns these,
#: so no allocation or dict insertion happens while disabled.
NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_TIMER = NullTimer()
NULL_SPAN = NullSpan()
