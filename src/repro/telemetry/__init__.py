"""repro.telemetry — counters, gauges, timers, and trace spans.

The simulation stack's observability layer: hierarchical named
counters/gauges/histogram-timers plus context-manager trace spans,
with a snapshot/export API (:meth:`Registry.to_dict`, Prometheus
text, JSON) and a module-level no-op fast path that makes the whole
subsystem essentially free when disabled (the default).

Usage
-----
Global collection (the singleton registry)::

    from repro import telemetry

    reg = telemetry.enable()          # activates the singleton
    bed.measure_eye(n_bits=2000)      # instrumented internally
    print(reg.to_prometheus())
    telemetry.disable()               # back to the free no-op path

Isolated collection (tests, per-worker registries)::

    with telemetry.use_registry(telemetry.Registry()) as reg:
        fabric.run(100)
    assert reg.to_dict()["counters"]["vortex.steps"] == 100

Instrumented components also accept an injectable ``registry=``
argument that overrides the module-level state for that instance.

Instrumentation sites call :func:`active` (or :func:`resolve` when
they hold an injected registry) and never touch the singleton
directly, so the disabled path is one module lookup plus shared
no-op singletons — no allocation, no dict writes.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Union

from repro.telemetry.export import (
    sanitize_metric_name, snapshot_to_json, snapshot_to_prometheus,
    split_labels,
)
from repro.telemetry.instruments import (
    NULL_COUNTER, NULL_GAUGE, NULL_SPAN, NULL_TIMER,
    Counter, Gauge, NullCounter, NullGauge, NullSpan, NullTimer, Timer,
)
from repro.telemetry.registry import NullRegistry, Registry, Span

__all__ = [
    "Counter", "Gauge", "Timer", "Span", "Registry", "NullRegistry",
    "NULL_REGISTRY", "get_registry", "active", "resolve", "enable",
    "disable", "enabled", "use_registry",
    "sanitize_metric_name", "snapshot_to_json", "snapshot_to_prometheus",
    "split_labels",
]

#: The shared disabled-path registry; `active()` returns it whenever
#: telemetry is off.
NULL_REGISTRY = NullRegistry()

_singleton: Optional[Registry] = None
_active: Union[Registry, NullRegistry] = NULL_REGISTRY


def get_registry() -> Registry:
    """The process-wide singleton registry (created on first use).

    Returned whether or not collection is enabled; :func:`enable`
    makes it the active sink for instrumented code.
    """
    global _singleton
    if _singleton is None:
        _singleton = Registry()
    return _singleton


def active() -> Union[Registry, NullRegistry]:
    """The registry instrumented code should record into right now.

    The singleton (or an injected override) when enabled; the shared
    :data:`NULL_REGISTRY` when disabled.
    """
    return _active


def resolve(registry: Optional[Registry]
            ) -> Union[Registry, NullRegistry]:
    """*registry* if injected, else whatever :func:`active` returns.

    The one-line helper every instrumented component with an
    injectable registry uses.
    """
    return registry if registry is not None else _active


def enable(registry: Optional[Registry] = None) -> Registry:
    """Start collecting into *registry* (default: the singleton).

    Returns the now-active registry.
    """
    global _active
    _active = registry if registry is not None else get_registry()
    return _active


def disable() -> None:
    """Stop collecting; instrumented code reverts to the no-op path."""
    global _active
    _active = NULL_REGISTRY


def enabled() -> bool:
    """True while a real registry is actively collecting."""
    return _active is not NULL_REGISTRY


@contextmanager
def use_registry(registry: Optional[Registry] = None):
    """Temporarily collect into *registry* (a fresh one by default).

    Restores the previous enabled/disabled state on exit — the
    isolation primitive tests build on. Yields the registry.
    """
    global _active
    reg = registry if registry is not None else Registry()
    previous = _active
    _active = reg
    try:
        yield reg
    finally:
        _active = previous
