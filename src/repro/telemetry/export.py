"""Snapshot export: JSON and flat Prometheus-style text.

Both exporters take the plain-dict snapshot that
:meth:`~repro.telemetry.registry.Registry.to_dict` produces, so they
also work on merged or persisted snapshots.
"""

from __future__ import annotations

import json
import re

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: A label suffix in a registry metric name: ``name{key=value}``.
#: The worker pool uses this for per-worker gauges, e.g.
#: ``parallel.remote.worker.busy{worker=w0}``.
_LABEL_RE = re.compile(
    r"^(?P<base>[^{}]+)\{(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="
    r"(?P<value>[^{}=]*)\}$")


def split_labels(name: str):
    """``(base, labels_dict)`` for a possibly-labelled metric name.

    Registry metric names may carry a single ``{key=value}`` suffix
    (the registry itself treats the whole string as the name; only
    the exporters interpret it). Unlabelled names return an empty
    dict.

    >>> split_labels("parallel.remote.worker.busy{worker=w0}")
    ('parallel.remote.worker.busy', {'worker': 'w0'})
    >>> split_labels("cache.hits")
    ('cache.hits', {})
    """
    m = _LABEL_RE.match(name)
    if not m:
        return name, {}
    return m.group("base"), {m.group("key"): m.group("value")}


def _prom_series(prefix: str, name: str, suffix: str = "") -> tuple:
    """``(family, labelstr)`` for one snapshot entry.

    The family name (used for the ``# TYPE`` line) drops any label
    suffix; *labelstr* is the rendered ``{k="v"}`` block (empty for
    unlabelled names) to append after the full series name — which
    keeps sub-suffixes like a summary's ``_count`` ahead of the
    labels, as Prometheus requires.
    """
    base, labels = split_labels(name)
    family = f"{prefix}_{sanitize_metric_name(base)}{suffix}"
    if not labels:
        return family, ""
    rendered = ",".join(
        f'{sanitize_metric_name(k)}="{v}"'
        for k, v in sorted(labels.items()))
    return family, f"{{{rendered}}}"


def sanitize_metric_name(name: str) -> str:
    """Map a dotted/slashed metric name to Prometheus charset.

    Every character outside ``[a-zA-Z0-9_:]`` becomes an underscore.

    >>> sanitize_metric_name("vortex.steps")
    'vortex_steps'
    >>> sanitize_metric_name("session.qualify/testprogram.run")
    'session_qualify_testprogram_run'
    """
    return _NAME_RE.sub("_", name)


def snapshot_to_json(snapshot: dict, indent=None) -> str:
    """Serialize a snapshot dict as JSON (sorted keys, stable)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def snapshot_to_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Serialize a snapshot as Prometheus exposition text.

    Counters become ``<prefix>_<name>_total``, gauges
    ``<prefix>_<name>``, and each timer expands to ``_seconds_count``
    / ``_seconds_sum`` / ``_seconds_min`` / ``_seconds_max`` series.
    Metric names carrying a ``{key=value}`` label suffix (per-worker
    gauges from the distributed pool) render as labelled Prometheus
    series sharing one ``# TYPE`` line per family. Series are
    grouped by family (a family's ``# TYPE`` line followed by *all*
    its series — the text format forbids interleaving families,
    which naive sorted-full-name order would do whenever another
    name sorts between ``foo`` and ``foo{...}``), families in
    sorted order, so the export is deterministic for a given
    snapshot.
    """
    lines = []

    def families(section: dict, suffix: str = ""):
        """``(family, [(name, labelstr), ...])`` groups, sorted."""
        grouped: dict = {}
        for name in sorted(section):
            family, labels = _prom_series(prefix, name, suffix)
            grouped.setdefault(family, []).append((name, labels))
        return sorted(grouped.items())

    counters = snapshot.get("counters", {})
    for family, series in families(counters, "_total"):
        lines.append(f"# TYPE {family} counter")
        for name, labels in series:
            lines.append(f"{family}{labels} {counters[name]}")
    gauges = snapshot.get("gauges", {})
    for family, series in families(gauges):
        lines.append(f"# TYPE {family} gauge")
        for name, labels in series:
            lines.append(f"{family}{labels} {gauges[name]:g}")
    timers = snapshot.get("timers", {})
    for family, series in families(timers, "_seconds"):
        lines.append(f"# TYPE {family} summary")
        for name, labels in series:
            stats = timers[name]
            lines.extend([
                f"{family}_count{labels} {stats['count']}",
                f"{family}_sum{labels} {stats['total_s']:.9g}",
                f"{family}_min{labels} {stats['min_s']:.9g}",
                f"{family}_max{labels} {stats['max_s']:.9g}",
            ])
    return "\n".join(lines) + ("\n" if lines else "")
