"""Snapshot export: JSON and flat Prometheus-style text.

Both exporters take the plain-dict snapshot that
:meth:`~repro.telemetry.registry.Registry.to_dict` produces, so they
also work on merged or persisted snapshots.
"""

from __future__ import annotations

import json
import re

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Map a dotted/slashed metric name to Prometheus charset.

    Every character outside ``[a-zA-Z0-9_:]`` becomes an underscore.

    >>> sanitize_metric_name("vortex.steps")
    'vortex_steps'
    >>> sanitize_metric_name("session.qualify/testprogram.run")
    'session_qualify_testprogram_run'
    """
    return _NAME_RE.sub("_", name)


def snapshot_to_json(snapshot: dict, indent=None) -> str:
    """Serialize a snapshot dict as JSON (sorted keys, stable)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def snapshot_to_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Serialize a snapshot as Prometheus exposition text.

    Counters become ``<prefix>_<name>_total``, gauges
    ``<prefix>_<name>``, and each timer expands to ``_seconds_count``
    / ``_seconds_sum`` / ``_seconds_min`` / ``_seconds_max`` series.
    Lines are emitted in sorted-name order, so the export is
    deterministic for a given snapshot.
    """
    lines = []
    for name in sorted(snapshot.get("counters", {})):
        metric = f"{prefix}_{sanitize_metric_name(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {snapshot['counters'][name]}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {snapshot['gauges'][name]:g}")
    for name in sorted(snapshot.get("timers", {})):
        stats = snapshot["timers"][name]
        metric = f"{prefix}_{sanitize_metric_name(name)}_seconds"
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {stats['count']}")
        lines.append(f"{metric}_sum {stats['total_s']:.9g}")
        lines.append(f"{metric}_min {stats['min_s']:.9g}")
        lines.append(f"{metric}_max {stats['max_s']:.9g}")
    return "\n".join(lines) + ("\n" if lines else "")
