"""Metric registries and trace spans.

A :class:`Registry` owns a flat namespace of hierarchically *named*
(dotted) counters, gauges, and timers, plus a span stack that turns
nested ``with registry.span(...)`` blocks into slash-joined trace
paths ("session.qualify/testprogram.eye_qual_5G"). Registries merge
associatively, so per-worker registries can be combined into one
fleet view.

The :class:`NullRegistry` twin implements the same surface as
do-nothing singletons — the module-level disabled fast path.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.telemetry.instruments import (
    NULL_COUNTER, NULL_GAUGE, NULL_SPAN, NULL_TIMER,
    Counter, Gauge, NullSpan, Timer,
)


class Span:
    """One timed trace region, pushed onto the registry's span stack.

    On entry the span composes its full path from the enclosing
    spans ("outer/inner"); on exit it records the elapsed time into
    the registry timer of that path and increments the matching
    ``<path>.calls`` counter.
    """

    __slots__ = ("_registry", "name", "path", "_start")

    def __init__(self, registry: "Registry", name: str):
        self._registry = registry
        self.name = name
        self.path = ""
        self._start = 0.0

    def __enter__(self) -> "Span":
        self.path = self._registry._push_span(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        self._registry._pop_span()
        self._registry.timer(self.path).observe(elapsed)
        self._registry.counter(self.path + ".calls").inc()


class Registry:
    """A namespace of counters, gauges, timers, and trace spans.

    Instruments are created on first use and live for the registry's
    lifetime. Counter/gauge/timer updates are plain attribute writes
    (safe under the GIL); the span stack is thread-local so spans
    nest correctly per thread.
    """

    #: A real registry records; the null twin reports False so hot
    #: loops can skip tallying entirely.
    enabled = True

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}
        self._spans = threading.local()

    # -- instruments ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Fetch (creating on first use) the counter called *name*."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(self._check(name))
        return c

    def gauge(self, name: str) -> Gauge:
        """Fetch (creating on first use) the gauge called *name*."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(self._check(name))
        return g

    def timer(self, name: str) -> Timer:
        """Fetch (creating on first use) the timer called *name*."""
        t = self._timers.get(name)
        if t is None:
            t = self._timers[name] = Timer(self._check(name))
        return t

    @staticmethod
    def _check(name: str) -> str:
        if not name:
            raise ConfigurationError("metric name must be non-empty")
        return name

    # -- spans ------------------------------------------------------------

    def span(self, name: str) -> Span:
        """A context manager timing a named trace region.

        Nested spans compose slash-joined paths; each path gets its
        own timer plus a ``<path>.calls`` counter.
        """
        return Span(self, self._check(name))

    def current_span_path(self) -> str:
        """The active span path in this thread ("" outside spans)."""
        stack = getattr(self._spans, "stack", None)
        return stack[-1] if stack else ""

    def _push_span(self, name: str) -> str:
        stack = getattr(self._spans, "stack", None)
        if stack is None:
            stack = self._spans.stack = []
        path = f"{stack[-1]}/{name}" if stack else name
        stack.append(path)
        return path

    def _pop_span(self) -> None:
        self._spans.stack.pop()

    # -- snapshot / export ------------------------------------------------

    def to_dict(self) -> dict:
        """A plain-dict snapshot: counters, gauges, timer stats.

        The snapshot is detached (new containers, scalar values), so
        taking it never perturbs the registry — snapshots are
        idempotent.
        """
        return {
            "counters": {n: c.value
                         for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value
                       for n, g in sorted(self._gauges.items())},
            "timers": {n: t.as_dict()
                       for n, t in sorted(self._timers.items())},
        }

    def to_json(self, indent=None) -> str:
        """The snapshot as a JSON document."""
        from repro.telemetry.export import snapshot_to_json
        return snapshot_to_json(self.to_dict(), indent=indent)

    def to_prometheus(self, prefix: str = "repro") -> str:
        """The snapshot as flat Prometheus-style exposition text."""
        from repro.telemetry.export import snapshot_to_prometheus
        return snapshot_to_prometheus(self.to_dict(), prefix=prefix)

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "Registry":
        """Rebuild a registry from a :meth:`to_dict` snapshot.

        The inverse of :meth:`to_dict` up to timer mean (recomputed)
        — the bridge that lets worker processes ship their registries
        home as plain dicts for the parent to merge.
        """
        reg = cls()
        for n, v in snapshot.get("counters", {}).items():
            reg.counter(n).inc(v)
        for n, v in snapshot.get("gauges", {}).items():
            reg.gauge(n).set(v)
        for n, d in snapshot.get("timers", {}).items():
            t = reg.timer(n)
            t.count = int(d["count"])
            t.total_s = float(d["total_s"])
            if t.count:
                t.min_s = float(d["min_s"])
                t.max_s = float(d["max_s"])
        return reg

    # -- lifecycle --------------------------------------------------------

    def names(self) -> List[str]:
        """Every metric name in the registry, sorted."""
        return sorted(set(self._counters) | set(self._gauges)
                      | set(self._timers))

    def reset(self) -> None:
        """Drop every instrument (names included)."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()

    def merge(self, other: "Registry") -> "Registry":
        """A new registry combining this one with *other*.

        Counters sum; timers pool their statistics; gauges take
        *other*'s value where both define one (last-writer-wins).
        All three rules are associative, so any merge tree over a
        set of registries yields the same totals.

        Safe while producer threads keep recording into either
        source (instrument tables are snapshotted before iteration)
        and while either source has open spans — span stacks are
        per-thread runtime state, not merged data, so an in-flight
        span simply contributes nothing until it closes.
        """
        out = Registry()
        for n, c in list(self._counters.items()):
            out.counter(n).inc(c.value)
        for n, c in list(other._counters.items()):
            out.counter(n).inc(c.value)
        for n, g in list(self._gauges.items()):
            out.gauge(n).set(g.value)
        for n, g in list(other._gauges.items()):
            out.gauge(n).set(g.value)
        for src in (self._timers, other._timers):
            for n, t in list(src.items()):
                dst = out.timer(n)
                dst.count += t.count
                dst.total_s += t.total_s
                if t.count:
                    dst.min_s = min(dst.min_s, t.min_s)
                    dst.max_s = max(dst.max_s, t.max_s)
        return out

    def absorb(self, other: "Registry") -> "Registry":
        """Merge *other* into this registry in place; returns self.

        The mutating twin of :meth:`merge`, for sinking worker
        registries into a long-lived parent (the active session
        registry) without replacing it. Same associative rules.
        """
        for n, c in list(other._counters.items()):
            self.counter(n).inc(c.value)
        for n, g in list(other._gauges.items()):
            self.gauge(n).set(g.value)
        for n, t in list(other._timers.items()):
            dst = self.timer(n)
            dst.count += t.count
            dst.total_s += t.total_s
            if t.count:
                dst.min_s = min(dst.min_s, t.min_s)
                dst.max_s = max(dst.max_s, t.max_s)
        return self

    def __repr__(self) -> str:
        return (f"Registry({len(self._counters)} counters, "
                f"{len(self._gauges)} gauges, "
                f"{len(self._timers)} timers)")


class NullRegistry:
    """The disabled fast path: every lookup returns a shared no-op.

    Implements the full :class:`Registry` reading/writing surface;
    snapshots are empty and instruments discard their updates. A
    single module-level instance backs every disabled call site, so
    no per-call allocation happens.
    """

    enabled = False

    # Empty instrument tables, shared and read-only: Registry.merge
    # reads these, so a null registry merges as the identity.
    _counters: dict = {}
    _gauges: dict = {}
    _timers: dict = {}

    def counter(self, name: str) -> object:
        """The shared no-op counter."""
        return NULL_COUNTER

    def gauge(self, name: str) -> object:
        """The shared no-op gauge."""
        return NULL_GAUGE

    def timer(self, name: str) -> object:
        """The shared no-op timer."""
        return NULL_TIMER

    def span(self, name: str) -> NullSpan:
        """The shared no-op span context manager."""
        return NULL_SPAN

    def current_span_path(self) -> str:
        """Always "" — the null registry tracks nothing."""
        return ""

    def to_dict(self) -> dict:
        """An empty snapshot."""
        return {"counters": {}, "gauges": {}, "timers": {}}

    def to_json(self, indent=None) -> str:
        """An empty snapshot as JSON."""
        from repro.telemetry.export import snapshot_to_json
        return snapshot_to_json(self.to_dict(), indent=indent)

    def to_prometheus(self, prefix: str = "repro") -> str:
        """An empty exposition document."""
        from repro.telemetry.export import snapshot_to_prometheus
        return snapshot_to_prometheus(self.to_dict(), prefix=prefix)

    def names(self) -> List[str]:
        """Always empty."""
        return []

    def reset(self) -> None:
        """Nothing to drop."""

    def merge(self, other) -> Registry:
        """Merging with nothing copies *other* (the identity)."""
        return Registry().merge(other)

    def absorb(self, other) -> "NullRegistry":
        """Absorbing into the null registry discards *other*."""
        return self

    def __repr__(self) -> str:
        return "NullRegistry()"
