"""Configuration FLASH memory and power-up loading.

The DLC stores the FPGA's personalization data in FLASH, programmed
from a PC over IEEE 1149.1. "Once programmed, it loads the
personalization data to the FPGA upon power-up. The program can be
changed by overwriting the FLASH."
"""

from repro.flash.memory import FlashMemory
from repro.flash.config_loader import ConfigLoader, store_bitstream

__all__ = ["FlashMemory", "ConfigLoader", "store_bitstream"]
