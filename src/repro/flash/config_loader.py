"""Power-up FPGA configuration from FLASH.

On power-up the DLC's FLASH streams the stored bitstream into the
FPGA. This module implements both directions: storing a bitstream
image into FLASH (what JTAG programming ultimately does) and the
power-up load with integrity checking.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.flash.memory import FlashMemory

if TYPE_CHECKING:  # imported lazily at runtime: dlc imports flash
    from repro.dlc.fpga import FPGA, Bitstream

#: FLASH offset where the bitstream image lives.
CONFIG_BASE = 0x0000


def store_bitstream(flash: FlashMemory, bitstream: "Bitstream",
                    base: int = CONFIG_BASE) -> int:
    """Write a bitstream image into FLASH; returns bytes written."""
    image = bitstream.to_bytes()
    if base + len(image) > flash.size:
        raise ConfigurationError(
            f"bitstream of {len(image)} bytes does not fit in FLASH "
            f"at 0x{base:x}"
        )
    flash.overwrite(base, image)
    return len(image)


class ConfigLoader:
    """The configuration engine between FLASH and the FPGA."""

    def __init__(self, flash: FlashMemory, base: int = CONFIG_BASE):
        self.flash = flash
        self.base = int(base)

    def image_present(self) -> bool:
        """True if FLASH holds something that looks like an image."""
        return self.flash.read(self.base, 4) == b"RBIT"

    def load_bitstream(self) -> "Bitstream":
        """Parse the stored image (CRC-checked)."""
        from repro.dlc.fpga import Bitstream

        if not self.image_present():
            raise ConfigurationError(
                "no bitstream image in FLASH (device erased?)"
            )
        # Read generously; Bitstream.from_bytes takes what it needs.
        data = self.flash.read(self.base,
                               min(self.flash.size - self.base, 1 << 19))
        return Bitstream.from_bytes(data)

    def power_up(self, fpga: "FPGA") -> "Bitstream":
        """Perform the power-up configuration sequence."""
        bitstream = self.load_bitstream()
        fpga.configure(bitstream)
        return bitstream
