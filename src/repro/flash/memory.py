"""NOR-FLASH behavioral model with real erase/program semantics.

FLASH can only clear bits when programming (1 -> 0); setting a bit
back to 1 requires erasing the whole sector to 0xFF. The model
enforces this, which is what makes the "overwrite the FLASH to adapt
the DLC" flow in the paper a genuine erase-then-program sequence.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError, MemoryError_


class FlashMemory:
    """Sector-erasable FLASH.

    Parameters
    ----------
    size:
        Capacity in bytes.
    sector_size:
        Erase granularity in bytes.
    """

    def __init__(self, size: int = 1 << 20, sector_size: int = 4096):
        if size < 1:
            raise ConfigurationError(f"size must be >= 1, got {size}")
        if sector_size < 1 or size % sector_size != 0:
            raise ConfigurationError(
                f"sector size {sector_size} must divide capacity {size}"
            )
        self.size = int(size)
        self.sector_size = int(sector_size)
        self._data = np.full(size, 0xFF, dtype=np.uint8)
        self.program_cycles = 0
        self.erase_cycles = 0

    @property
    def n_sectors(self) -> int:
        """Number of erase sectors."""
        return self.size // self.sector_size

    def _check_range(self, address: int, length: int) -> None:
        if address < 0 or length < 0 or address + length > self.size:
            raise MemoryError_(
                f"range [0x{address:x}, 0x{address + length:x}) outside "
                f"device of 0x{self.size:x} bytes"
            )

    def read(self, address: int, length: int) -> bytes:
        """Read *length* bytes."""
        self._check_range(address, length)
        return bytes(self._data[address:address + length])

    def erase_sector(self, sector: int) -> None:
        """Erase one sector to 0xFF."""
        if not 0 <= sector < self.n_sectors:
            raise MemoryError_(
                f"sector {sector} out of range [0, {self.n_sectors})"
            )
        start = sector * self.sector_size
        self._data[start:start + self.sector_size] = 0xFF
        self.erase_cycles += 1

    def erase_range(self, address: int, length: int) -> None:
        """Erase every sector overlapping [address, address+length)."""
        self._check_range(address, length)
        if length == 0:
            return
        first = address // self.sector_size
        last = (address + length - 1) // self.sector_size
        for s in range(first, last + 1):
            self.erase_sector(s)

    def program(self, address: int, data: Iterable[int]) -> None:
        """Program bytes at *address*; can only clear bits (1 -> 0).

        Attempting to set a 0 bit back to 1 raises
        :class:`MemoryError_` — erase the sector first.
        """
        data = bytes(data)
        self._check_range(address, len(data))
        current = self._data[address:address + len(data)]
        new = np.frombuffer(data, dtype=np.uint8)
        # A program may only clear bits: new must be a subset of
        # current's set bits, i.e. (current | new) == current... no:
        # programming ANDs the cells, so the *result* is current & new.
        # It matches the intent only if new has no bit set where
        # current has it cleared.
        illegal = (new & ~current) != 0
        if np.any(illegal):
            bad = address + int(np.flatnonzero(illegal)[0])
            raise MemoryError_(
                f"program at 0x{bad:x} tries to set a cleared bit; "
                "erase the sector first"
            )
        self._data[address:address + len(data)] = current & new
        self.program_cycles += 1

    def overwrite(self, address: int, data: bytes) -> None:
        """Erase-then-program convenience for whole-image updates.

        Erases every sector the write touches, then programs. Other
        data sharing those sectors is lost — exactly as on hardware.
        """
        self.erase_range(address, len(data))
        self.program(address, data)

    def is_erased(self, address: int, length: int) -> bool:
        """True if the whole range reads 0xFF."""
        self._check_range(address, length)
        return bool(np.all(self._data[address:address + length] == 0xFF))
