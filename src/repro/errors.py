"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so callers
can catch everything from this package with a single except clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or illegal settings."""


class RateLimitError(ConfigurationError):
    """A signal was driven faster than the component's rate ceiling."""


class CalibrationError(ReproError):
    """A calibration procedure failed to converge or was out of range."""


class ProtocolError(ReproError):
    """A communication protocol (USB, JTAG) was violated."""


class MemoryError_(ReproError):
    """An illegal memory operation (e.g. programming unerased FLASH)."""


class FabricError(ReproError):
    """A Data Vortex fabric invariant was violated."""


class ProbeError(ReproError):
    """A wafer-probing operation failed (no contact, bad site, ...)."""


class MeasurementError(ReproError):
    """A measurement could not be made (empty eye, no transitions, ...)."""
