"""The content-addressed artifact cache.

:class:`ArtifactCache` memoizes expensive stage outputs (PRBS
bitstreams, rendered waveforms, channel convolutions, folded eyes)
under canonical digests of their producing configuration. Entries
live in a bounded in-memory LRU; an optional on-disk backing store
extends hits across processes — writes are atomic
(temp-file + ``os.replace``), so concurrent readers in
``repro.parallel`` process workers only ever see complete entries.

Mutable values (numpy arrays) are copied both into and out of the
store, so a hit can never alias state a caller later mutates;
:class:`~repro.signal.waveform.Waveform` instances are externally
immutable and pass through uncopied (zero-copy hits).
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Optional, Tuple

from repro import telemetry
from repro.errors import ConfigurationError

#: Sentinel distinguishing "no entry" from a cached ``None``.
_MISSING = object()


def _sizeof(value) -> int:
    """Approximate retained bytes of one cached value."""
    import numpy as np

    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (tuple, list)):
        return sum(_sizeof(v) for v in value) + 16 * len(value)
    if isinstance(value, dict):
        return sum(_sizeof(k) + _sizeof(v)
                   for k, v in value.items()) + 32 * len(value)
    if isinstance(value, (bytes, bytearray, str)):
        return len(value)
    if hasattr(value, "values") and hasattr(value, "dt"):
        # Waveform-shaped: dominated by its sample array.
        try:
            return int(value.values.nbytes) + 64
        except AttributeError:
            pass
    return 64


def _copy_out(value):
    """A mutation-safe version of *value* to hand to a caller.

    Arrays are copied; containers recurse; everything else (scalars,
    strings, externally immutable objects like ``Waveform``) passes
    through.
    """
    import numpy as np

    if isinstance(value, np.ndarray):
        return value.copy()
    if isinstance(value, tuple):
        return tuple(_copy_out(v) for v in value)
    if isinstance(value, list):
        return [_copy_out(v) for v in value]
    if isinstance(value, dict):
        return {k: _copy_out(v) for k, v in value.items()}
    return value


class ArtifactCache:
    """Bounded content-addressed memoization store.

    Parameters
    ----------
    max_entries:
        In-memory entry cap; least-recently-used entries evict first.
    max_bytes:
        In-memory retained-size cap (approximate, array-dominated).
    disk_path:
        Optional directory for a persistent backing store shared
        across processes. Misses fall through to disk before
        computing; computed entries are written back atomically, so
        ``repro.parallel`` process shards warm each other's caches.
    registry:
        Optional injected telemetry registry; defaults to the
        module-level active one. Traffic is observable as
        ``cache.{hits,misses,evictions,stores}`` counters and the
        ``cache.bytes`` gauge.
    """

    #: A real cache memoizes; the :class:`NullCache` twin reports
    #: False so stages skip key construction entirely.
    enabled = True

    def __init__(self, max_entries: int = 512,
                 max_bytes: int = 256 * 1024 * 1024,
                 disk_path=None, registry=None):
        if max_entries < 1:
            raise ConfigurationError(
                f"need >= 1 entry, got {max_entries}"
            )
        if max_bytes < 1:
            raise ConfigurationError(
                f"need a positive byte budget, got {max_bytes}"
            )
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self.disk_path = Path(disk_path) if disk_path is not None \
            else None
        if self.disk_path is not None:
            self.disk_path.mkdir(parents=True, exist_ok=True)
        self.telemetry = registry
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stores = 0
        self._entries: "OrderedDict[str, Tuple[Any, int]]" \
            = OrderedDict()
        self._nbytes = 0
        self._lock = threading.RLock()

    # -- pickling (process-backend workers) ----------------------------

    def __getstate__(self):
        # Workers get the *configuration*, not the contents: an
        # empty same-shaped cache whose disk path (when set) still
        # points at the shared store. Injected registries are
        # per-process state and do not travel.
        return {
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "disk_path": str(self.disk_path)
            if self.disk_path is not None else None,
        }

    def __setstate__(self, state):
        self.__init__(max_entries=state["max_entries"],
                      max_bytes=state["max_bytes"],
                      disk_path=state["disk_path"])

    # -- core ----------------------------------------------------------

    def get(self, key: str):
        """``(hit, value)`` for *key*; checks memory, then disk."""
        tel = telemetry.resolve(self.telemetry)
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is not _MISSING:
                self._entries.move_to_end(key)
                self.hits += 1
                tel.counter("cache.hits").inc()
                return True, _copy_out(value[0])
        if self.disk_path is not None:
            value = self._disk_read(key)
            if value is not _MISSING:
                self._insert(key, value)
                self.hits += 1
                tel.counter("cache.hits").inc()
                return True, _copy_out(value)
        self.misses += 1
        tel.counter("cache.misses").inc()
        return False, None

    def put(self, key: str, value) -> None:
        """Store *value* under *key* (memory and, if set, disk)."""
        value = _copy_out(value)  # detach from the caller
        self._insert(key, value)
        if self.disk_path is not None:
            self._disk_write(key, value)
        tel = telemetry.resolve(self.telemetry)
        self.stores += 1
        tel.counter("cache.stores").inc()

    def get_or_compute(self, key: str, compute: Callable[[], Any]):
        """Return the cached value for *key*, computing it on miss.

        The compute callable runs outside the cache lock, so
        concurrent thread shards memoize without serializing their
        actual work; a racing duplicate compute is benign (both
        produce the identical artifact, last write wins).
        """
        hit, value = self.get(key)
        if hit:
            return value
        value = compute()
        self.put(key, value)
        return value

    # -- bookkeeping ---------------------------------------------------

    def _insert(self, key: str, value) -> None:
        size = _sizeof(value)
        tel = telemetry.resolve(self.telemetry)
        with self._lock:
            old = self._entries.pop(key, _MISSING)
            if old is not _MISSING:
                self._nbytes -= old[1]
            self._entries[key] = (value, size)
            self._nbytes += size
            while self._entries and (
                    len(self._entries) > self.max_entries
                    or self._nbytes > self.max_bytes):
                if len(self._entries) == 1 \
                        and self._nbytes <= self.max_bytes:
                    break
                _, (_, dropped) = self._entries.popitem(last=False)
                self._nbytes -= dropped
                self.evictions += 1
                tel.counter("cache.evictions").inc()
            tel.gauge("cache.bytes").set(self._nbytes)

    # -- disk backing --------------------------------------------------

    def _disk_file(self, key: str) -> Path:
        return self.disk_path / f"{key}.pkl"

    def _disk_read(self, key: str):
        try:
            with open(self._disk_file(key), "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError,
                AttributeError, ImportError):
            return _MISSING

    def _disk_write(self, key: str, value) -> None:
        # Atomic publish: a reader either sees the complete file or
        # no file, never a partial write.
        try:
            fd, tmp = tempfile.mkstemp(dir=self.disk_path,
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self._disk_file(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PickleError):
            pass  # a full disk degrades to memory-only caching

    # -- introspection -------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Approximate retained in-memory size."""
        return self._nbytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def clear(self) -> None:
        """Drop every in-memory entry (disk files are kept)."""
        with self._lock:
            self._entries.clear()
            self._nbytes = 0
            telemetry.resolve(self.telemetry) \
                .gauge("cache.bytes").set(0)

    def stats(self) -> dict:
        """Plain-dict counters snapshot."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stores": self.stores,
            "entries": len(self._entries),
            "bytes": self._nbytes,
        }

    def __repr__(self) -> str:
        disk = f", disk={self.disk_path}" if self.disk_path else ""
        return (f"ArtifactCache({len(self._entries)} entries, "
                f"{self._nbytes} bytes, {self.hits} hits, "
                f"{self.misses} misses{disk})")


class NullCache:
    """The disabled fast path: never stores, computes every time.

    Shares the :class:`ArtifactCache` surface so stages write one
    code path; ``enabled`` is False so they can skip even building
    the key.
    """

    enabled = False

    hits = 0
    misses = 0
    evictions = 0
    stores = 0
    nbytes = 0

    def get(self, key: str):
        """Always a miss."""
        return False, None

    def put(self, key: str, value) -> None:
        """Discard."""

    def get_or_compute(self, key: str, compute: Callable[[], Any]):
        """Compute directly; nothing is stored."""
        return compute()

    def clear(self) -> None:
        """Nothing to drop."""

    def stats(self) -> dict:
        """All-zero counters."""
        return {"hits": 0, "misses": 0, "evictions": 0,
                "stores": 0, "entries": 0, "bytes": 0}

    def __len__(self) -> int:
        return 0

    def __contains__(self, key: str) -> bool:
        return False

    def __repr__(self) -> str:
        return "NullCache()"
