"""repro.cache — content-addressed memoization of stage artifacts.

Sweeps (shmoo plots, BER characterization, wafer sort) re-run almost
identical simulation pipelines point after point: the same PRBS
stream, the same rendered waveform, the same channel convolution,
with only a threshold or sampling phase moved. This subsystem caches
those stage outputs under canonical digests of their *producing
configuration*, so a warm sweep pays only for the stages that
actually changed.

Usage
-----
Opt-in per call or per component::

    from repro.cache import ArtifactCache
    from repro.signal.prbs import prbs_bits

    cache = ArtifactCache(max_bytes=64 << 20)
    bits = prbs_bits(7, 4000, cache=cache)     # computes + stores
    bits = prbs_bits(7, 4000, cache=cache)     # hit

Scoped activation (every cache-aware stage underneath resolves it)::

    from repro import cache as artifact_cache

    with artifact_cache.use_cache(cache):
        runner.run(rates, swings)              # warm across cells

Sharing across ``repro.parallel`` process shards: give the cache a
``disk_path`` — workers receive an empty clone pointing at the same
directory and read each other's atomically-published entries.

Cache traffic is observable through ``repro.telemetry`` as
``cache.{hits,misses,evictions,stores}`` counters plus the
``cache.bytes`` gauge, and locally via :meth:`ArtifactCache.stats`.

Correctness contract: a cached pipeline is *bit-identical* to the
uncached one — stages only consult the cache when their inputs fully
determine their output (e.g. ``NRZEncoder.encode`` bypasses it when
a jitter model would draw from a caller-supplied RNG).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Union

from repro.cache.artifact import ArtifactCache, NullCache
from repro.cache.keys import DIGEST_SIZE, array_digest, canonical_digest
from repro.cache.remote import RemoteCacheTier

__all__ = [
    "ArtifactCache", "NullCache", "NULL_CACHE", "RemoteCacheTier",
    "canonical_digest", "array_digest", "DIGEST_SIZE",
    "active", "resolve", "enable", "disable", "enabled", "use_cache",
]

#: The shared disabled-path cache; `active()` returns it whenever
#: caching is off.
NULL_CACHE = NullCache()

_active: Union[ArtifactCache, NullCache] = NULL_CACHE


def active() -> Union[ArtifactCache, NullCache]:
    """The cache stage code should consult right now.

    An activated :class:`ArtifactCache` when caching is on; the
    shared :data:`NULL_CACHE` otherwise.
    """
    return _active


def resolve(cache: Optional[ArtifactCache]
            ) -> Union[ArtifactCache, NullCache]:
    """*cache* if injected, else whatever :func:`active` returns.

    The one-line helper every cache-aware stage with an injectable
    ``cache=`` argument uses (mirroring ``telemetry.resolve``).
    """
    return cache if cache is not None else _active


def enable(cache: Optional[ArtifactCache] = None) -> ArtifactCache:
    """Activate *cache* (a fresh default-sized one if omitted).

    Returns the now-active cache.
    """
    global _active
    _active = cache if cache is not None else ArtifactCache()
    return _active


def disable() -> None:
    """Deactivate; stages revert to the compute-every-time path."""
    global _active
    _active = NULL_CACHE


def enabled() -> bool:
    """True while a real cache is active."""
    return _active is not NULL_CACHE


@contextmanager
def use_cache(cache: Optional[ArtifactCache] = None):
    """Temporarily activate *cache* (a fresh one by default).

    Restores the previous state on exit; yields the cache. The
    scoping primitive ``TestProgram`` and ``ShmooRunner`` build on.
    """
    global _active
    c = cache if cache is not None else ArtifactCache()
    previous = _active
    _active = c
    try:
        yield c
    finally:
        _active = previous
