"""The shared cross-host cache tier: read through to the master.

A :class:`RemoteCacheTier` gives a remote executor worker the full
:class:`~repro.cache.artifact.ArtifactCache` surface while layering
two stores: a small private in-memory LRU (so a shard that reuses
an artifact hundreds of times pays one fetch), and the pool
master's cache reached over the worker's wire connection (so the
first worker to compute an artifact warms every other worker on
every host). Lookup order is local memory, then the master, then
compute — and computed values publish back to the master, which
already has the atomic disk backing for cross-run persistence.

The tier is transport-agnostic: it takes two callables,
``fetch(key) -> (hit, value)`` and ``publish(key, value)``, which
:class:`repro.service.worker.WorkerSession` binds to
``cache_get``/``cache_put`` frames. Any failure on the wire
degrades to a local miss — a flaky master link slows a worker down,
never breaks it.

Stage-level counters keep their meaning: ``cache.{hits,misses,
stores}`` reflect the *tier* outcome (the inner LRU is silenced),
while ``cache.remote.{local_hits,hits,misses,puts}`` break out
where each hit came from. Both ride home to the master in the
per-chunk telemetry snapshot, so a merged registry counts
read-through traffic from every worker.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from repro import telemetry
from repro.cache.artifact import ArtifactCache
from repro.telemetry.registry import NullRegistry

#: Default size of the worker-local front LRU.
LOCAL_ENTRIES = 256
LOCAL_BYTES = 64 * 1024 * 1024

#: Registry injected into the inner LRU so its bookkeeping does not
#: double-count the tier's own hit/miss telemetry.
_SILENT = NullRegistry()


class RemoteCacheTier:
    """Worker-side cache: local LRU over the master's shared store.

    Parameters
    ----------
    fetch:
        ``fetch(key) -> (hit, value)`` — one read-through round
        trip to the master (must degrade to a miss on failure).
    publish:
        ``publish(key, value)`` — fire-and-forget upload of a
        computed artifact.
    local:
        Optional pre-built front cache; defaults to a private
        in-memory :class:`ArtifactCache` (no disk backing — the
        master owns the disk tier).
    registry:
        Optional injected telemetry registry; defaults to the
        active one at call time, so counts recorded inside a
        chunk's collection scope ride home in its snapshot.
    """

    #: Stages consult this before building keys, like the real cache.
    enabled = True

    def __init__(self, fetch: Callable[[str], Tuple[bool, Any]],
                 publish: Callable[[str, Any], None],
                 local: Optional[ArtifactCache] = None,
                 registry=None):
        self._fetch = fetch
        self._publish = publish
        self._local = local if local is not None else ArtifactCache(
            max_entries=LOCAL_ENTRIES, max_bytes=LOCAL_BYTES,
            registry=_SILENT)
        self.telemetry = registry
        self.local_hits = 0
        self.remote_hits = 0
        self.misses = 0
        self.puts = 0

    # -- ArtifactCache surface ------------------------------------------

    def get(self, key: str):
        """``(hit, value)``: local memory, then the master's store."""
        tel = telemetry.resolve(self.telemetry)
        hit, value = self._local.get(key)
        if hit:
            self.local_hits += 1
            tel.counter("cache.hits").inc()
            tel.counter("cache.remote.local_hits").inc()
            return True, value
        hit, value = self._fetch(key)
        if hit:
            # Keep a private copy so the next probe is local.
            self._local.put(key, value)
            self.remote_hits += 1
            tel.counter("cache.hits").inc()
            tel.counter("cache.remote.hits").inc()
            return True, value
        self.misses += 1
        tel.counter("cache.misses").inc()
        tel.counter("cache.remote.misses").inc()
        return False, None

    def put(self, key: str, value) -> None:
        """Store locally and publish to the master's shared store."""
        tel = telemetry.resolve(self.telemetry)
        self._local.put(key, value)
        self._publish(key, value)
        self.puts += 1
        tel.counter("cache.stores").inc()
        tel.counter("cache.remote.puts").inc()

    def get_or_compute(self, key: str, compute: Callable[[], Any]):
        """Cached value for *key*, computing (and publishing) on
        miss."""
        hit, value = self.get(key)
        if hit:
            return value
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop the local front (the master's store is untouched)."""
        self._local.clear()

    def stats(self) -> dict:
        """Tier traffic counters (plain dict)."""
        return {
            "local_hits": self.local_hits,
            "remote_hits": self.remote_hits,
            "hits": self.local_hits + self.remote_hits,
            "misses": self.misses,
            "puts": self.puts,
            "local_entries": len(self._local),
        }

    def __len__(self) -> int:
        return len(self._local)

    def __contains__(self, key: str) -> bool:
        return key in self._local

    def __repr__(self) -> str:
        return (f"RemoteCacheTier({self.local_hits} local hits, "
                f"{self.remote_hits} remote hits, "
                f"{self.misses} misses)")
