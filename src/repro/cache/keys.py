"""Canonical cache-key digests.

A cache key must be *content-addressed*: two configurations that
would produce the same artifact digest identically, and any field
change — however small — produces a different key. The digest walks
a type-tagged canonical serialization (so ``1`` and ``1.0`` and
``"1"`` never collide) over the common configuration value types:
scalars, strings, enums, numpy arrays, dataclasses, and objects
implementing the ``cache_key()`` protocol.
"""

from __future__ import annotations

import dataclasses
import enum
import struct
from hashlib import blake2b

import numpy as np

from repro.errors import ConfigurationError

#: Digest size in bytes; 20 bytes (160 bits) keeps accidental
#: collisions out of reach while staying filename-friendly.
DIGEST_SIZE = 20


def _update(h, obj) -> None:
    """Feed one value into the hash with an unambiguous type tag."""
    if obj is None:
        h.update(b"N;")
    elif isinstance(obj, bool):
        h.update(b"b1;" if obj else b"b0;")
    elif isinstance(obj, (int, np.integer)):
        h.update(b"i" + str(int(obj)).encode() + b";")
    elif isinstance(obj, (float, np.floating)):
        h.update(b"f" + struct.pack("<d", float(obj)) + b";")
    elif isinstance(obj, str):
        raw = obj.encode()
        h.update(b"s" + str(len(raw)).encode() + b":" + raw + b";")
    elif isinstance(obj, bytes):
        h.update(b"y" + str(len(obj)).encode() + b":" + obj + b";")
    elif isinstance(obj, enum.Enum):
        h.update(b"e" + type(obj).__name__.encode() + b".")
        _update(h, obj.value)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(b"a" + arr.dtype.str.encode()
                 + str(arr.shape).encode() + b":")
        h.update(arr.tobytes())
        h.update(b";")
    elif hasattr(obj, "cache_key") and callable(obj.cache_key):
        h.update(b"k")
        _update(h, obj.cache_key())
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        h.update(b"d" + type(obj).__name__.encode() + b"{")
        for field in dataclasses.fields(obj):
            _update(h, field.name)
            _update(h, getattr(obj, field.name))
        h.update(b"}")
    elif isinstance(obj, (list, tuple)):
        tag = b"l" if isinstance(obj, list) else b"t"
        h.update(tag + str(len(obj)).encode() + b"[")
        for item in obj:
            _update(h, item)
        h.update(b"]")
    elif isinstance(obj, dict):
        h.update(b"m" + str(len(obj)).encode() + b"{")
        for key in sorted(obj):
            _update(h, key)
            _update(h, obj[key])
        h.update(b"}")
    else:
        raise ConfigurationError(
            f"cannot canonicalize {type(obj).__name__!r} into a "
            f"cache key; give it a cache_key() method"
        )


def canonical_digest(*parts) -> str:
    """Hex digest of *parts* under the canonical serialization.

    The one key-building entry point: every cached stage composes
    its key as ``canonical_digest("stage.name", config..., inputs...)``.

    >>> canonical_digest("prbs", 7, 100, 1) == \\
    ...     canonical_digest("prbs", 7, 100, 1)
    True
    >>> canonical_digest("prbs", 7, 100, 1) == \\
    ...     canonical_digest("prbs", 7, 100, 2)
    False
    """
    h = blake2b(digest_size=DIGEST_SIZE)
    for part in parts:
        _update(h, part)
    return h.hexdigest()


def array_digest(values: np.ndarray) -> str:
    """Digest of one array's dtype, shape, and raw contents.

    The content-addressing primitive for artifacts (waveform sample
    records) whose producing configuration is unknown.
    """
    return canonical_digest(np.asarray(values))
