"""Board-interconnect testing over boundary scan.

The classic 1149.1 application: with every chip's pins under scan
control, board wiring is tested with no functional operation —
EXTEST drives patterns out of one device's outputs, SAMPLE captures
them at the far end, and opens/shorts show up as mismatches. The
DLC's board (FPGA, FLASH, microcontroller on one chain) is exactly
the kind of board this flow validates after assembly.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.jtag.boundary import PinState


@dataclasses.dataclass(frozen=True)
class Net:
    """One board wire.

    Attributes
    ----------
    name:
        Net label.
    driver:
        (pin_state, pin) sourcing the net.
    receiver:
        (pin_state, pin) at the far end.
    """

    name: str
    driver: Tuple[PinState, str]
    receiver: Tuple[PinState, str]


class Board:
    """Nets between pin stores, with injectable wiring faults."""

    def __init__(self, nets: List[Net]):
        if not nets:
            raise ConfigurationError("board needs >= 1 net")
        names = [n.name for n in nets]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate net names")
        self.nets = list(nets)
        self._opens: set = set()
        self._shorts: List[Tuple[str, str]] = []

    def inject_open(self, net_name: str) -> None:
        """Break one net (a cracked trace / cold joint)."""
        if net_name not in {n.name for n in self.nets}:
            raise ConfigurationError(f"no net {net_name!r}")
        self._opens.add(net_name)

    def inject_short(self, net_a: str, net_b: str) -> None:
        """Short two nets together (a solder bridge)."""
        names = {n.name for n in self.nets}
        if net_a not in names or net_b not in names:
            raise ConfigurationError("short names unknown nets")
        if net_a == net_b:
            raise ConfigurationError("a net cannot short to itself")
        self._shorts.append((net_a, net_b))

    def propagate(self) -> None:
        """Carry each driver's value to its receiver.

        Opens leave the receiver floating (reads 0); shorted nets
        wire-AND (the usual model for totem-pole contention).
        """
        values: Dict[str, int] = {}
        for net in self.nets:
            state, pin = net.driver
            values[net.name] = state.read(pin)
        for a, b in self._shorts:
            wired = values[a] & values[b]
            values[a] = wired
            values[b] = wired
        for net in self.nets:
            state, pin = net.receiver
            if net.name in self._opens:
                state.drive(pin, 0)
            else:
                state.drive(pin, values[net.name])


@dataclasses.dataclass(frozen=True)
class InterconnectResult:
    """Outcome of one interconnect test.

    Attributes
    ----------
    failing_nets:
        Nets whose received pattern mismatched.
    vectors_applied:
        Test vectors used.
    """

    failing_nets: Tuple[str, ...]
    vectors_applied: int

    @property
    def passed(self) -> bool:
        """True with no failing nets."""
        return not self.failing_nets


def counting_vectors(n_nets: int) -> List[List[int]]:
    """The modified counting sequence: each net gets a unique
    bit-pattern across the vectors, so every open and every pairwise
    short is distinguishable with ceil(log2(n))+2 vectors."""
    if n_nets < 1:
        raise ConfigurationError("need >= 1 net")
    width = max(1, math.ceil(math.log2(n_nets + 1)))
    vectors = []
    for bit in range(width):
        vectors.append([(k + 1 >> bit) & 1 for k in range(n_nets)])
    # All-zeros and all-ones guard vectors catch stuck nets.
    vectors.append([0] * n_nets)
    vectors.append([1] * n_nets)
    return vectors


def run_interconnect_test(board: Board) -> InterconnectResult:
    """Drive the counting sequence and compare at the receivers.

    In hardware this is EXTEST scans; the model drives the pin
    stores directly (the scan plumbing is exercised in the boundary
    tests) and propagates the board after each vector.
    """
    n = len(board.nets)
    vectors = counting_vectors(n)
    failing = set()
    for vector in vectors:
        for net, value in zip(board.nets, vector):
            state, pin = net.driver
            state.drive(pin, value)
        board.propagate()
        for net, expected in zip(board.nets, vector):
            state, pin = net.receiver
            if state.read(pin) != expected:
                failing.add(net.name)
    return InterconnectResult(
        failing_nets=tuple(sorted(failing)),
        vectors_applied=len(vectors),
    )
