"""Scan chain: devices in series on TDI -> TDO.

Implements real shift semantics: IR scans shift every device's
instruction register in series; DR scans shift whatever register
each device's current instruction selects, so talking to one device
means putting the others in BYPASS and padding the shifted vector.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import ProtocolError
from repro.jtag.instructions import Instruction, INSTRUCTION_WIDTH
from repro.jtag.tap import TAPController, TAPState


class JTAGDevice:
    """One device on the chain.

    Parameters
    ----------
    name:
        Diagnostic label.
    idcode:
        32-bit IDCODE (LSB must be 1 per the standard).
    dr_handler:
        Optional callback ``f(instruction, update_value) -> capture``
        implementing the device's private data registers. The return
        value is captured on the *next* DR scan of that instruction.
    """

    def __init__(self, name: str, idcode: int,
                 dr_handler: Optional[
                     Callable[[Instruction, int], int]] = None):
        if idcode & 1 == 0:
            raise ProtocolError(
                "IDCODE LSB must be 1 (IEEE 1149.1 marker bit)"
            )
        self.name = name
        self.idcode = int(idcode)
        self.tap = TAPController()
        self.instruction = Instruction.IDCODE  # after reset
        self._ir_shift = 0
        self._dr_shift = 0
        self._dr_capture_next: Dict[Instruction, int] = {}
        self.dr_handler = dr_handler

    def reset(self) -> None:
        """TAP reset: IDCODE becomes the selected instruction."""
        self.tap.reset()
        self.instruction = Instruction.IDCODE

    # -- shift plumbing (driven by the chain) ----------------------------

    def capture_ir(self) -> None:
        """Load the IR shift stage (standard requires ...01 LSBs)."""
        self._ir_shift = 0b01

    def shift_ir(self, tdi: int) -> int:
        """One IR shift clock; returns this device's TDO bit."""
        tdo = self._ir_shift & 1
        self._ir_shift = (self._ir_shift >> 1) \
            | ((tdi & 1) << (INSTRUCTION_WIDTH - 1))
        return tdo

    def update_ir(self) -> None:
        """Latch the shifted instruction."""
        try:
            self.instruction = Instruction(self._ir_shift
                                           & ((1 << INSTRUCTION_WIDTH) - 1))
        except ValueError:
            self.instruction = Instruction.BYPASS

    def capture_dr(self) -> None:
        """Load the selected data register's capture value."""
        if self.instruction is Instruction.IDCODE:
            self._dr_shift = self.idcode
        elif self.instruction is Instruction.BYPASS:
            self._dr_shift = 0
        else:
            self._dr_shift = self._dr_capture_next.get(self.instruction, 0)

    def shift_dr(self, tdi: int) -> int:
        """One DR shift clock; returns this device's TDO bit."""
        width = self.instruction.dr_width
        tdo = self._dr_shift & 1
        self._dr_shift = (self._dr_shift >> 1) | ((tdi & 1) << (width - 1))
        return tdo

    def update_dr(self) -> None:
        """Latch the shifted value into the selected register."""
        width = self.instruction.dr_width
        value = self._dr_shift & ((1 << width) - 1)
        if self.dr_handler is not None:
            capture = self.dr_handler(self.instruction, value)
            if capture is not None:
                self._dr_capture_next[self.instruction] = capture


class ScanChain:
    """Devices in TDI -> TDO series, plus the shift helpers."""

    def __init__(self, devices: List[JTAGDevice]):
        if not devices:
            raise ProtocolError("scan chain needs >= 1 device")
        self.devices = list(devices)

    def __len__(self) -> int:
        return len(self.devices)

    def reset(self) -> None:
        """Reset every TAP on the chain."""
        for dev in self.devices:
            dev.reset()

    def _shift_vector(self, bits: List[int], kind: str) -> List[int]:
        """Shift a bit vector (LSB first) through the whole chain."""
        out = []
        for tdi in bits:
            bit = tdi
            # TDI enters the first device; its TDO feeds the next.
            for dev in self.devices:
                if kind == "ir":
                    bit = dev.shift_ir(bit)
                else:
                    bit = dev.shift_dr(bit)
            out.append(bit)
        return out

    def load_instructions(self,
                          instructions: List[Instruction]) -> None:
        """IR scan: one instruction per device (first = nearest TDI)."""
        if len(instructions) != len(self.devices):
            raise ProtocolError(
                f"need {len(self.devices)} instructions, got "
                f"{len(instructions)}"
            )
        for dev in self.devices:
            dev.tap.navigate(TAPState.SHIFT_IR)
            dev.capture_ir()
        # Build the LSB-first vector: the device nearest TDO gets its
        # bits out first, so the *last* device's opcode shifts first.
        bits: List[int] = []
        for instr in reversed(instructions):
            for k in range(INSTRUCTION_WIDTH):
                bits.append((instr.value >> k) & 1)
        self._shift_vector(bits, "ir")
        for dev in self.devices:
            dev.update_ir()
            dev.tap.navigate(TAPState.RUN_TEST_IDLE)

    def scan_dr(self, values: List[int]) -> List[int]:
        """DR scan: shift one value per device; returns captures.

        Each device shifts its selected register's width.
        """
        if len(values) != len(self.devices):
            raise ProtocolError(
                f"need {len(self.devices)} values, got {len(values)}"
            )
        for dev in self.devices:
            dev.tap.navigate(TAPState.SHIFT_DR)
            dev.capture_dr()
        bits: List[int] = []
        for dev, value in zip(reversed(self.devices),
                              reversed(values)):
            width = dev.instruction.dr_width
            for k in range(width):
                bits.append((int(value) >> k) & 1)
        out_bits = self._shift_vector(bits, "dr")
        # Captured data comes out in the same layout the input went in.
        captures: List[int] = []
        pos = 0
        for dev in reversed(self.devices):
            width = dev.instruction.dr_width
            value = 0
            for k in range(width):
                value |= (out_bits[pos + k] & 1) << k
            captures.append(value)
            pos += width
        captures.reverse()
        for dev in self.devices:
            dev.update_dr()
            dev.tap.navigate(TAPState.RUN_TEST_IDLE)
        return captures

    def read_idcodes(self) -> List[int]:
        """Reset and read every device's IDCODE."""
        self.reset()
        return self.scan_dr([0] * len(self.devices))
