"""Boundary-scan register: SAMPLE and EXTEST.

The part of IEEE 1149.1 the FLASH path doesn't use: a register with
one cell per pin, able to *sample* the pins' live values and — under
EXTEST — *drive* the pins from scanned-in data. This is what makes
board-level interconnect testing possible with no functional
operation at all.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.jtag.chain import JTAGDevice
from repro.jtag.instructions import Instruction


class CellDirection(enum.Enum):
    """Pin direction of one boundary cell."""

    INPUT = "input"
    OUTPUT = "output"


@dataclasses.dataclass(frozen=True)
class BoundaryCell:
    """One boundary-register cell.

    Attributes
    ----------
    pin:
        Pin name the cell observes/controls.
    direction:
        Input cells capture; output cells drive under EXTEST.
    """

    pin: str
    direction: CellDirection


class BoundaryRegister:
    """The cells of one device, in scan order (cell 0 nearest TDO).

    Parameters
    ----------
    cells:
        Cell definitions.
    read_pin:
        ``f(pin) -> 0/1``: the live value at a pin.
    drive_pin:
        ``f(pin, value)``: force an output pin (EXTEST).
    """

    def __init__(self, cells: List[BoundaryCell],
                 read_pin: Callable[[str], int],
                 drive_pin: Callable[[str, int], None]):
        if not cells:
            raise ConfigurationError("boundary register needs cells")
        names = [c.pin for c in cells]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate pin names in cells")
        self.cells = list(cells)
        self.read_pin = read_pin
        self.drive_pin = drive_pin
        self.extest_active = False

    def __len__(self) -> int:
        return len(self.cells)

    def capture(self) -> int:
        """Pack the pins' live values into the register (SAMPLE)."""
        value = 0
        for k, cell in enumerate(self.cells):
            bit = int(self.read_pin(cell.pin)) & 1
            value |= bit << k
        return value

    def update(self, value: int) -> None:
        """Drive output cells from scanned-in data (EXTEST only)."""
        if not self.extest_active:
            return
        for k, cell in enumerate(self.cells):
            if cell.direction is CellDirection.OUTPUT:
                self.drive_pin(cell.pin, (value >> k) & 1)


def make_boundary_device(name: str, idcode: int,
                         register: BoundaryRegister) -> JTAGDevice:
    """A chain device whose SAMPLE/EXTEST work the boundary register.

    SAMPLE captures the pins without disturbing them; EXTEST both
    captures and, on update, drives the outputs from the scanned
    data.
    """
    def handler(instruction: Instruction,
                value: int) -> Optional[int]:
        if instruction is Instruction.SAMPLE:
            register.extest_active = False
            return register.capture()
        if instruction is Instruction.EXTEST:
            register.extest_active = True
            register.update(value)
            return register.capture()
        return None

    return JTAGDevice(name, idcode, dr_handler=handler)


class PinState:
    """Simple pin-value store shared by a device and its board nets."""

    def __init__(self, pins: List[str]):
        if not pins:
            raise ConfigurationError("need >= 1 pin")
        self._values: Dict[str, int] = {p: 0 for p in pins}

    def read(self, pin: str) -> int:
        """The value currently at *pin*."""
        try:
            return self._values[pin]
        except KeyError:
            raise ConfigurationError(f"no pin {pin!r}") from None

    def drive(self, pin: str, value: int) -> None:
        """Set the value at *pin*."""
        if pin not in self._values:
            raise ConfigurationError(f"no pin {pin!r}")
        self._values[pin] = int(value) & 1
