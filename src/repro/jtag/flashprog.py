"""FLASH programming over the scan chain.

The PC's "MultiLink adaptor" path in Figure 2: JTAG private
instructions latch an address and a data byte, then strobe erase /
program / read operations against the configuration FLASH. The
programmer wraps that into whole-image update with verify.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ProtocolError
from repro.flash.memory import FlashMemory
from repro.jtag.chain import JTAGDevice, ScanChain
from repro.jtag.instructions import Instruction

#: IDCODE of the DLC's JTAG-to-FLASH bridge function.
FLASH_BRIDGE_IDCODE = 0x0F1A5001


def make_flash_bridge_device(flash: FlashMemory,
                             name: str = "flash_bridge") -> JTAGDevice:
    """A chain device whose private DRs drive the FLASH."""
    state = {"address": 0, "data": 0}

    def handler(instruction: Instruction, value: int) -> Optional[int]:
        if instruction is Instruction.FLASH_ADDR:
            state["address"] = value
            return value
        if instruction is Instruction.FLASH_DATA:
            state["data"] = value & 0xFF
            return value & 0xFF
        if instruction is Instruction.FLASH_PROGRAM:
            if value & 1:
                flash.program(state["address"],
                              bytes([state["data"]]))
            return 1
        if instruction is Instruction.FLASH_ERASE:
            if value & 1:
                sector = state["address"] // flash.sector_size
                flash.erase_sector(sector)
            return 1
        if instruction is Instruction.FLASH_READ:
            return flash.read(state["address"], 1)[0]
        return None

    return JTAGDevice(name, FLASH_BRIDGE_IDCODE, dr_handler=handler)


class FlashProgrammer:
    """Whole-image FLASH updates through one chain device.

    Parameters
    ----------
    chain:
        The board's scan chain.
    bridge_index:
        Position of the FLASH bridge device on the chain.
    """

    def __init__(self, chain: ScanChain, bridge_index: int = 0):
        if not 0 <= bridge_index < len(chain):
            raise ProtocolError(
                f"bridge index {bridge_index} outside chain of "
                f"{len(chain)}"
            )
        self.chain = chain
        self.bridge_index = bridge_index

    def _select(self, instruction: Instruction) -> None:
        instructions = [Instruction.BYPASS] * len(self.chain)
        instructions[self.bridge_index] = instruction
        self.chain.load_instructions(instructions)

    def _scan(self, value: int) -> int:
        values = [0] * len(self.chain)
        values[self.bridge_index] = value
        return self.chain.scan_dr(values)[self.bridge_index]

    def _set_address(self, address: int) -> None:
        self._select(Instruction.FLASH_ADDR)
        self._scan(address)

    def erase_covering(self, address: int, length: int,
                       sector_size: int) -> int:
        """Erase every sector overlapping the range; returns count."""
        if length <= 0:
            raise ProtocolError("nothing to erase")
        first = address // sector_size
        last = (address + length - 1) // sector_size
        for sector in range(first, last + 1):
            self._set_address(sector * sector_size)
            self._select(Instruction.FLASH_ERASE)
            self._scan(1)
        return last - first + 1

    def program_byte(self, address: int, value: int) -> None:
        """Program one byte (sector must already be erased)."""
        self._set_address(address)
        self._select(Instruction.FLASH_DATA)
        self._scan(value & 0xFF)
        self._select(Instruction.FLASH_PROGRAM)
        self._scan(1)

    def read_byte(self, address: int) -> int:
        """Read one byte back through the scan chain."""
        self._set_address(address)
        self._select(Instruction.FLASH_READ)
        # First scan arms the capture; second shifts it out.
        self._scan(0)
        return self._scan(0) & 0xFF

    def program_image(self, image: bytes, base: int = 0,
                      sector_size: int = 4096,
                      verify: bool = True) -> int:
        """Erase, program, and optionally verify a whole image.

        Returns the number of bytes programmed. This is the paper's
        "the program can be changed by overwriting the FLASH" flow.
        """
        if not image:
            raise ProtocolError("empty image")
        self.erase_covering(base, len(image), sector_size)
        for offset, byte in enumerate(image):
            self.program_byte(base + offset, byte)
        if verify:
            for offset, byte in enumerate(image):
                got = self.read_byte(base + offset)
                if got != byte:
                    raise ProtocolError(
                        f"verify failed at 0x{base + offset:x}: wrote "
                        f"0x{byte:02x}, read 0x{got:02x}"
                    )
        return len(image)
