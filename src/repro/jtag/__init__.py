"""IEEE 1149.1 (boundary scan) interface.

"The FLASH is programmed from a personal computer through an
IEEE1149.1 (boundary scan) interface." This package implements the
full 16-state TAP controller, instruction/data register shifting,
a scan chain, and the FLASH programming flow over scan.
"""

from repro.jtag.tap import TAPController, TAPState
from repro.jtag.instructions import Instruction, INSTRUCTION_WIDTH
from repro.jtag.chain import ScanChain, JTAGDevice
from repro.jtag.flashprog import FlashProgrammer
from repro.jtag.boundary import (
    BoundaryCell,
    BoundaryRegister,
    CellDirection,
    PinState,
    make_boundary_device,
)
from repro.jtag.interconnect import (
    Board,
    InterconnectResult,
    Net,
    run_interconnect_test,
)

__all__ = [
    "TAPController",
    "TAPState",
    "Instruction",
    "INSTRUCTION_WIDTH",
    "ScanChain",
    "JTAGDevice",
    "FlashProgrammer",
    "BoundaryCell",
    "BoundaryRegister",
    "CellDirection",
    "PinState",
    "make_boundary_device",
    "Board",
    "Net",
    "InterconnectResult",
    "run_interconnect_test",
]
