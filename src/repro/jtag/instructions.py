"""JTAG instruction set of the DLC's scan chain.

Standard instructions (BYPASS, IDCODE, SAMPLE) plus the private
instructions the board uses to reach the FLASH: address load, data
load, and the program/erase/read strobes.
"""

from __future__ import annotations

import enum

#: Instruction register width on the DLC's devices.
INSTRUCTION_WIDTH = 8


class Instruction(enum.Enum):
    """IR opcodes."""

    EXTEST = 0x00
    IDCODE = 0x01
    SAMPLE = 0x02
    FLASH_ADDR = 0x10
    FLASH_DATA = 0x11
    FLASH_PROGRAM = 0x12
    FLASH_ERASE = 0x13
    FLASH_READ = 0x14
    BYPASS = 0xFF

    @property
    def dr_width(self) -> int:
        """Data register length selected by this instruction."""
        widths = {
            Instruction.EXTEST: 64,       # boundary register
            Instruction.IDCODE: 32,
            Instruction.SAMPLE: 64,
            Instruction.FLASH_ADDR: 24,
            Instruction.FLASH_DATA: 8,
            Instruction.FLASH_PROGRAM: 1,
            Instruction.FLASH_ERASE: 1,
            Instruction.FLASH_READ: 8,
            Instruction.BYPASS: 1,
        }
        return widths[self]
