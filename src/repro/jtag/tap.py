"""The 16-state IEEE 1149.1 TAP controller.

The exact state machine from the standard, driven by TMS on each
TCK rising edge. Five TMS=1 clocks reach Test-Logic-Reset from any
state — a property the tests verify for all sixteen states.
"""

from __future__ import annotations

import enum
from typing import Dict, Tuple

from repro.errors import ProtocolError


class TAPState(enum.Enum):
    """All sixteen TAP controller states."""

    TEST_LOGIC_RESET = "test-logic-reset"
    RUN_TEST_IDLE = "run-test-idle"
    SELECT_DR_SCAN = "select-dr-scan"
    CAPTURE_DR = "capture-dr"
    SHIFT_DR = "shift-dr"
    EXIT1_DR = "exit1-dr"
    PAUSE_DR = "pause-dr"
    EXIT2_DR = "exit2-dr"
    UPDATE_DR = "update-dr"
    SELECT_IR_SCAN = "select-ir-scan"
    CAPTURE_IR = "capture-ir"
    SHIFT_IR = "shift-ir"
    EXIT1_IR = "exit1-ir"
    PAUSE_IR = "pause-ir"
    EXIT2_IR = "exit2-ir"
    UPDATE_IR = "update-ir"


#: (state, tms) -> next state, straight from the standard's diagram.
_TRANSITIONS: Dict[Tuple[TAPState, int], TAPState] = {
    (TAPState.TEST_LOGIC_RESET, 0): TAPState.RUN_TEST_IDLE,
    (TAPState.TEST_LOGIC_RESET, 1): TAPState.TEST_LOGIC_RESET,
    (TAPState.RUN_TEST_IDLE, 0): TAPState.RUN_TEST_IDLE,
    (TAPState.RUN_TEST_IDLE, 1): TAPState.SELECT_DR_SCAN,
    (TAPState.SELECT_DR_SCAN, 0): TAPState.CAPTURE_DR,
    (TAPState.SELECT_DR_SCAN, 1): TAPState.SELECT_IR_SCAN,
    (TAPState.CAPTURE_DR, 0): TAPState.SHIFT_DR,
    (TAPState.CAPTURE_DR, 1): TAPState.EXIT1_DR,
    (TAPState.SHIFT_DR, 0): TAPState.SHIFT_DR,
    (TAPState.SHIFT_DR, 1): TAPState.EXIT1_DR,
    (TAPState.EXIT1_DR, 0): TAPState.PAUSE_DR,
    (TAPState.EXIT1_DR, 1): TAPState.UPDATE_DR,
    (TAPState.PAUSE_DR, 0): TAPState.PAUSE_DR,
    (TAPState.PAUSE_DR, 1): TAPState.EXIT2_DR,
    (TAPState.EXIT2_DR, 0): TAPState.SHIFT_DR,
    (TAPState.EXIT2_DR, 1): TAPState.UPDATE_DR,
    (TAPState.UPDATE_DR, 0): TAPState.RUN_TEST_IDLE,
    (TAPState.UPDATE_DR, 1): TAPState.SELECT_DR_SCAN,
    (TAPState.SELECT_IR_SCAN, 0): TAPState.CAPTURE_IR,
    (TAPState.SELECT_IR_SCAN, 1): TAPState.TEST_LOGIC_RESET,
    (TAPState.CAPTURE_IR, 0): TAPState.SHIFT_IR,
    (TAPState.CAPTURE_IR, 1): TAPState.EXIT1_IR,
    (TAPState.SHIFT_IR, 0): TAPState.SHIFT_IR,
    (TAPState.SHIFT_IR, 1): TAPState.EXIT1_IR,
    (TAPState.EXIT1_IR, 0): TAPState.PAUSE_IR,
    (TAPState.EXIT1_IR, 1): TAPState.UPDATE_IR,
    (TAPState.PAUSE_IR, 0): TAPState.PAUSE_IR,
    (TAPState.PAUSE_IR, 1): TAPState.EXIT2_IR,
    (TAPState.EXIT2_IR, 0): TAPState.SHIFT_IR,
    (TAPState.EXIT2_IR, 1): TAPState.UPDATE_IR,
    (TAPState.UPDATE_IR, 0): TAPState.RUN_TEST_IDLE,
    (TAPState.UPDATE_IR, 1): TAPState.SELECT_DR_SCAN,
}


class TAPController:
    """One device's TAP controller."""

    def __init__(self):
        self._state = TAPState.TEST_LOGIC_RESET
        self.tck_count = 0

    @property
    def state(self) -> TAPState:
        """Current controller state."""
        return self._state

    def clock(self, tms: int) -> TAPState:
        """One TCK rising edge with the given TMS level."""
        if tms not in (0, 1):
            raise ProtocolError(f"TMS must be 0 or 1, got {tms}")
        self._state = _TRANSITIONS[(self._state, tms)]
        self.tck_count += 1
        return self._state

    def reset(self) -> TAPState:
        """Five TMS=1 clocks: guaranteed Test-Logic-Reset."""
        for _ in range(5):
            self.clock(1)
        return self._state

    def navigate(self, target: TAPState, max_clocks: int = 16) -> int:
        """Drive TMS to reach *target*; returns clocks used.

        Breadth-first over the TMS alphabet — mirrors what JTAG
        software does with precomputed TMS paths.
        """
        if self._state is target:
            return 0
        from collections import deque

        frontier = deque([(self._state, ())])
        seen = {self._state}
        path = None
        while frontier:
            state, tms_path = frontier.popleft()
            if len(tms_path) > max_clocks:
                break
            for tms in (0, 1):
                nxt = _TRANSITIONS[(state, tms)]
                if nxt is target:
                    path = tms_path + (tms,)
                    frontier.clear()
                    break
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append((nxt, tms_path + (tms,)))
        if path is None:
            raise ProtocolError(
                f"no TMS path from {self._state} to {target} within "
                f"{max_clocks} clocks"
            )
        for tms in path:
            self.clock(tms)
        return len(path)
