"""PCB trace and coaxial cable channel models.

Parameterized by geometry (length) and material class, producing the
:class:`~repro.channel.lti.LTIChannel` the simulation consumes. Loss
figures are typical for FR-4 microstrip and flexible SMA coax in the
low-gigahertz range.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.channel.lti import LTIChannel

#: Propagation velocity on FR-4 microstrip, ps per cm.
FR4_DELAY_PS_PER_CM = 58.0

#: Propagation velocity in PTFE coax, ps per cm.
COAX_DELAY_PS_PER_CM = 47.0


class PCBTrace(LTIChannel):
    """An FR-4 microstrip trace.

    Parameters
    ----------
    length_cm:
        Trace length.
    loss_db_per_cm_at_2g5:
        Loss density at 2.5 GHz (default typical FR-4: ~0.12 dB/cm).
    bandwidth_ghz_cm:
        Bandwidth-length product: a 1 cm trace has this bandwidth,
        longer traces scale inversely.
    """

    def __init__(self, length_cm: float,
                 loss_db_per_cm_at_2g5: float = 0.12,
                 bandwidth_ghz_cm: float = 120.0):
        if length_cm <= 0.0:
            raise ConfigurationError("trace length must be positive")
        if loss_db_per_cm_at_2g5 < 0.0:
            raise ConfigurationError("loss density must be >= 0")
        if bandwidth_ghz_cm <= 0.0:
            raise ConfigurationError("bandwidth product must be positive")
        self.length_cm = float(length_cm)
        super().__init__(
            bandwidth_ghz=bandwidth_ghz_cm / length_cm,
            attenuation_db=loss_db_per_cm_at_2g5 * length_cm,
            delay_ps=FR4_DELAY_PS_PER_CM * length_cm,
        )


class SMACable(LTIChannel):
    """A flexible PTFE SMA cable.

    Parameters
    ----------
    length_cm:
        Cable length.
    loss_db_per_m_at_2g5:
        Loss density at 2.5 GHz (default ~0.9 dB/m for good coax).
    """

    def __init__(self, length_cm: float = 50.0,
                 loss_db_per_m_at_2g5: float = 0.9):
        if length_cm <= 0.0:
            raise ConfigurationError("cable length must be positive")
        if loss_db_per_m_at_2g5 < 0.0:
            raise ConfigurationError("loss density must be >= 0")
        self.length_cm = float(length_cm)
        super().__init__(
            # Good coax is very wideband; barely bandlimits here.
            bandwidth_ghz=40.0,
            attenuation_db=loss_db_per_m_at_2g5 * length_cm / 100.0,
            delay_ps=COAX_DELAY_PS_PER_CM * length_cm,
        )
