"""Channel-to-channel crosstalk.

Five serialized channels share the test-bed board and the probe
card's interposer routes dozens of signals at fine pitch — adjacent-
trace coupling is the signal-integrity hazard both layouts fight.
The model couples a fraction of each aggressor's *edge energy*
(crosstalk is capacitive/inductive: proportional to dV/dt) into the
victim.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.signal.waveform import Waveform, WaveformBatch

#: Documented equivalence tolerances of the batched coupling-matrix
#: path versus the sequential per-pair dict path. The batch mixes
#: derivatives with one matrix product before smoothing (convolution
#: and the coupling mix are both linear, so they commute), which
#: reorders float additions; results agree to rounding, not bitwise.
XTALK_EQUIVALENCE_RTOL = 1e-9
XTALK_EQUIVALENCE_ATOL = 1e-12


@dataclasses.dataclass(frozen=True)
class CouplingSpec:
    """Strength and speed of one aggressor-victim coupling.

    Attributes
    ----------
    coupling:
        Fraction of the aggressor's slew coupled into the victim
        (0.0-0.5; tight probe-card pitches run a few percent).
    rise_scale_ps:
        Time scale of the coupled pulse (the mutual L/C time
        constant).
    """

    coupling: float = 0.03
    rise_scale_ps: float = 50.0

    def __post_init__(self):
        if not 0.0 <= self.coupling <= 0.5:
            raise ConfigurationError(
                f"coupling must be in [0, 0.5], got {self.coupling}"
            )
        if self.rise_scale_ps <= 0.0:
            raise ConfigurationError("rise scale must be positive")


def coupled_noise(aggressor: Waveform,
                  spec: CouplingSpec = CouplingSpec()) -> Waveform:
    """The noise one aggressor injects into a parallel victim.

    Near-end crosstalk shape: the aggressor's derivative smoothed
    over the coupling time constant, scaled by the coupling factor.
    """
    dv = np.gradient(aggressor.values, aggressor.dt)
    # Smooth over the coupling time constant.
    sigma_samples = spec.rise_scale_ps / aggressor.dt
    if sigma_samples > 0.05:
        from scipy.ndimage import gaussian_filter1d

        dv = gaussian_filter1d(dv, sigma_samples, mode="nearest")
    noise = spec.coupling * spec.rise_scale_ps * dv
    return Waveform(noise, dt=aggressor.dt, t0=aggressor.t0)


def apply_crosstalk(victim: Waveform,
                    aggressors: Sequence[Waveform],
                    spec: CouplingSpec = CouplingSpec()) -> Waveform:
    """Victim plus every aggressor's coupled noise."""
    out = victim
    for aggressor in aggressors:
        out = out + coupled_noise(aggressor, spec)
    return out


class CrosstalkMatrix:
    """Pairwise coupling across a named channel group.

    Parameters
    ----------
    names:
        Channel names, in physical (routing) order — adjacency in
        this list is adjacency on the board.
    adjacent:
        Coupling spec for nearest neighbours.
    next_adjacent:
        Coupling for next-nearest (weaker); None disables.
    """

    def __init__(self, names: Sequence[str],
                 adjacent: CouplingSpec = CouplingSpec(),
                 next_adjacent: CouplingSpec = CouplingSpec(
                     coupling=0.008)):
        if len(names) < 2:
            raise ConfigurationError("need >= 2 channels")
        if len(set(names)) != len(names):
            raise ConfigurationError("channel names must be unique")
        self.names = list(names)
        self.adjacent = adjacent
        self.next_adjacent = next_adjacent

    def _spec_for(self, i: int, j: int):
        distance = abs(i - j)
        if distance == 1:
            return self.adjacent
        if distance == 2 and self.next_adjacent is not None:
            return self.next_adjacent
        return None

    def apply(self, waveforms: Dict[str, Waveform]
              ) -> Dict[str, Waveform]:
        """Couple every channel into its neighbours.

        Missing channels (quiet lines) neither aggress nor receive.
        """
        unknown = set(waveforms) - set(self.names)
        if unknown:
            raise ConfigurationError(
                f"channels not in the matrix: {sorted(unknown)}"
            )
        out: Dict[str, Waveform] = {}
        for i, victim_name in enumerate(self.names):
            if victim_name not in waveforms:
                continue
            victim = waveforms[victim_name]
            for j, aggressor_name in enumerate(self.names):
                if aggressor_name == victim_name \
                        or aggressor_name not in waveforms:
                    continue
                spec = self._spec_for(i, j)
                if spec is None:
                    continue
                victim = victim + coupled_noise(
                    waveforms[aggressor_name], spec
                )
            out[victim_name] = victim
        return out

    def coupling_weights(self, names: Sequence[str] = None
                         ) -> Dict[float, np.ndarray]:
        """Per-rise-scale coupling weight matrices for a batch.

        Returns ``{rise_scale_ps: W}`` where ``W[i, j] = coupling *
        rise_scale_ps`` of the spec coupling aggressor *j* into
        victim *i* (zero on the diagonal and beyond the coupling
        range). One matrix per distinct ``rise_scale_ps`` because
        the smoothing width is part of the pulse shape. *names*
        selects and orders the rows (default: every channel);
        distances are always measured in the full matrix's physical
        routing order, so a subset batch couples exactly like the
        same subset in :meth:`apply`.
        """
        if names is None:
            names = self.names
        unknown = set(names) - set(self.names)
        if unknown:
            raise ConfigurationError(
                f"channels not in the matrix: {sorted(unknown)}"
            )
        idx = [self.names.index(n) for n in names]
        c = len(idx)
        weights: Dict[float, np.ndarray] = {}
        for a, i in enumerate(idx):
            for b, j in enumerate(idx):
                if a == b:
                    continue
                spec = self._spec_for(i, j)
                if spec is None:
                    continue
                w = weights.setdefault(
                    spec.rise_scale_ps, np.zeros((c, c)))
                w[a, b] = spec.coupling * spec.rise_scale_ps
        return weights

    def apply_batch(self, batch: WaveformBatch,
                    names: Sequence[str] = None) -> WaveformBatch:
        """Couple every row of *batch* into its neighbours at once.

        The batched counterpart of :meth:`apply`: one ``gradient``
        over the block, one coupling-matrix product per distinct
        rise scale, and one smoothing pass over the mixed
        derivatives (mixing and smoothing are both linear, so they
        commute with the per-pair order of :meth:`apply`). Row *k*
        of the result corresponds to ``names[k]`` (default: the
        matrix's channel order; a subset models quiet lines exactly
        like a partial dict). Equivalent to the dict path within
        ``XTALK_EQUIVALENCE_RTOL``/``ATOL`` — the reordered float
        sums agree to rounding, not bitwise.
        """
        if names is None:
            names = self.names
        if batch.n_channels != len(names):
            raise ConfigurationError(
                f"batch has {batch.n_channels} rows for "
                f"{len(names)} names"
            )
        # The weight matrices are a pure function of this value key;
        # backends may memoize on it instead of re-walking the O(c^2)
        # spec table per batch.
        weights_key = (tuple(names), tuple(self.names),
                       self.adjacent, self.next_adjacent)
        from repro import telemetry
        from repro.signal import _backend

        coupling_mix = _backend.dispatch("coupling_mix",
                                         telemetry.resolve(None))
        out = coupling_mix(batch.values, batch.dt, weights_key,
                           lambda: self.coupling_weights(names))
        return WaveformBatch(out, dt=batch.dt, t0=batch.t0)
