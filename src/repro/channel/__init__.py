"""Electrical channel models.

The signals in the paper traverse PCB traces, SMA cables, and — in
the wafer-probe application — the interposer and WLP compliant
leads. These are modeled as LTI low-pass channels with loss and
delay, the standard abstraction for signal-integrity work.
"""

from repro.channel.lti import LTIChannel, IdealChannel
from repro.channel.trace import PCBTrace, SMACable
from repro.channel.interposer import InterposerChannel, CompliantLead
from repro.channel.crosstalk import (
    CouplingSpec,
    CrosstalkMatrix,
    apply_crosstalk,
    coupled_noise,
)

__all__ = [
    "LTIChannel",
    "IdealChannel",
    "PCBTrace",
    "SMACable",
    "InterposerChannel",
    "CompliantLead",
    "CouplingSpec",
    "CrosstalkMatrix",
    "apply_crosstalk",
    "coupled_noise",
]
