"""LTI channel: bandwidth limit, flat loss, and delay.

A Bessel low-pass (maximally flat group delay, the right choice for
time-domain work) models the channel's bandwidth; flat attenuation
and bulk delay complete the picture. Inter-symbol interference
emerges naturally when the bandwidth approaches the data rate.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy import signal as sps

from repro.errors import ConfigurationError
from repro.signal.waveform import Waveform, WaveformBatch


class LTIChannel:
    """Bandwidth-limited channel with loss and delay.

    Parameters
    ----------
    bandwidth_ghz:
        -3 dB bandwidth.
    attenuation_db:
        Flat loss (positive number = loss).
    delay_ps:
        Bulk propagation delay.
    order:
        Bessel filter order.
    """

    def __init__(self, bandwidth_ghz: float, attenuation_db: float = 0.0,
                 delay_ps: float = 0.0, order: int = 4):
        if bandwidth_ghz <= 0.0:
            raise ConfigurationError("bandwidth must be positive")
        if attenuation_db < 0.0:
            raise ConfigurationError(
                "attenuation is a loss; it must be >= 0 dB"
            )
        if delay_ps < 0.0:
            raise ConfigurationError("delay must be >= 0")
        if not 1 <= order <= 8:
            raise ConfigurationError(f"order must be 1-8, got {order}")
        self.bandwidth_ghz = float(bandwidth_ghz)
        self.attenuation_db = float(attenuation_db)
        self.delay_ps = float(delay_ps)
        self.order = int(order)

    @property
    def gain(self) -> float:
        """Linear amplitude gain (< 1 for loss)."""
        return 10.0 ** (-self.attenuation_db / 20.0)

    def cache_key(self) -> str:
        """Canonical digest of this channel's response-determining
        config (class, bandwidth, loss, delay, order) for
        ``repro.cache`` keys."""
        from repro.cache.keys import canonical_digest

        return canonical_digest(
            type(self).__name__, self.bandwidth_ghz,
            self.attenuation_db, self.delay_ps, self.order,
        )

    def apply(self, waveform: Waveform, cache=None) -> Waveform:
        """Propagate *waveform* through the channel.

        The DC component passes at the channel gain; the filter acts
        on the AC content (a data channel is AC-coupled around its
        running midpoint).

        Parameters
        ----------
        cache:
            Optional injected :class:`repro.cache.ArtifactCache`;
            defaults to the module-level active one. Convolutions
            are memoized keyed ``(channel config, input waveform
            token)`` — the input token is its producing stage's
            provenance when attached, else a content digest.
        """
        from repro import cache as _cache

        store = _cache.resolve(cache)
        if store.enabled:
            key = _cache.canonical_digest(
                "lti.apply", self.cache_key(), waveform.cache_token(),
            )
            out = store.get_or_compute(
                key, lambda: self._apply_impl(waveform)
            )
            return out.set_cache_token(key)
        return self._apply_impl(waveform)

    def apply_batch(self, batch: WaveformBatch,
                    cache=None) -> WaveformBatch:
        """Propagate every channel of *batch* in one filter pass.

        The batched counterpart of :meth:`apply`: `scipy` runs the
        SOS filter along the sample axis of the whole
        ``(channels, samples)`` block, and the group-delay impulse
        response is measured once instead of per channel. Each row's
        output is *bit-identical* to :meth:`apply` on that row
        (``sosfilt`` over a 2-D block applies the identical
        recurrence per row; property-tested in
        ``tests/test_batch_equivalence.py``), except that the AC
        midpoint is each row's own mean, as in the scalar path.

        Caching composes per row with single-channel keys: rows are
        keyed ``("lti.apply", channel config, row token)`` exactly
        like :meth:`apply`, hits are reused, and only missing rows
        are filtered (as a sub-batch) and stored individually.
        """
        from repro import cache as _cache

        store = _cache.resolve(cache)
        if not store.enabled or not batch.n_channels:
            return self._apply_batch_impl(batch)

        keys = [
            _cache.canonical_digest("lti.apply", self.cache_key(), tok)
            for tok in batch.cache_tokens()
        ]
        hits = []
        for key in keys:
            hit, value = store.get(key)
            hits.append(value if hit else None)
        missing = [i for i, wf in enumerate(hits) if wf is None]
        if missing:
            sub_in = WaveformBatch(batch.values[missing], dt=batch.dt,
                                   t0=batch.t0)
            sub = self._apply_batch_impl(sub_in)
            for j, i in enumerate(missing):
                wf = Waveform(sub.values[j].copy(), dt=sub.dt,
                              t0=sub.t0)
                store.put(keys[i], wf)
                hits[i] = wf
        values = np.stack([wf.values for wf in hits])
        return WaveformBatch(values, dt=hits[0].dt, t0=hits[0].t0,
                             tokens=keys)

    def _apply_batch_impl(self, batch: WaveformBatch) -> WaveformBatch:
        dt_s = batch.dt * 1e-12
        f_nyquist = 0.5 / dt_s
        f_cut = self.bandwidth_ghz * 1e9
        group_delay_samples = 0.0
        if f_cut >= f_nyquist or not batch.n_channels \
                or not batch.n_samples:
            filtered = batch.values.copy()
        else:
            n_imp = min(batch.n_samples, max(64, int(16.0
                        * f_nyquist / f_cut)))
            from repro import telemetry
            from repro.signal import _backend

            sosfilt_batch = _backend.dispatch(
                "sosfilt_batch", telemetry.resolve(None))
            filtered, group_delay_samples = sosfilt_batch(
                batch.values, self.order, f_cut / f_nyquist, n_imp)
        return WaveformBatch(
            self.gain * filtered, dt=batch.dt,
            t0=(batch.t0 + self.delay_ps
                - group_delay_samples * batch.dt),
        )

    def _apply_impl(self, waveform: Waveform) -> Waveform:
        dt_s = waveform.dt * 1e-12
        f_nyquist = 0.5 / dt_s
        f_cut = self.bandwidth_ghz * 1e9
        group_delay_samples = 0.0
        if f_cut >= f_nyquist:
            # Channel is faster than the simulation grid: bandwidth
            # has no effect at this resolution.
            filtered = waveform.values.copy()
        else:
            sos = sps.bessel(self.order, f_cut / f_nyquist,
                             btype="low", output="sos", norm="mag")
            mean = float(waveform.values.mean())
            filtered = sps.sosfilt(sos, waveform.values - mean) + mean
            # The causal filter carries its own group delay; a
            # Bessel's is flat, so compensating it keeps delay_ps
            # the channel's *only* latency. Measure it from the
            # impulse response's first moment.
            n_imp = min(len(waveform), max(64, int(16.0
                        * f_nyquist / f_cut)))
            impulse = np.zeros(n_imp)
            impulse[0] = 1.0
            h = sps.sosfilt(sos, impulse)
            total = float(h.sum())
            if abs(total) > 1e-12:
                group_delay_samples = float(
                    (np.arange(n_imp) * h).sum() / total
                )
        out = Waveform(
            self.gain * filtered, dt=waveform.dt,
            t0=(waveform.t0 + self.delay_ps
                - group_delay_samples * waveform.dt),
        )
        return out

    def isi_dj_estimate(self, rate_gbps: float) -> float:
        """Rough deterministic jitter from ISI at *rate_gbps*, ps p-p.

        Uses the classic approximation: DJ grows as the channel rise
        time (0.339/BW for a Gaussian-ish response) becomes a
        significant fraction of the unit interval.
        """
        if rate_gbps <= 0.0:
            raise ConfigurationError("rate must be positive")
        ui = 1_000.0 / rate_gbps
        t_r = 339.0 / self.bandwidth_ghz  # 10-90% rise time, ps
        x = t_r / ui
        if x < 0.5:
            return 0.0
        return ui * 0.5 * (x - 0.5) ** 2

    def cascade(self, other: "LTIChannel") -> "LTIChannel":
        """Series combination of two channels.

        Bandwidths combine reciprocally in square (rise times RSS);
        losses and delays add.
        """
        bw = 1.0 / math.sqrt(self.bandwidth_ghz ** -2
                             + other.bandwidth_ghz ** -2)
        return LTIChannel(
            bandwidth_ghz=bw,
            attenuation_db=self.attenuation_db + other.attenuation_db,
            delay_ps=self.delay_ps + other.delay_ps,
            order=max(self.order, other.order),
        )

    def __repr__(self) -> str:
        return (f"LTIChannel(bw={self.bandwidth_ghz} GHz, "
                f"loss={self.attenuation_db} dB, "
                f"delay={self.delay_ps} ps)")


class IdealChannel(LTIChannel):
    """A pass-through channel (infinite bandwidth, no loss)."""

    def __init__(self, delay_ps: float = 0.0):
        super().__init__(bandwidth_ghz=1e6, attenuation_db=0.0,
                         delay_ps=delay_ps, order=1)

    def apply(self, waveform: Waveform) -> Waveform:
        return waveform.shifted(self.delay_ps)

    def apply_batch(self, batch: WaveformBatch,
                    cache=None) -> WaveformBatch:
        """Pass the whole batch through, shifted by the delay."""
        return batch.shifted(self.delay_ps)
