"""Interposer and WLP compliant-lead channel.

The mini-tester drives its 5 Gbps test signal through "an interposer
... used to redistribute the high density WLP signals to a
macroscopic scale" and the DUT's "miniature compliant leads". Each
element is a short, slightly lossy, bandwidth-limited hop; the test
that the paper performs is exactly "does a 5 Gbps signal survive
this path".
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.channel.lti import LTIChannel


@dataclasses.dataclass(frozen=True)
class CompliantLead:
    """One WLP compliant lead (a springy micro-interconnect).

    Attributes
    ----------
    inductance_nh:
        Series inductance (the dominant parasite of a long springy
        lead).
    capacitance_pf:
        Shunt capacitance to the wafer surface.
    resistance_ohm:
        Series (contact + trace) resistance.
    """

    inductance_nh: float = 0.8
    capacitance_pf: float = 0.15
    resistance_ohm: float = 0.5

    def __post_init__(self):
        if (self.inductance_nh <= 0.0 or self.capacitance_pf <= 0.0
                or self.resistance_ohm < 0.0):
            raise ConfigurationError("lead parasitics must be positive")

    @property
    def resonance_ghz(self) -> float:
        """Self-resonance 1/(2*pi*sqrt(LC)) in GHz."""
        import math

        lc = self.inductance_nh * 1e-9 * self.capacitance_pf * 1e-12
        return 1.0 / (2.0 * math.pi * math.sqrt(lc)) / 1e9

    @property
    def bandwidth_ghz(self) -> float:
        """Usable bandwidth (taken as ~70% of self-resonance)."""
        return 0.7 * self.resonance_ghz


class InterposerChannel(LTIChannel):
    """Interposer redistribution + compliant lead, as one channel.

    Parameters
    ----------
    lead:
        The compliant-lead parasitics.
    redistribution_length_cm:
        Trace length across the interposer.
    interposer_bandwidth_ghz:
        Bandwidth of the redistribution layer itself (thin-film or
        LTCC interposers are quite fast).
    contact_loss_db:
        Loss at the probe/lead contact.
    """

    def __init__(self, lead: CompliantLead = CompliantLead(),
                 redistribution_length_cm: float = 1.5,
                 interposer_bandwidth_ghz: float = 20.0,
                 contact_loss_db: float = 0.3):
        if redistribution_length_cm <= 0.0:
            raise ConfigurationError(
                "redistribution length must be positive"
            )
        if interposer_bandwidth_ghz <= 0.0:
            raise ConfigurationError(
                "interposer bandwidth must be positive"
            )
        if contact_loss_db < 0.0:
            raise ConfigurationError("contact loss must be >= 0")
        self.lead = lead
        import math

        bw = 1.0 / math.sqrt(lead.bandwidth_ghz ** -2
                             + interposer_bandwidth_ghz ** -2)
        from repro.channel.trace import FR4_DELAY_PS_PER_CM

        super().__init__(
            bandwidth_ghz=bw,
            attenuation_db=contact_loss_db + 0.05 * redistribution_length_cm,
            delay_ps=(FR4_DELAY_PS_PER_CM * redistribution_length_cm
                      + 15.0),
            order=2,
        )

    def round_trip(self) -> LTIChannel:
        """The loopback path: tester -> DUT -> tester (two traversals)."""
        return self.cascade(self)
