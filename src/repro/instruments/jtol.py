"""Jitter tolerance measurement.

The receive-side counterpart of the jitter generation story: how
much *injected* sinusoidal jitter the sampler tolerates before bit
errors appear, as a function of jitter frequency. Receivers track
slow jitter (large tolerance at low frequency) and must absorb fast
jitter within their timing margin — the classic jitter-tolerance
"waterfall" template.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.signal.jitter import JitterBudget, PeriodicJitter
from repro.signal.nrz import NRZEncoder
from repro.signal.prbs import prbs_bits
from repro.signal.sampling import decide_bits


@dataclasses.dataclass(frozen=True)
class TolerancePoint:
    """One frequency's tolerance result.

    Attributes
    ----------
    frequency_ghz:
        Injected jitter frequency.
    tolerated_pp_ui:
        Largest injected amplitude (in UI p-p) that stayed
        error-free.
    """

    frequency_ghz: float
    tolerated_pp_ui: float


class JitterToleranceTester:
    """Sweeps injected PJ amplitude per frequency until errors.

    Parameters
    ----------
    rate_gbps:
        Data rate under test.
    base_budget:
        The link's intrinsic jitter (present under the injection).
    n_bits:
        Pattern length per trial.
    """

    def __init__(self, rate_gbps: float = 2.5,
                 base_budget: Optional[JitterBudget] = None,
                 n_bits: int = 800):
        if rate_gbps <= 0.0:
            raise ConfigurationError("rate must be positive")
        if n_bits < 64:
            raise ConfigurationError("need >= 64 bits per trial")
        self.rate_gbps = float(rate_gbps)
        self.base_budget = base_budget if base_budget is not None \
            else JitterBudget(rj_rms=2.0, dj_pp=10.0)
        self.n_bits = int(n_bits)
        self.ui = 1_000.0 / rate_gbps

    def _error_free(self, pj_pp_ui: float, frequency_ghz: float,
                    seed: int) -> bool:
        bits = prbs_bits(7, self.n_bits, seed=1 + seed % 100)
        components = list(self.base_budget.build().components)
        if pj_pp_ui > 0.0:
            components.append(PeriodicJitter(
                pj_pp_ui * self.ui, frequency_ghz
            ))
        from repro.signal.jitter import CompositeJitter

        encoder = NRZEncoder(self.rate_gbps, v_low=-0.4, v_high=0.4,
                             t20_80=min(72.0, 0.4 * self.ui))
        wf = encoder.encode(bits, jitter=CompositeJitter(components),
                            rng=np.random.default_rng(seed))
        got = decide_bits(wf, self.rate_gbps, 0.0, n_bits=self.n_bits)
        return bool(np.array_equal(got, bits))

    def tolerance_at(self, frequency_ghz: float, seed: int = 1,
                     max_pp_ui: float = 1.5,
                     resolution_ui: float = 0.05) -> TolerancePoint:
        """Binary-search the largest tolerated amplitude."""
        if frequency_ghz <= 0.0:
            raise ConfigurationError("frequency must be positive")
        lo, hi = 0.0, max_pp_ui
        if not self._error_free(0.0, frequency_ghz, seed):
            return TolerancePoint(frequency_ghz, 0.0)
        while hi - lo > resolution_ui:
            mid = 0.5 * (lo + hi)
            if self._error_free(mid, frequency_ghz, seed):
                lo = mid
            else:
                hi = mid
        return TolerancePoint(frequency_ghz, lo)

    def sweep(self, frequencies_ghz: Sequence[float],
              seed: int = 1) -> List[TolerancePoint]:
        """The tolerance curve over several jitter frequencies."""
        return [self.tolerance_at(f, seed=seed)
                for f in frequencies_ghz]

    def margin_ui(self, seed: int = 1) -> float:
        """The flat high-frequency tolerance: the raw eye margin.

        At jitter frequencies far above any tracking, tolerance
        equals the eye opening left by the intrinsic budget.
        """
        point = self.tolerance_at(0.5 / (self.ui / 1_000.0) / 10.0,
                                  seed=seed)
        return point.tolerated_pp_ui
