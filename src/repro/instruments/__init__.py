"""Bench instruments surrounding the DLC.

The paper's setups use an external RF source as the low-jitter
timing reference (Figure 1), a sampling oscilloscope for the eye and
jitter measurements (Figures 6-11, 16-19), and DC power sources.
A BERT model rounds out the receive-side checks.
"""

from repro.instruments.rfclock import RFClockSource, PhaseNoisePoint
from repro.instruments.scope import SamplingScope, EdgeJitterResult
from repro.instruments.bert import BitErrorRateTester
from repro.instruments.power import DCSource, PowerBudget
from repro.instruments.counter import CounterResult, FrequencyCounter
from repro.instruments.jtol import JitterToleranceTester, TolerancePoint

__all__ = [
    "RFClockSource",
    "PhaseNoisePoint",
    "SamplingScope",
    "EdgeJitterResult",
    "BitErrorRateTester",
    "DCSource",
    "PowerBudget",
    "FrequencyCounter",
    "CounterResult",
    "JitterToleranceTester",
    "TolerancePoint",
]
