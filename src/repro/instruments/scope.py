"""Sampling oscilloscope model.

All the paper's evaluation numbers are scope measurements. The model
reproduces the measurement *procedures*: repeated-acquisition eye
diagrams, single-edge jitter histograms (Figure 9's 24 ps p-p /
3.2 ps rms), rise/fall time, and amplitude readouts — with a
configurable instrument noise floor so measured values include the
instrument, as real ones do.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np

from repro.errors import MeasurementError
from repro.signal.waveform import Waveform
from repro.signal import analysis
from repro.eye.diagram import EyeDiagram
from repro.eye.metrics import EyeMetrics, measure_eye


@dataclasses.dataclass(frozen=True)
class EdgeJitterResult:
    """Single-edge jitter histogram summary (the Figure 9 measurement).

    Attributes
    ----------
    peak_to_peak:
        Spread of crossing times, ps.
    rms:
        Standard deviation of crossing times, ps.
    n_acquisitions:
        Number of repeated edges measured.
    """

    peak_to_peak: float
    rms: float
    n_acquisitions: int

    def __str__(self) -> str:
        return (f"edge jitter: {self.peak_to_peak:.1f} ps p-p, "
                f"{self.rms:.2f} ps rms over {self.n_acquisitions} "
                f"acquisitions")


class SamplingScope:
    """Equivalent-time sampling scope.

    Parameters
    ----------
    timebase_jitter_rms:
        Instrument trigger/timebase jitter, ps rms (adds to every
        horizontal measurement).
    vertical_noise_rms:
        Instrument vertical noise, volts rms.
    """

    def __init__(self, timebase_jitter_rms: float = 0.8,
                 vertical_noise_rms: float = 0.002):
        if timebase_jitter_rms < 0.0 or vertical_noise_rms < 0.0:
            raise MeasurementError("instrument noise must be >= 0")
        self.timebase_jitter_rms = float(timebase_jitter_rms)
        self.vertical_noise_rms = float(vertical_noise_rms)

    def acquire(self, waveform: Waveform,
                rng: Optional[np.random.Generator] = None) -> Waveform:
        """One acquisition: the waveform plus instrument noise."""
        if rng is None:
            rng = np.random.default_rng(0)
        v = waveform.values.copy()
        if self.vertical_noise_rms > 0.0:
            v = v + rng.normal(0.0, self.vertical_noise_rms, size=len(v))
        t0 = waveform.t0
        if self.timebase_jitter_rms > 0.0:
            t0 = t0 + rng.normal(0.0, self.timebase_jitter_rms)
        return Waveform(v, dt=waveform.dt, t0=t0)

    # -- eye measurements ---------------------------------------------------

    def eye_diagram(self, waveform: Waveform, rate_gbps: float,
                    rng: Optional[np.random.Generator] = None,
                    cache=None, **kwargs) -> EyeDiagram:
        """Build an eye from one long acquisition.

        ``cache`` forwards to :meth:`EyeDiagram.from_waveform`; the
        fold is only memoizable when the scope is noiseless (an
        acquisition otherwise draws from *rng*), so a noisy scope
        skips the acquire-stage token and the fold re-keys from the
        acquired record's content.
        """
        acquired = self.acquire(waveform, rng)
        if (self.vertical_noise_rms == 0.0
                and self.timebase_jitter_rms == 0.0):
            # Noiseless acquisition is a pure copy: carry the input's
            # provenance so the fold stage can hit.
            acquired.set_cache_token(waveform.cache_token())
        return EyeDiagram.from_waveform(acquired, rate_gbps,
                                        cache=cache, **kwargs)

    def measure_eye(self, waveform: Waveform, rate_gbps: float,
                    rng: Optional[np.random.Generator] = None,
                    cache=None, **kwargs) -> EyeMetrics:
        """Acquire, fold, and measure an eye in one call."""
        return measure_eye(self.eye_diagram(waveform, rate_gbps, rng,
                                            cache=cache, **kwargs))

    # -- single-edge jitter (Figure 9) -------------------------------------

    def edge_jitter(self, edge_source: Callable[[np.random.Generator],
                                                Waveform],
                    n_acquisitions: int = 500,
                    threshold: Optional[float] = None,
                    seed: int = 0) -> EdgeJitterResult:
        """Repeated single-transition jitter histogram.

        Parameters
        ----------
        edge_source:
            Called once per acquisition with a random generator;
            must return a waveform containing one transition (the
            hardware equivalent: the same pattern edge, re-armed).
        threshold:
            Crossing threshold; default midpoint of the first
            acquisition.
        """
        if n_acquisitions < 2:
            raise MeasurementError("need >= 2 acquisitions")
        rng = np.random.default_rng(seed)
        crossings = np.empty(n_acquisitions)
        for i in range(n_acquisitions):
            raw = edge_source(rng)
            if raw.peak_to_peak() < max(10.0 * self.vertical_noise_rms,
                                        1e-6):
                raise MeasurementError(
                    "edge source has no swing; nothing to measure"
                )
            wf = self.acquire(raw, rng)
            if threshold is None:
                threshold = 0.5 * (wf.min() + wf.max())
            t = analysis.threshold_crossings(wf, threshold)
            if len(t) == 0:
                raise MeasurementError(
                    f"acquisition {i} has no threshold crossing"
                )
            crossings[i] = t[0]
        return EdgeJitterResult(
            peak_to_peak=float(crossings.max() - crossings.min()),
            rms=float(np.std(crossings)),
            n_acquisitions=n_acquisitions,
        )

    # -- waveform parameter readouts ---------------------------------------

    def rise_time(self, waveform: Waveform,
                  rng: Optional[np.random.Generator] = None) -> float:
        """20-80% rise time of an acquired waveform, ps."""
        return analysis.rise_time(self.acquire(waveform, rng))

    def fall_time(self, waveform: Waveform,
                  rng: Optional[np.random.Generator] = None) -> float:
        """80-20% fall time of an acquired waveform, ps."""
        return analysis.fall_time(self.acquire(waveform, rng))

    def measure_levels(self, waveform: Waveform,
                       rng: Optional[np.random.Generator] = None):
        """(v_low, v_high, swing) of an acquired waveform."""
        return analysis.measure_swing(self.acquire(waveform, rng))
