"""DC power sources and board power budgeting.

Both systems list "DC power" among their few required connections
(Figures 1 and 12). The model covers setpoints, current limits, and
a rail-by-rail budget of the board's consumers — useful for the
array-probing configuration where many mini-testers share supplies.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.errors import ConfigurationError


class DCSource:
    """One programmable DC supply output.

    Parameters
    ----------
    voltage:
        Setpoint, volts.
    current_limit:
        Compliance limit, amps.
    """

    def __init__(self, voltage: float, current_limit: float = 2.0,
                 name: str = "vcc"):
        if current_limit <= 0.0:
            raise ConfigurationError("current limit must be positive")
        self.voltage = float(voltage)
        self.current_limit = float(current_limit)
        self.name = name
        self.enabled = False
        self._load_amps = 0.0

    def enable(self) -> None:
        """Turn the output on."""
        self.enabled = True

    def disable(self) -> None:
        """Turn the output off."""
        self.enabled = False

    def attach_load(self, amps: float) -> None:
        """Add a load; trips (disables) past the current limit."""
        if amps < 0.0:
            raise ConfigurationError("load current must be >= 0")
        self._load_amps += amps
        if self._load_amps > self.current_limit:
            self.enabled = False
            raise ConfigurationError(
                f"supply {self.name!r} tripped: load {self._load_amps:.2f} A "
                f"exceeds the {self.current_limit:.2f} A limit"
            )

    @property
    def load_amps(self) -> float:
        """Attached load current, amps."""
        return self._load_amps

    @property
    def power_watts(self) -> float:
        """Power delivered when enabled."""
        return self.voltage * self._load_amps if self.enabled else 0.0


@dataclasses.dataclass(frozen=True)
class Consumer:
    """A board-level power consumer on one rail."""

    name: str
    rail: str
    amps: float

    def __post_init__(self):
        if self.amps < 0.0:
            raise ConfigurationError("consumer current must be >= 0")


#: Typical DLC board consumers (FPGA core+IO, USB uC, PECL, FLASH).
DLC_CONSUMERS: List[Consumer] = [
    Consumer("fpga_core", "1.5V", 0.60),
    Consumer("fpga_io", "3.3V", 0.40),
    Consumer("usb_micro", "3.3V", 0.08),
    Consumer("flash", "3.3V", 0.03),
    Consumer("pecl_stage", "3.3V", 0.90),
]


class PowerBudget:
    """Rail-by-rail power accounting for one or more boards."""

    def __init__(self):
        self._consumers: List[Consumer] = []

    def add(self, consumer: Consumer) -> None:
        """Add one consumer."""
        self._consumers.append(consumer)

    def add_board(self, consumers: List[Consumer] = None,
                  copies: int = 1) -> None:
        """Add a whole board's consumers (default: a DLC board)."""
        if copies < 1:
            raise ConfigurationError("copies must be >= 1")
        consumers = consumers if consumers is not None else DLC_CONSUMERS
        for _ in range(copies):
            self._consumers.extend(consumers)

    def rail_currents(self) -> Dict[str, float]:
        """Total current per rail, amps."""
        totals: Dict[str, float] = {}
        for c in self._consumers:
            totals[c.rail] = totals.get(c.rail, 0.0) + c.amps
        return totals

    def total_power(self, rail_voltages: Dict[str, float]) -> float:
        """Total power in watts given each rail's voltage."""
        currents = self.rail_currents()
        missing = set(currents) - set(rail_voltages)
        if missing:
            raise ConfigurationError(
                f"no voltage given for rails: {sorted(missing)}"
            )
        return sum(rail_voltages[r] * a for r, a in currents.items())

    def check_supplies(self, supplies: Dict[str, DCSource]) -> None:
        """Attach all loads to the named supplies (trips on overload)."""
        for rail, amps in self.rail_currents().items():
            if rail not in supplies:
                raise ConfigurationError(f"no supply for rail {rail!r}")
            supplies[rail].attach_load(amps)
