"""Bit-error-rate tester.

Generates a PRBS, aligns the received stream against the reference
(the receiver's latency is unknown a priori), counts errors, and
computes statistical confidence bounds — the standard way a serial
link like the mini-tester's loop is graded.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, MeasurementError
from repro.signal.prbs import prbs_bits
from repro.pecl.receiver import BERResult


class BitErrorRateTester:
    """PRBS-based BER measurement.

    Parameters
    ----------
    prbs_order:
        Reference pattern order.
    seed:
        Reference pattern seed.
    """

    def __init__(self, prbs_order: int = 7, seed: int = 1):
        self.prbs_order = int(prbs_order)
        self.seed = int(seed)

    def pattern(self, n_bits: int) -> np.ndarray:
        """The reference stimulus stream."""
        return prbs_bits(self.prbs_order, n_bits, seed=self.seed)

    def align(self, received, reference,
              max_lag: Optional[int] = None) -> Tuple[int, np.ndarray]:
        """Find the receiver latency by correlation.

        Returns ``(lag, aligned_reference)`` where *lag* is the
        number of bits the reference must be advanced to line up
        with the received stream.
        """
        received = np.asarray(received).astype(np.int8)
        reference = np.asarray(reference).astype(np.int8)
        if len(received) > len(reference):
            raise MeasurementError(
                "received stream longer than the reference"
            )
        if max_lag is None:
            max_lag = len(reference) - len(received)
        best_lag, best_matches = 0, -1
        for lag in range(max_lag + 1):
            segment = reference[lag:lag + len(received)]
            matches = int(np.count_nonzero(segment == received))
            if matches > best_matches:
                best_matches, best_lag = matches, lag
        return best_lag, reference[best_lag:best_lag + len(received)]

    def measure(self, received, reference=None,
                auto_align: bool = True) -> BERResult:
        """Count bit errors of *received* against the reference."""
        received = np.asarray(received).astype(np.uint8)
        if reference is None:
            margin = 256
            reference = self.pattern(len(received) + margin)
        reference = np.asarray(reference).astype(np.uint8)
        if auto_align:
            _, reference = self.align(received, reference)
        elif len(reference) < len(received):
            raise MeasurementError("reference shorter than received")
        else:
            reference = reference[:len(received)]
        errors = int(np.count_nonzero(received != reference))
        return BERResult(n_bits=len(received), n_errors=errors)

    @staticmethod
    def ber_upper_bound(n_bits: int, n_errors: int = 0,
                        confidence: float = 0.95) -> float:
        """Upper confidence bound on the true BER.

        For zero errors this is the classic ``-ln(1-CL)/N``; for
        small error counts a Poisson bound is used.
        """
        if n_bits < 1:
            raise ConfigurationError("need >= 1 bit")
        if not 0.0 < confidence < 1.0:
            raise ConfigurationError("confidence must be in (0, 1)")
        if n_errors < 0:
            raise ConfigurationError("error count must be >= 0")
        if n_errors == 0:
            return -math.log(1.0 - confidence) / n_bits
        # Solve Poisson CDF(n_errors; mu) = 1 - confidence for mu by
        # bisection; bound = mu / n_bits.
        def cdf(mu: float) -> float:
            term = math.exp(-mu)
            total = term
            for k in range(1, n_errors + 1):
                term *= mu / k
                total += term
            return total

        lo, hi = float(n_errors), float(n_errors) + 10.0 * (n_errors + 1)
        target = 1.0 - confidence
        for _ in range(100):
            mid = 0.5 * (lo + hi)
            if cdf(mid) > target:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi) / n_bits

    @staticmethod
    def bits_for_ber(target_ber: float, confidence: float = 0.95) -> int:
        """Bits needed to demonstrate *target_ber* error-free."""
        if target_ber <= 0.0:
            raise ConfigurationError("target BER must be positive")
        if not 0.0 < confidence < 1.0:
            raise ConfigurationError("confidence must be in (0, 1)")
        return math.ceil(-math.log(1.0 - confidence) / target_ber)
