"""Bit-error-rate tester.

Generates a PRBS, aligns the received stream against the reference
(the receiver's latency is unknown a priori), counts errors, and
computes statistical confidence bounds — the standard way a serial
link like the mini-tester's loop is graded.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, MeasurementError
from repro.signal.prbs import prbs_bits
from repro.pecl.receiver import BERResult


@dataclasses.dataclass(frozen=True)
class SlipBERResult:
    """Slip-aware bit-error measurement.

    A fixed-reference comparison turns one dropped or doubled bit
    into a ~50% miscompare rate for the entire tail; this result
    separates those events out. Attributes:

    n_bits / n_errors:
        Bits compared and *genuine* mismatches (slips excluded).
    slips:
        Re-alignment events: each is one lost/gained bit-clock
        cycle, not a run of bit errors.
    slip_positions:
        Received-stream index where each slip was detected.
    """

    n_bits: int
    n_errors: int
    slips: int
    slip_positions: Tuple[int, ...] = ()

    @property
    def ber(self) -> float:
        if self.n_bits == 0:
            return 0.0
        return self.n_errors / self.n_bits


class BitErrorRateTester:
    """PRBS-based BER measurement.

    Parameters
    ----------
    prbs_order:
        Reference pattern order.
    seed:
        Reference pattern seed.
    """

    def __init__(self, prbs_order: int = 7, seed: int = 1):
        self.prbs_order = int(prbs_order)
        self.seed = int(seed)

    def pattern(self, n_bits: int) -> np.ndarray:
        """The reference stimulus stream."""
        return prbs_bits(self.prbs_order, n_bits, seed=self.seed)

    def align(self, received, reference,
              max_lag: Optional[int] = None) -> Tuple[int, np.ndarray]:
        """Find the receiver latency by correlation.

        Returns ``(lag, aligned_reference)`` where *lag* is the
        number of bits the reference must be advanced to line up
        with the received stream.
        """
        received = np.asarray(received).astype(np.int8)
        reference = np.asarray(reference).astype(np.int8)
        if len(received) > len(reference):
            raise MeasurementError(
                "received stream longer than the reference"
            )
        if max_lag is None:
            max_lag = len(reference) - len(received)
        best_lag, best_matches = 0, -1
        for lag in range(max_lag + 1):
            segment = reference[lag:lag + len(received)]
            matches = int(np.count_nonzero(segment == received))
            if matches > best_matches:
                best_matches, best_lag = matches, lag
        return best_lag, reference[best_lag:best_lag + len(received)]

    def measure(self, received, reference=None,
                auto_align: bool = True) -> BERResult:
        """Count bit errors of *received* against the reference."""
        received = np.asarray(received).astype(np.uint8)
        if reference is None:
            margin = 256
            reference = self.pattern(len(received) + margin)
        reference = np.asarray(reference).astype(np.uint8)
        if auto_align:
            _, reference = self.align(received, reference)
        elif len(reference) < len(received):
            raise MeasurementError("reference shorter than received")
        else:
            reference = reference[:len(received)]
        errors = int(np.count_nonzero(received != reference))
        return BERResult(n_bits=len(received), n_errors=errors)

    def measure_resync(self, received, reference=None,
                       slip_window: int = 32, slip_density: int = 16,
                       max_slip: int = 4) -> SlipBERResult:
        """Count errors with mid-stream slip detection.

        Wherever *slip_density* mismatches land inside a
        *slip_window*-bit span — the signature of a lost or gained
        bit cycle, which makes a fixed reference miscompare half the
        tail — the reference is re-aligned (within ±\\ *max_slip*
        bits) and the event is reported as **one slip**, not as an
        unbounded error count.
        """
        if not 2 <= slip_density <= slip_window:
            raise ConfigurationError(
                "need slip_window >= slip_density >= 2"
            )
        if max_slip < 1:
            raise ConfigurationError("max_slip must be >= 1")
        received = np.asarray(received).astype(np.uint8)
        if reference is None:
            reference = self.pattern(
                len(received) + 256 + max_slip)
        reference = np.asarray(reference).astype(np.uint8)
        lag, _ = self.align(
            received, reference,
            max_lag=len(reference) - len(received) - max_slip)
        kernel = np.ones(slip_window, dtype=np.int32)
        pos, errors, slip_positions = 0, 0, []
        while pos < len(received):
            seg = received[pos:]
            ref = reference[lag + pos:lag + pos + len(seg)]
            seg = seg[:len(ref)]
            mism = (seg != ref).astype(np.int32)
            density = np.convolve(mism, kernel)[:len(seg)]
            burst = np.flatnonzero(density >= slip_density)
            if len(burst) == 0:
                errors += int(mism.sum())
                break
            # The convolution index is the window's *end*; the slip
            # happened at its start.
            at = max(int(burst[0]) - slip_window + 1, 0)
            errors += int(mism[:at].sum())
            slip_positions.append(pos + at)
            # Re-align the tail: probe small lag shifts over the
            # next window and keep the best match.
            tail = received[pos + at:pos + at + 4 * slip_window]
            best_d, best_mism = None, len(tail) + 1
            for d in range(-max_slip, max_slip + 1):
                if d == 0:
                    continue
                start = lag + pos + at + d
                if start < 0:
                    continue
                cand = reference[start:start + len(tail)]
                n = min(len(cand), len(tail))
                if n == 0:
                    continue
                m = int(np.count_nonzero(tail[:n] != cand[:n]))
                if m < best_mism:
                    best_mism, best_d = m, d
            if best_d is None:
                # Nothing realigns (stream ends inside the burst):
                # count the remainder as errors.
                errors += int(mism[at:].sum())
                break
            lag += best_d
            pos += at
            if len(slip_positions) > 1 and \
                    slip_positions[-1] == slip_positions[-2]:
                # Not actually a slip (e.g. dense random errors):
                # bail out rather than loop on the same spot.
                slip_positions.pop()
                errors += int(mism[at:].sum())
                break
        return SlipBERResult(
            n_bits=len(received), n_errors=errors,
            slips=len(slip_positions),
            slip_positions=tuple(slip_positions))

    @staticmethod
    def ber_upper_bound(n_bits: int, n_errors: int = 0,
                        confidence: float = 0.95) -> float:
        """Upper confidence bound on the true BER.

        For zero errors this is the classic ``-ln(1-CL)/N``; for
        small error counts a Poisson bound is used.
        """
        if n_bits < 1:
            raise ConfigurationError("need >= 1 bit")
        if not 0.0 < confidence < 1.0:
            raise ConfigurationError("confidence must be in (0, 1)")
        if n_errors < 0:
            raise ConfigurationError("error count must be >= 0")
        if n_errors == 0:
            return -math.log(1.0 - confidence) / n_bits
        # Solve Poisson CDF(n_errors; mu) = 1 - confidence for mu by
        # bisection; bound = mu / n_bits.
        def cdf(mu: float) -> float:
            term = math.exp(-mu)
            total = term
            for k in range(1, n_errors + 1):
                term *= mu / k
                total += term
            return total

        lo, hi = float(n_errors), float(n_errors) + 10.0 * (n_errors + 1)
        target = 1.0 - confidence
        for _ in range(100):
            mid = 0.5 * (lo + hi)
            if cdf(mid) > target:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi) / n_bits

    @staticmethod
    def bits_for_ber(target_ber: float, confidence: float = 0.95) -> int:
        """Bits needed to demonstrate *target_ber* error-free."""
        if target_ber <= 0.0:
            raise ConfigurationError("target BER must be positive")
        if not 0.0 < confidence < 1.0:
            raise ConfigurationError("confidence must be in (0, 1)")
        return math.ceil(-math.log(1.0 - confidence) / target_ber)
