"""RF clock source with a phase-noise-derived jitter figure.

"An RF clock source (usually an external instrument) provides a
low-jitter (picosecond) timing reference... 0.5~2.5 GHz." The model
integrates a datasheet-style phase-noise mask into an rms jitter
number and produces the :class:`~repro.dlc.clocking.ClockSignal`
that seeds the PECL path's jitter budget.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.dlc.clocking import ClockSignal


@dataclasses.dataclass(frozen=True)
class PhaseNoisePoint:
    """One point of a phase-noise mask.

    Attributes
    ----------
    offset_hz:
        Offset from the carrier, Hz.
    dbc_per_hz:
        Single-sideband phase noise, dBc/Hz.
    """

    offset_hz: float
    dbc_per_hz: float

    def __post_init__(self):
        if self.offset_hz <= 0.0:
            raise ConfigurationError("offset must be positive")


#: A bench-synthesizer-class mask (typical mid-range instrument).
DEFAULT_MASK: List[PhaseNoisePoint] = [
    PhaseNoisePoint(1e3, -95.0),
    PhaseNoisePoint(1e4, -105.0),
    PhaseNoisePoint(1e5, -112.0),
    PhaseNoisePoint(1e6, -120.0),
    PhaseNoisePoint(1e7, -135.0),
    PhaseNoisePoint(4e7, -145.0),
]


def integrate_phase_noise_jitter(mask: Sequence[PhaseNoisePoint],
                                 carrier_ghz: float) -> float:
    """RMS jitter (ps) from integrating a phase-noise mask.

    Piecewise log-linear integration of L(f) over the mask span:
    ``sigma = sqrt(2 * integral 10^(L/10) df) / (2 pi f_carrier)``.
    """
    if carrier_ghz <= 0.0:
        raise ConfigurationError("carrier frequency must be positive")
    pts = sorted(mask, key=lambda p: p.offset_hz)
    if len(pts) < 2:
        raise ConfigurationError("mask needs at least two points")
    total = 0.0
    for lo, hi in zip(pts[:-1], pts[1:]):
        # log-linear segment: L(f) = a*log10(f) + b
        x0, x1 = math.log10(lo.offset_hz), math.log10(hi.offset_hz)
        if x1 <= x0:
            raise ConfigurationError("mask offsets must increase")
        a = (hi.dbc_per_hz - lo.dbc_per_hz) / (x1 - x0)
        # Integrate 10^(L/10) df numerically over the segment
        # (a small fixed trapezoid count is plenty for masks).
        n = 64
        for k in range(n):
            f0 = 10 ** (x0 + (x1 - x0) * k / n)
            f1 = 10 ** (x0 + (x1 - x0) * (k + 1) / n)
            l0 = lo.dbc_per_hz + a * (math.log10(f0) - x0)
            l1 = lo.dbc_per_hz + a * (math.log10(f1) - x0)
            total += 0.5 * (10 ** (l0 / 10) + 10 ** (l1 / 10)) * (f1 - f0)
    carrier_hz = carrier_ghz * 1e9
    sigma_rad = math.sqrt(2.0 * total)
    sigma_s = sigma_rad / (2.0 * math.pi * carrier_hz)
    return sigma_s * 1e12


class RFClockSource:
    """A bench RF synthesizer.

    Parameters
    ----------
    frequency_ghz:
        Output frequency; instrument range 0.05-20 GHz (the systems
        use 0.5-2.5 GHz).
    mask:
        Phase-noise mask; defaults to a mid-range instrument.
    amplitude_dbm:
        Output level (for completeness; the PECL path limits anyway).
    """

    MIN_GHZ = 0.05
    MAX_GHZ = 20.0

    def __init__(self, frequency_ghz: float,
                 mask: Sequence[PhaseNoisePoint] = None,
                 amplitude_dbm: float = 6.0):
        if not self.MIN_GHZ <= frequency_ghz <= self.MAX_GHZ:
            raise ConfigurationError(
                f"frequency {frequency_ghz} GHz outside instrument range "
                f"[{self.MIN_GHZ}, {self.MAX_GHZ}] GHz"
            )
        self.frequency_ghz = float(frequency_ghz)
        self.mask = list(mask) if mask is not None else list(DEFAULT_MASK)
        self.amplitude_dbm = float(amplitude_dbm)
        self.enabled = False

    @property
    def jitter_rms(self) -> float:
        """Integrated rms jitter of the output, ps."""
        return integrate_phase_noise_jitter(self.mask, self.frequency_ghz)

    def enable(self) -> None:
        """Turn the output on."""
        self.enabled = True

    def disable(self) -> None:
        """Turn the output off."""
        self.enabled = False

    def output(self, name: str = "rf") -> ClockSignal:
        """The output clock; source must be enabled."""
        if not self.enabled:
            raise ConfigurationError(
                "RF source output is disabled; call enable() first"
            )
        return ClockSignal(self.frequency_ghz, jitter_rms=self.jitter_rms,
                           name=name)

    def set_frequency(self, frequency_ghz: float) -> None:
        """Retune the carrier."""
        if not self.MIN_GHZ <= frequency_ghz <= self.MAX_GHZ:
            raise ConfigurationError(
                f"frequency {frequency_ghz} GHz outside instrument range"
            )
        self.frequency_ghz = float(frequency_ghz)
