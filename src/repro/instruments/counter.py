"""Frequency counter / time-interval analyzer.

The third bench instrument: measures a clock's frequency from its
crossings, the period jitter (cycle-to-cycle spread), and the time-
interval error (TIE) record — the quantities behind the RF source's
"low-jitter (picosecond) timing reference" requirement.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import MeasurementError
from repro.signal.analysis import threshold_crossings
from repro.signal.waveform import Waveform


@dataclasses.dataclass(frozen=True)
class CounterResult:
    """Frequency/jitter readout of one clock record.

    Attributes
    ----------
    frequency_ghz:
        Mean frequency from rising-edge spacing.
    period_ps:
        Mean period.
    period_jitter_rms:
        Std-dev of adjacent periods, ps.
    period_jitter_pp:
        Peak-to-peak period spread, ps.
    tie_rms:
        RMS time-interval error against the ideal clock, ps.
    n_periods:
        Periods measured.
    """

    frequency_ghz: float
    period_ps: float
    period_jitter_rms: float
    period_jitter_pp: float
    tie_rms: float
    n_periods: int


class FrequencyCounter:
    """Crossing-based clock analyzer.

    Parameters
    ----------
    threshold:
        Crossing threshold; None = waveform midpoint.
    """

    def __init__(self, threshold: float = None):
        self.threshold = threshold

    def measure(self, waveform: Waveform) -> CounterResult:
        """Measure frequency, period jitter, and TIE."""
        threshold = self.threshold
        if threshold is None:
            threshold = 0.5 * (waveform.min() + waveform.max())
        edges = threshold_crossings(waveform, threshold, "rising")
        if len(edges) < 3:
            raise MeasurementError(
                f"need >= 3 rising edges, found {len(edges)}"
            )
        periods = np.diff(edges)
        mean_period = float(periods.mean())
        # TIE: deviation of each edge from the best-fit ideal clock.
        n = np.arange(len(edges))
        fit = np.polyfit(n, edges, 1)
        ideal = np.polyval(fit, n)
        tie = edges - ideal
        return CounterResult(
            frequency_ghz=1_000.0 / mean_period,
            period_ps=mean_period,
            period_jitter_rms=float(np.std(periods)),
            period_jitter_pp=float(periods.max() - periods.min()),
            tie_rms=float(np.std(tie)),
            n_periods=len(periods),
        )

    def verify_frequency(self, waveform: Waveform,
                         expected_ghz: float,
                         tolerance_ppm: float = 1000.0) -> bool:
        """True when the measured frequency is within tolerance."""
        if expected_ghz <= 0.0:
            raise MeasurementError("expected frequency must be positive")
        result = self.measure(waveform)
        error = abs(result.frequency_ghz - expected_ghz) / expected_ghz
        return error * 1e6 <= tolerance_ppm
